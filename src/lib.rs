//! Umbrella crate for the Conductor reproduction.
//!
//! Re-exports the workspace crates under one roof so the top-level
//! `examples/` and `tests/` can depend on a single package; library users
//! should depend on the individual `conductor-*` crates directly.

pub use conductor_cloud as cloud;
pub use conductor_core as core;
pub use conductor_lp as lp;
pub use conductor_mapreduce as mapreduce;
pub use conductor_storage as storage;
