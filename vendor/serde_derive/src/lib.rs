//! Vendored, dependency-free `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! The container this repo builds in has no network access to crates.io, so
//! the real `serde`/`syn` stack is unavailable. This crate hand-parses the
//! item token stream (no generics support — none of the repo's serialized
//! types are generic) and emits impls of the JSON-value-based `Serialize` /
//! `Deserialize` traits defined by the vendored `serde` facade crate.
//!
//! Supported shapes: structs with named fields, tuple structs, and enums with
//! unit / tuple / struct variants. Supported field attributes:
//! `#[serde(default)]` and `#[serde(default = "path")]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// How a field's value is obtained when it is missing from the input.
#[derive(Clone)]
enum MissingPolicy {
    Error,
    DefaultTrait,
    DefaultFn(String),
}

struct Field {
    name: String,
    missing: MissingPolicy,
}

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match &shape {
        Shape::NamedStruct(fields) => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "fields.push((\"{n}\".to_string(), ::serde::Serialize::serialize(&self.{n})));\n",
                    n = f.name
                ));
            }
            format!(
                "let mut fields: Vec<(String, ::serde::Json)> = Vec::new();\n{pushes}::serde::Json::Object(fields)"
            )
        }
        Shape::TupleStruct(arity) => {
            let mut pushes = String::new();
            for i in 0..*arity {
                pushes.push_str(&format!(
                    "items.push(::serde::Serialize::serialize(&self.{i}));\n"
                ));
            }
            format!(
                "let mut items: Vec<::serde::Json> = Vec::new();\n{pushes}::serde::Json::Array(items)"
            )
        }
        Shape::Unit => "::serde::Json::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "Self::{v} => ::serde::Json::String(\"{v}\".to_string()),\n",
                        v = v.name
                    )),
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                        let pushes: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "Self::{v}({b}) => ::serde::Json::Object(vec![(\"{v}\".to_string(), ::serde::Json::Array(vec![{p}]))]),\n",
                            v = v.name,
                            b = binds.join(", "),
                            p = pushes.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let pushes: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{n}\".to_string(), ::serde::Serialize::serialize({n}))",
                                    n = f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "Self::{v} {{ {b} }} => ::serde::Json::Object(vec![(\"{v}\".to_string(), ::serde::Json::Object(vec![{p}]))]),\n",
                            v = v.name,
                            b = binds.join(", "),
                            p = pushes.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n fn serialize(&self) -> ::serde::Json {{\n {body}\n }}\n}}"
    )
    .parse()
    .expect("serde_derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match &shape {
        Shape::NamedStruct(fields) => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&named_field_init(&name, f));
            }
            format!(
                "let obj = value.as_object().ok_or_else(|| ::serde::DeError::expected(\"object for struct {name}\"))?;\nOk(Self {{\n{inits}}})"
            )
        }
        Shape::TupleStruct(arity) => {
            let mut inits = String::new();
            for i in 0..*arity {
                inits.push_str(&format!(
                    "::serde::Deserialize::deserialize(items.get({i}).ok_or_else(|| ::serde::DeError::expected(\"tuple field {i} of {name}\"))?)?,\n"
                ));
            }
            format!(
                "let items = value.as_array().ok_or_else(|| ::serde::DeError::expected(\"array for tuple struct {name}\"))?;\nOk(Self(\n{inits}))"
            )
        }
        Shape::Unit => "Ok(Self)".to_string(),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => unit_arms
                        .push_str(&format!("\"{v}\" => return Ok(Self::{v}),\n", v = v.name)),
                    VariantKind::Tuple(arity) => {
                        let mut inits = String::new();
                        for i in 0..*arity {
                            inits.push_str(&format!(
                                "::serde::Deserialize::deserialize(items.get({i}).ok_or_else(|| ::serde::DeError::expected(\"field {i} of variant {v}\"))?)?,\n",
                                v = v.name
                            ));
                        }
                        data_arms.push_str(&format!(
                            "\"{v}\" => {{\n let items = payload.as_array().ok_or_else(|| ::serde::DeError::expected(\"array payload for variant {v}\"))?;\n return Ok(Self::{v}(\n{inits}));\n}}\n",
                            v = v.name
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&named_field_init(&v.name, f));
                        }
                        data_arms.push_str(&format!(
                            "\"{v}\" => {{\n let obj = payload.as_object().ok_or_else(|| ::serde::DeError::expected(\"object payload for variant {v}\"))?;\n return Ok(Self::{v} {{\n{inits}}});\n}}\n",
                            v = v.name
                        ));
                    }
                }
            }
            format!(
                "if let Some(tag) = value.as_str() {{\n match tag {{\n{unit_arms} _ => {{}}\n }}\n}}\nif let Some(obj) = value.as_object() {{\n if let Some((tag, payload)) = obj.first() {{\n match tag.as_str() {{\n{data_arms} _ => {{}}\n }}\n }}\n}}\nErr(::serde::DeError::expected(\"a known variant of {name}\"))"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n fn deserialize(value: &::serde::Json) -> Result<Self, ::serde::DeError> {{\n {body}\n }}\n}}"
    )
    .parse()
    .expect("serde_derive: generated Deserialize impl must parse")
}

fn named_field_init(owner: &str, f: &Field) -> String {
    let fetch = format!("::serde::json_get(obj, \"{}\")", f.name);
    match &f.missing {
        MissingPolicy::Error => format!(
            "{n}: ::serde::Deserialize::deserialize({fetch}.ok_or_else(|| ::serde::DeError::missing_field(\"{owner}\", \"{n}\"))?)?,\n",
            n = f.name
        ),
        MissingPolicy::DefaultTrait => format!(
            "{n}: match {fetch} {{ Some(v) => ::serde::Deserialize::deserialize(v)?, None => Default::default() }},\n",
            n = f.name
        ),
        MissingPolicy::DefaultFn(path) => format!(
            "{n}: match {fetch} {{ Some(v) => ::serde::Deserialize::deserialize(v)?, None => {path}() }},\n",
            n = f.name
        ),
    }
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> (String, Shape) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2, // '#' + [..] group
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    i += 1;
    // Generics are not supported; fail loudly rather than emit wrong code.
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive (vendored): generic types are not supported ({name})");
        }
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                (name, Shape::NamedStruct(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                (name, Shape::TupleStruct(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => (name, Shape::Unit),
            other => panic!("serde_derive: unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                (name, Shape::Enum(parse_variants(g.stream())))
            }
            other => panic!("serde_derive: expected enum body for {name}, got {other:?}"),
        },
        other => panic!("serde_derive: unsupported item kind `{other}`"),
    }
}

/// Parses `attr? vis? name: Type,` sequences inside a brace group.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut missing = MissingPolicy::Error;
        // Attributes.
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                if let Some(policy) = parse_serde_attr(g.stream()) {
                    missing = policy;
                }
            }
            i += 2;
        }
        // Visibility.
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        // Field name.
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        i += 1;
        // Skip `: Type` up to the next top-level comma. Angle-bracket depth
        // must be tracked so `BTreeMap<K, V>` commas don't end the field.
        let mut angle: i32 = 0;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(Field { name, missing });
    }
    fields
}

/// Counts top-level comma-separated entries of a tuple-struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle: i32 = 0;
    let mut saw_tokens_since_comma = true;
    for tok in &tokens {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    count += 1;
                    saw_tokens_since_comma = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_tokens_since_comma = true;
    }
    if !saw_tokens_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Attributes (doc comments etc.).
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            i += 2;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional discriminant `= expr` and the separating comma.
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

/// Recognizes `serde(default)` and `serde(default = "path")` inside an
/// attribute bracket group; returns the policy if present.
fn parse_serde_attr(stream: TokenStream) -> Option<MissingPolicy> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let TokenTree::Group(inner) = tokens.get(1)? else {
        return None;
    };
    let inner: Vec<TokenTree> = inner.stream().into_iter().collect();
    match inner.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "default" => {
            if let Some(TokenTree::Literal(lit)) = inner.get(2) {
                let raw = lit.to_string();
                let path = raw.trim_matches('"').to_string();
                Some(MissingPolicy::DefaultFn(path))
            } else {
                Some(MissingPolicy::DefaultTrait)
            }
        }
        _ => None,
    }
}
