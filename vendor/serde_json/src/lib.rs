//! Vendored minimal `serde_json`: renders and parses the [`serde::Json`]
//! value tree produced by the vendored `serde` facade. Standard JSON text on
//! the wire; the only non-standard convention is that maps with non-string
//! keys serialize as arrays of `[key, value]` pairs (chosen by the facade).

use serde::{DeError, Deserialize, Serialize};
use std::fmt;

pub use serde::Json;

/// Error type covering both parse and data-shape failures.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` as compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.serialize(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.serialize(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serializes `value` as JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parses JSON text into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let json = parse(s)?;
    Ok(T::deserialize(&json)?)
}

/// Parses JSON bytes into `T`.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn render(value: &Json, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Number(n) => render_number(*n, out),
        Json::String(s) => render_string(s, out),
        Json::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                render(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Json::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                render_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn render_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no Infinity/NaN; null round-trips to an error on read,
        // which is the least-surprising behaviour for corrupt values.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        // RFC-compatible shortest representation Rust gives us.
        out.push_str(&format!("{n}"));
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses JSON text into a [`Json`] tree.
pub fn parse(s: &str) -> Result<Json, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Json, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected character {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Json, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::new(format!("invalid number: {e}")))?;
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|e| Error::new(format!("invalid number `{text}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_roundtrip() {
        let v = Json::Object(vec![
            ("name".to_string(), Json::String("a \"b\"\n".to_string())),
            (
                "xs".to_string(),
                Json::Array(vec![Json::Number(1.0), Json::Number(2.5)]),
            ),
            ("flag".to_string(), Json::Bool(true)),
            ("nothing".to_string(), Json::Null),
        ]);
        let text = to_string(&v).unwrap();
        assert_eq!(parse(&text).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn typed_roundtrip() {
        let xs = vec![(1usize, 2.5f64), (3, 4.0)];
        let text = to_string(&xs).unwrap();
        let back: Vec<(usize, f64)> = from_str(&text).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(to_string(&5.0f64).unwrap(), "5");
        assert_eq!(to_string(&5.25f64).unwrap(), "5.25");
    }
}
