//! Vendored minimal `criterion`: a wall-clock mini-harness with the same API
//! shape the repo's benches use (`benchmark_group`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `criterion_group!`/`criterion_main!`).
//!
//! It runs each benchmark for a bounded number of timed samples and prints
//! `bench <group>/<id> ... mean <t> (n samples)` lines. No statistics beyond
//! mean/min/max — the point is comparable before/after numbers without the
//! real crate's dependency tree, not rigorous confidence intervals.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export-compatible opaque black box.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{function_id}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// Throughput annotation (printed, not otherwise used).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    target: usize,
    budget: Duration,
}

impl<'a> Bencher<'a> {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup run, then timed samples until the sample target or the
        // time budget is reached (whichever comes first, but at least one).
        black_box(f());
        let started = Instant::now();
        loop {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
            if self.samples.len() >= self.target || started.elapsed() >= self.budget {
                break;
            }
        }
    }
}

/// Entry point, compatible with `Criterion::default()`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(5),
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one("", id, 10, Duration::from_secs(5), None, f);
        self
    }

    /// Real criterion parses CLI args here; the stub accepts and ignores them.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn final_summary(&self) {}
}

/// A named group of benchmarks sharing sample configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(
            &self.name,
            &id.to_string(),
            self.sample_size,
            self.measurement_time,
            self.throughput,
            f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher<'_>, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &self.name,
            &id.to_string(),
            self.sample_size,
            self.measurement_time,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(
    group: &str,
    id: &str,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut samples = Vec::new();
    {
        let mut bencher = Bencher {
            samples: &mut samples,
            target: sample_size,
            budget: measurement_time,
        };
        f(&mut bencher);
    }
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if samples.is_empty() {
        println!("bench {label:<40} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    let mut line = format!(
        "bench {label:<40} mean {:>12} min {:>12} max {:>12} ({} samples)",
        fmt_duration(mean),
        fmt_duration(*min),
        fmt_duration(*max),
        samples.len()
    );
    if let Some(Throughput::Bytes(bytes)) = throughput {
        let gib_s = bytes as f64 / mean.as_secs_f64() / (1024.0 * 1024.0 * 1024.0);
        line.push_str(&format!(" {gib_s:.3} GiB/s"));
    }
    println!("{line}");
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", d.as_secs_f64())
    }
}

/// Declares a group of benchmark functions (same shape as real criterion).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` (same shape as real criterion).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes flags like `--bench`; the stub ignores them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(50));
        let mut runs = 0usize;
        group.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert!(runs >= 2, "warmup + at least one sample, got {runs}");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("6h").to_string(), "6h");
    }
}
