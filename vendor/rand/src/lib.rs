//! Vendored minimal `rand`: just enough for the repo's deterministic
//! simulators — `SmallRng::seed_from_u64`, `gen_range` over numeric ranges,
//! `gen_bool`, and `gen` for a few primitives. The generator is xoshiro256**
//! seeded through SplitMix64 (the same construction the real `SmallRng`
//! uses on 64-bit targets), so quality is fine for simulation purposes.
//! Streams are NOT bit-compatible with the real crate; all uses in this repo
//! only rely on determinism for a fixed seed, not on exact values.

use std::ops::Range;

/// Core RNG trait (subset of the real crate).
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform value in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(range, self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }
}

/// Types sampleable from a `Range` (subset of the real `SampleRange`).
pub trait SampleRange: Sized {
    fn sample<R: Rng>(range: Range<Self>, rng: &mut R) -> Self;
}

impl SampleRange for f64 {
    fn sample<R: Rng>(range: Range<Self>, rng: &mut R) -> Self {
        range.start + (range.end - range.start) * rng.next_f64()
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample<R: Rng>(range: Range<Self>, rng: &mut R) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end - range.start) as u64;
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(u64, usize, u32, i64);

/// Types with a "standard" distribution for `gen()` (subset of the real
/// `Standard`).
pub trait Standard: Sized {
    fn standard<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: Rng>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for u64 {
    fn standard<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u8 {
    fn standard<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn standard<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Seedable construction (subset of the real trait).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256** — small, fast, good-quality; mirrors what the real
    /// `SmallRng` is on 64-bit platforms.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors (avoids all-zero states).
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(-0.25f64..0.5);
            assert!((-0.25..0.5).contains(&x));
            let n = rng.gen_range(3usize..9);
            assert!((3..9).contains(&n));
        }
    }

    #[test]
    fn gen_bool_probability_is_sane() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
    }
}
