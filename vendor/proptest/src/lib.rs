//! Vendored minimal `proptest`: deterministic randomized testing with the
//! familiar `proptest! { #[test] fn f(x in strategy) { ... } }` surface.
//!
//! Differences from the real crate: no shrinking (a failing case panics with
//! the case number; strategies are deterministic per test, so failures
//! reproduce exactly), and only the strategy combinators this repo uses are
//! provided (numeric ranges, `collection::vec`, `any::<T>()`).
//!
//! Two environment variables mirror the real crate's reproducibility knobs:
//!
//! * `PROPTEST_SEED` — a `u64` mixed into every test's RNG seed. Unset (the
//!   default) keeps the historical per-test-name deterministic stream; CI's
//!   nightly battery sets a random value to explore fresh cases, and a
//!   failure is reproduced by re-running with the seed it prints.
//! * `PROPTEST_CASES` — overrides the case count of every `proptest!` block
//!   (the nightly battery runs many more cases than the in-PR default).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Per-test configuration (subset of the real type).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    /// `PROPTEST_CASES` (when set and parsable) overrides the per-test case
    /// count, e.g. for a nightly high-volume run.
    pub fn with_cases(cases: u32) -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(cases);
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self::with_cases(32)
    }
}

/// The deterministic RNG driving value generation.
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Seeded from the test name so every test has an independent but
    /// reproducible stream. When `PROPTEST_SEED` is set its value is mixed
    /// in (printed on entry so a nightly failure can be replayed exactly).
    pub fn for_test(name: &str) -> Self {
        let mut seed = 0xcbf29ce484222325u64; // FNV-1a
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x100000001b3);
        }
        if let Some(extra) = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
        {
            eprintln!("proptest: `{name}` running with PROPTEST_SEED={extra}");
            seed ^= extra.wrapping_mul(0x9e3779b97f4a7c15);
        }
        Self {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    fn f64_in(&mut self, range: Range<f64>) -> f64 {
        self.inner.gen_range(range)
    }

    fn u64_in(&mut self, range: Range<u64>) -> u64 {
        self.inner.gen_range(range)
    }

    fn usize_in(&mut self, range: Range<usize>) -> usize {
        self.inner.gen_range(range)
    }

    fn byte(&mut self) -> u8 {
        self.inner.gen::<u8>()
    }

    fn boolean(&mut self) -> bool {
        self.inner.gen::<bool>()
    }
}

/// A generator of values (no shrinking).
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.f64_in(self.clone())
    }
}

impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        rng.u64_in(self.clone())
    }
}

impl Strategy for Range<usize> {
    type Value = usize;
    fn generate(&self, rng: &mut TestRng) -> usize {
        rng.usize_in(self.clone())
    }
}

impl Strategy for Range<u32> {
    type Value = u32;
    fn generate(&self, rng: &mut TestRng) -> u32 {
        rng.u64_in(self.start as u64..self.end as u64) as u32
    }
}

impl Strategy for Range<i64> {
    type Value = i64;
    fn generate(&self, rng: &mut TestRng) -> i64 {
        let span = (self.end - self.start) as u64;
        self.start + (rng.u64_in(0..span)) as i64
    }
}

/// `any::<T>()` support.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.byte()
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.boolean()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.u64_in(0..u64::MAX)
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.usize_in(0..usize::MAX)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.f64_in(-1e6..1e6)
    }
}

/// Strategy wrapper returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Element count for `vec`: a fixed size or a half-open range.
    pub trait IntoSizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.usize_in(self.clone())
        }
    }

    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Assertion macros — panic (no shrink machinery, so plain asserts suffice).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// The main macro: expands each `fn name(arg in strategy, ...) { body }` into
/// a `#[test]` running `cases` deterministic iterations. The `#[test]`
/// attribute written in the source is captured and re-emitted via `$meta`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let run = || {
                        $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                        $body
                    };
                    if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                        eprintln!(
                            "proptest case {}/{} of `{}` failed (deterministic seed; rerun reproduces it)",
                            case + 1, config.cases, stringify!($name)
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 1.5f64..9.0, n in 3usize..7) {
            prop_assert!((1.5..9.0).contains(&x));
            prop_assert!((3..7).contains(&n));
        }

        #[test]
        fn vec_lengths_respected(
            xs in crate::collection::vec(0.0f64..1.0, 2..5),
            fixed in crate::collection::vec(any::<u8>(), 4),
        ) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
            prop_assert_eq!(fixed.len(), 4);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let gen = || {
            let mut rng = crate::TestRng::for_test("det");
            crate::Strategy::generate(&(0.0f64..1.0), &mut rng)
        };
        assert_eq!(gen(), gen());
    }
}
