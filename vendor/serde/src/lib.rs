//! Vendored minimal `serde` facade.
//!
//! The build environment has no access to crates.io, so this crate stands in
//! for the real `serde`. It is **not** wire-compatible with serde's data
//! model: serialization goes through a concrete [`Json`] value tree and the
//! companion vendored `serde_json` crate renders/parses that tree. The repo
//! only ever round-trips its own output, so this is sufficient — and it keeps
//! the familiar `#[derive(Serialize, Deserialize)]` surface unchanged for the
//! day the real dependency can be restored.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::Hash;
use std::time::Duration;

/// An owned JSON value. Objects preserve insertion order (a `Vec` of pairs)
/// so serialized output is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    pub fn as_object(&self) -> Option<&Vec<(String, Json)>> {
        match self {
            Json::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Json>> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Field lookup helper used by derived `Deserialize` impls.
pub fn json_get<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    message: String,
}

impl DeError {
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    pub fn expected(what: &str) -> Self {
        Self::new(format!("expected {what}"))
    }

    pub fn missing_field(owner: &str, field: &str) -> Self {
        Self::new(format!("missing field `{field}` for `{owner}`"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Serialization into the [`Json`] tree.
pub trait Serialize {
    fn serialize(&self) -> Json;
}

/// Deserialization from a [`Json`] tree.
pub trait Deserialize: Sized {
    fn deserialize(value: &Json) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

/// Largest integer magnitude an `f64` mantissa represents exactly (2^53).
/// Integers beyond it serialize as decimal strings so 64-bit values (e.g.
/// `f64::to_bits` payloads, hash salts) round-trip without losing low bits.
const MAX_SAFE_INT: u128 = 1 << 53;

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Json {
                if (*self as i128).unsigned_abs() <= MAX_SAFE_INT {
                    Json::Number(*self as f64)
                } else {
                    Json::String(self.to_string())
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Json) -> Result<Self, DeError> {
                match value {
                    Json::Number(n) => Ok(*n as $t),
                    Json::String(s) => s.parse::<$t>().map_err(|_| {
                        DeError::expected(concat!("an integer (", stringify!($t), ")"))
                    }),
                    _ => Err(DeError::expected(concat!(
                        "a number (",
                        stringify!($t),
                        ")"
                    ))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Floats serialize finite values as JSON numbers and the three non-finite
/// values as the sentinel strings `"inf"` / `"-inf"` / `"NaN"`, which the
/// `Deserialize` impl maps back. (Plain JSON has no non-finite literals;
/// without the sentinels an infinity would decay to `null` and, behind an
/// `Option`, silently become `None`.)
macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Json {
                let v = *self as f64;
                if v.is_finite() {
                    Json::Number(v)
                } else if v.is_nan() {
                    Json::String("NaN".to_string())
                } else if v > 0.0 {
                    Json::String("inf".to_string())
                } else {
                    Json::String("-inf".to_string())
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Json) -> Result<Self, DeError> {
                match value {
                    Json::Number(n) => Ok(*n as $t),
                    Json::String(s) => match s.as_str() {
                        "inf" => Ok(<$t>::INFINITY),
                        "-inf" => Ok(<$t>::NEG_INFINITY),
                        "NaN" => Ok(<$t>::NAN),
                        _ => Err(DeError::expected(concat!(
                            "a number (",
                            stringify!($t),
                            ")"
                        ))),
                    },
                    _ => Err(DeError::expected(concat!(
                        "a number (",
                        stringify!($t),
                        ")"
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f64, f32);

impl Serialize for bool {
    fn serialize(&self) -> Json {
        Json::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Json) -> Result<Self, DeError> {
        value
            .as_bool()
            .ok_or_else(|| DeError::expected("a boolean"))
    }
}

impl Serialize for String {
    fn serialize(&self) -> Json {
        Json::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Json) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("a string"))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Json {
        Json::String(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Json {
        Json::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(value: &Json) -> Result<Self, DeError> {
        value
            .as_str()
            .and_then(|s| s.chars().next())
            .ok_or_else(|| DeError::expected("a one-character string"))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Json {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Json {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Json) -> Result<Self, DeError> {
        T::deserialize(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Json {
        match self {
            Some(v) => v.serialize(),
            None => Json::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Json) -> Result<Self, DeError> {
        match value {
            Json::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Json {
        Json::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Json) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::expected("an array"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Json {
        Json::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Json {
        Json::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(value: &Json) -> Result<Self, DeError> {
        let items = value
            .as_array()
            .ok_or_else(|| DeError::expected("an array"))?;
        if items.len() != N {
            return Err(DeError::new(format!(
                "expected an array of length {N}, got {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::deserialize).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| DeError::expected("an array of exact length"))
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize(&self) -> Json {
        Json::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn deserialize(value: &Json) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::expected("an array"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $idx:tt),+)),*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Json {
                Json::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(value: &Json) -> Result<Self, DeError> {
                let items = value.as_array().ok_or_else(|| DeError::expected("a tuple array"))?;
                Ok(($(
                    $t::deserialize(
                        items.get($idx).ok_or_else(|| DeError::expected("a longer tuple"))?,
                    )?,
                )+))
            }
        }
    )*};
}

impl_tuple!((A: 0), (A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));

/// Maps serialize as arrays of `[key, value]` pairs so non-string keys (e.g.
/// `VarId`) need no special casing. Only the vendored `serde_json` ever reads
/// this format back.
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Json {
        Json::Array(
            self.iter()
                .map(|(k, v)| Json::Array(vec![k.serialize(), v.serialize()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(value: &Json) -> Result<Self, DeError> {
        map_pairs(value)?
            .map(|(k, v)| Ok((K::deserialize(k)?, V::deserialize(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize(&self) -> Json {
        // Sort pairs by rendered key for deterministic output.
        let mut pairs: Vec<(Json, Json)> = self
            .iter()
            .map(|(k, v)| (k.serialize(), v.serialize()))
            .collect();
        pairs.sort_by(|(a, _), (b, _)| format!("{a:?}").cmp(&format!("{b:?}")));
        Json::Array(
            pairs
                .into_iter()
                .map(|(k, v)| Json::Array(vec![k, v]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize(value: &Json) -> Result<Self, DeError> {
        map_pairs(value)?
            .map(|(k, v)| Ok((K::deserialize(k)?, V::deserialize(v)?)))
            .collect()
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize(&self) -> Json {
        Json::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize(value: &Json) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::expected("an array (set)"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn serialize(&self) -> Json {
        let mut items: Vec<Json> = self.iter().map(Serialize::serialize).collect();
        items.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        Json::Array(items)
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn deserialize(value: &Json) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::expected("an array (set)"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

fn map_pairs(value: &Json) -> Result<impl Iterator<Item = (&Json, &Json)>, DeError> {
    let items = value
        .as_array()
        .ok_or_else(|| DeError::expected("a map (array of pairs)"))?;
    items
        .iter()
        .map(|pair| {
            let pair = pair
                .as_array()
                .ok_or_else(|| DeError::expected("a [key, value] pair"))?;
            match pair.as_slice() {
                [k, v] => Ok((k, v)),
                _ => Err(DeError::expected("a [key, value] pair")),
            }
        })
        .collect::<Result<Vec<_>, DeError>>()
        .map(Vec::into_iter)
}

impl Serialize for Duration {
    fn serialize(&self) -> Json {
        Json::Object(vec![
            ("secs".to_string(), Json::Number(self.as_secs() as f64)),
            (
                "nanos".to_string(),
                Json::Number(self.subsec_nanos() as f64),
            ),
        ])
    }
}

impl Deserialize for Duration {
    fn deserialize(value: &Json) -> Result<Self, DeError> {
        let obj = value
            .as_object()
            .ok_or_else(|| DeError::expected("a duration object"))?;
        let secs = json_get(obj, "secs")
            .and_then(Json::as_f64)
            .ok_or_else(|| DeError::missing_field("Duration", "secs"))?;
        let nanos = json_get(obj, "nanos").and_then(Json::as_f64).unwrap_or(0.0);
        Ok(Duration::new(secs as u64, nanos as u32))
    }
}

impl Serialize for Json {
    fn serialize(&self) -> Json {
        self.clone()
    }
}

impl Deserialize for Json {
    fn deserialize(value: &Json) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(f64::deserialize(&3.5f64.serialize()).unwrap(), 3.5);
        assert_eq!(usize::deserialize(&7usize.serialize()).unwrap(), 7);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1.0f64, 2.0, 3.0];
        assert_eq!(Vec::<f64>::deserialize(&v.serialize()).unwrap(), v);
        let mut m = BTreeMap::new();
        m.insert(1usize, "a".to_string());
        assert_eq!(
            BTreeMap::<usize, String>::deserialize(&m.serialize()).unwrap(),
            m
        );
        let o: Option<f64> = None;
        assert_eq!(Option::<f64>::deserialize(&o.serialize()).unwrap(), None);
        let t = (1.0f64, "x".to_string());
        assert_eq!(<(f64, String)>::deserialize(&t.serialize()).unwrap(), t);
    }

    #[test]
    fn duration_roundtrip() {
        let d = Duration::new(12, 345_000_000);
        assert_eq!(Duration::deserialize(&d.serialize()).unwrap(), d);
    }

    #[test]
    fn large_integers_roundtrip_exactly() {
        for v in [u64::MAX, u64::MAX - 1, (1u64 << 53) + 1, f64::to_bits(0.1)] {
            let json = v.serialize();
            assert!(matches!(json, Json::String(_)), "expected string for {v}");
            assert_eq!(u64::deserialize(&json).unwrap(), v);
        }
        // Small integers stay plain numbers.
        assert_eq!(42u64.serialize(), Json::Number(42.0));
        assert_eq!(i64::deserialize(&(-7i64).serialize()).unwrap(), -7);
        let neg = i64::MIN + 1;
        assert_eq!(i64::deserialize(&neg.serialize()).unwrap(), neg);
    }

    #[test]
    fn non_finite_floats_roundtrip_via_sentinels() {
        assert_eq!(f64::INFINITY.serialize(), Json::String("inf".into()));
        assert_eq!(f64::NEG_INFINITY.serialize(), Json::String("-inf".into()));
        assert_eq!(f64::NAN.serialize(), Json::String("NaN".into()));
        assert_eq!(
            f64::deserialize(&Json::String("inf".into())).unwrap(),
            f64::INFINITY
        );
        assert_eq!(
            f64::deserialize(&Json::String("-inf".into())).unwrap(),
            f64::NEG_INFINITY
        );
        assert!(f64::deserialize(&Json::String("NaN".into()))
            .unwrap()
            .is_nan());
        // Behind an Option, a NaN no longer decays to None.
        let v: Option<f64> = Some(f64::NAN);
        assert!(Option::<f64>::deserialize(&v.serialize())
            .unwrap()
            .unwrap()
            .is_nan());
        assert!(f64::deserialize(&Json::String("pancake".into())).is_err());
    }

    #[test]
    fn arrays_and_deques_roundtrip() {
        let a = [1u64 << 60, 2, 3, 4, 5];
        assert_eq!(<[u64; 5]>::deserialize(&a.serialize()).unwrap(), a);
        assert!(<[u64; 4]>::deserialize(&a.serialize()).is_err());
        let d: VecDeque<bool> = [true, false, true].into_iter().collect();
        assert_eq!(VecDeque::<bool>::deserialize(&d.serialize()).unwrap(), d);
    }
}
