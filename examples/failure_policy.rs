//! The failure-policy layer: storm → circuit breaker opens → on-demand
//! fallback keeps the deadline, plus an injected fault rescued by a retry.
//!
//! A three-hour price storm hands the fleet three revocation strikes in a
//! row, tripping the spot circuit breaker. A tenant that arrives while
//! the breaker is open is *not* told to wait out the market: the
//! `FallbackTier::OnDemand` policy buys ceiling-priced capacity instead,
//! and the deadline survives. Meanwhile a seeded `FaultPlan` kills the
//! long-running tenant mid-flight; the retry policy re-submits it as a
//! fresh arrival after a deterministic backoff, and the second attempt
//! completes. Hourly probes watch the trace after the storm: two clean
//! hours half-open the breaker, one more closes it.
//!
//! Run with: `cargo run --release --example failure_policy`

use conductor_cloud::{Catalog, SpotMarket, SpotTrace, TraceKind};
use conductor_core::policy::FaultEvent;
use conductor_core::{
    BreakerState, CircuitBreakerConfig, FailurePolicy, FallbackTier, FaultKind, FaultPlan, Fleet,
    FleetConfig, FleetEvent, FleetJobRequest, Goal, ResourcePool, RetryPolicy,
};
use conductor_mapreduce::Workload;

fn main() {
    // 1. A spot market that turns hostile: cheap at 0.20 $/h everywhere
    //    except hours [1, 4), where the price spikes past the 0.30 fleet
    //    bid. Three consecutive out-bid sweeps = three strikes.
    let catalog = Catalog::aws_july_2011();
    let pool = ResourcePool::from_catalog(&catalog, 1.0)
        .with_compute_only(&["m1.large"])
        .with_compute_cap("m1.large", 200);
    let prices: Vec<f64> = (0..48)
        .map(|t| if (1..4).contains(&t) { 0.50 } else { 0.20 })
        .collect();

    // 2. The failure policy: a deterministic fault plan (one task failure
    //    at hour 6, aimed at the first running job in pid order), the
    //    default retry ladder, and a circuit breaker that opens after 3
    //    strikes within 6 hours and needs 2 clean trace hours to
    //    half-open. While it is open, admissions fall back to on-demand.
    let policy = FailurePolicy {
        fault_plan: Some(FaultPlan {
            events: vec![FaultEvent {
                at_hours: 6.0,
                kind: FaultKind::TaskFailure,
                salt: 0,
            }],
        }),
        retry: Some(RetryPolicy::default()),
        circuit_breaker: Some(CircuitBreakerConfig {
            strike_threshold: 3,
            window_hours: 6.0,
            success_threshold_hours: 2,
            fallback: FallbackTier::OnDemand,
        }),
        ..FailurePolicy::default()
    };
    let config = FleetConfig {
        spot_market: Some(SpotMarket::new(
            SpotTrace::from_prices(TraceKind::AwsLike, prices),
            0.34,
        )),
        spot_bid: Some(0.30),
        policy,
        ..FleetConfig::default()
    };
    let mut fleet = Fleet::new(catalog, pool, config).expect("valid fleet config");
    fleet.observe(Box::new(|event: &FleetEvent| match event {
        FleetEvent::Revoked { .. }
        | FleetEvent::BreakerOpened { .. }
        | FleetEvent::BreakerHalfOpen { .. }
        | FleetEvent::BreakerClosed { .. }
        | FleetEvent::FallbackEngaged { .. }
        | FleetEvent::FaultInjected { .. }
        | FleetEvent::Retried { .. }
        | FleetEvent::Completed { .. } => println!("  [observer] {event:?}"),
        _ => {}
    }));

    // 3. `etl` rides into the storm at hour 0 (roomy deadline), eats all
    //    three strikes, then is killed by the injected fault at hour 6
    //    and rescued by its retry.
    println!("== hour 0: submit `etl` (deadline 14 h) ==");
    fleet
        .submit(FleetJobRequest::new(
            "etl",
            Workload::KMeans32Gb.spec(),
            Goal::MinimizeCost {
                deadline_hours: 14.0,
            },
            0.0,
        ))
        .unwrap();

    // 4. `report` arrives at hour 3.5, while the breaker is open. Instead
    //    of gambling on a market that just burned the fleet three times,
    //    admission engages the on-demand fallback.
    println!("== hour 3.5: submit `report` (deadline 9.5 h) while the breaker is open ==");
    let report_id = fleet
        .submit(FleetJobRequest::new(
            "report",
            Workload::KMeansScaled { input_gb: 8 }.spec(),
            Goal::MinimizeCost {
                deadline_hours: 6.0,
            },
            3.5,
        ))
        .unwrap();

    fleet.step_until(4.0);
    println!(
        "== hour 4: breaker state {:?}, admission planned on the fallback tier ==",
        fleet.breaker_state().unwrap()
    );
    assert_eq!(fleet.breaker_state(), Some(BreakerState::Open));

    fleet.run_to_quiescence();
    let summary = fleet.report();

    // The breaker walked open → half-open → closed on the event loop.
    let opened = summary.breaker_open_hours;
    println!(
        "== final: breaker {:?} after {opened:.1} open hours ==",
        fleet.breaker_state().unwrap()
    );
    assert_eq!(fleet.breaker_state(), Some(BreakerState::Closed));
    assert!(
        (opened - 3.0).abs() < 1e-9,
        "breaker open hour 3 → half-open hour 6, got {opened}"
    );

    // The fallback kept `report`'s deadline despite the untouchable
    // market, at the on-demand price.
    let report = summary.tenant("report").unwrap();
    let exec = report.execution.as_ref().expect("fallback tenant ran");
    assert_eq!(
        exec.met_deadline,
        Some(true),
        "fallback missed the deadline"
    );
    assert!(fleet.events().iter().any(|e| matches!(
        e,
        FleetEvent::FallbackEngaged { tenant, .. } if *tenant == report_id
    )));
    println!(
        "report: completed at {:.2} h for ${:.2} on the on-demand fallback",
        report.arrival_hours + exec.completion_hours,
        exec.total_cost
    );

    // The fault killed `etl`, the retry finished the work: the chain is
    // terminal, nothing stranded, nothing dead-lettered.
    let etl = summary.tenant("etl").unwrap();
    assert!(etl.failure.as_deref().unwrap().contains("injected fault"));
    let rescue = summary
        .tenants
        .iter()
        .find(|t| t.retry_of == Some(0))
        .expect("the fault must be answered by a retry");
    assert!(rescue.execution.is_some(), "retry stranded");
    assert_eq!(summary.retries, 1);
    assert_eq!(summary.dead_lettered, 0);
    assert!(fleet.dead_letters().is_empty());
    println!(
        "etl: attempt 0 killed by the fault, attempt 1 completed at {:.2} h",
        rescue.arrival_hours + rescue.execution.as_ref().unwrap().completion_hours
    );
    println!("fleet bill: ${:.2}", summary.fleet_cost);
}
