//! Adapting to mispredicted performance (§6.4, Figure 12).
//!
//! The model is seeded with an optimistic per-node throughput of 1.44 GB/h
//! while the nodes actually deliver 0.44 GB/h. After the first hour the
//! progress monitor detects the shortfall; Conductor re-plans from the
//! observed state and allocates enough extra nodes to still meet the
//! deadline, while a run that sticks to the initial plan misses it.
//!
//! Run with: `cargo run --example adaptive_replanning -p conductor-core`

use conductor_cloud::Catalog;
use conductor_core::{AdaptiveController, Goal, ResourcePool};
use conductor_mapreduce::Workload;

fn main() {
    let catalog = Catalog::aws_july_2011();
    let pool = ResourcePool::from_catalog(&catalog, 1.0).with_compute_only(&["m1.large"]);
    let controller = AdaptiveController::new(catalog, pool);

    let report = controller
        .run_with_misprediction(
            &Workload::KMeans32Gb.spec(),
            Goal::MinimizeCost {
                deadline_hours: 7.0,
            },
            1.44, // predicted GB/h per node
            0.44, // actual GB/h per node
            1.0,  // re-plan after one hour
        )
        .expect("adaptive run");

    println!("=== Adapting to a 3.3x throughput misprediction (Figure 12) ===");
    println!(
        "initial plan : peak {} nodes, expected cost ${:.2}",
        report.initial_plan.peak_nodes("m1.large"),
        report.initial_plan.expected_cost
    );
    match report.replanned_at_hours {
        Some(at) => println!(
            "updated plan : peak {} nodes (re-planned at {at:.0} h), expected cost ${:.2}",
            report.updated_plan.peak_nodes("m1.large"),
            report.updated_plan.expected_cost
        ),
        None => println!("monitor stayed quiet: no deviation, initial plan kept"),
    }
    println!();
    println!("node allocation actually deployed (Figure 12a):");
    for step in &report.spliced_schedule {
        println!(
            "  from hour {:>4.1}: {:>3} x {}",
            step.from_hour, step.nodes, step.instance_type
        );
    }
    println!();
    println!(
        "job progress (Figure 12b): {} total tasks",
        report.execution.total_tasks
    );
    let mut next_mark = 0.0;
    for &(hour, tasks) in &report.execution.task_timeline {
        if hour >= next_mark {
            println!("  {:>5.2} h: {:>4} tasks completed", hour, tasks);
            next_mark += 0.5;
        }
    }
    println!();
    println!(
        "with adaptation    : finished in {:.2} h, met deadline: {:?}, cost ${:.2}",
        report.execution.completion_hours,
        report.execution.met_deadline,
        report.execution.total_cost
    );
    println!(
        "without adaptation : finished in {:.2} h, met deadline: {:?}, cost ${:.2}",
        report.without_adaptation.completion_hours,
        report.without_adaptation.met_deadline,
        report.without_adaptation.total_cost
    );
}
