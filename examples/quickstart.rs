//! Quickstart: plan and deploy a MapReduce job on the cloud with Conductor.
//!
//! This is the smallest end-to-end use of the public API, mirroring the
//! paper's headline scenario (§6.2): a 32 GB k-means job, a 16 Mbit/s uplink,
//! a 6-hour deadline, and the goal "minimize monetary cost".
//!
//! Run with: `cargo run --example quickstart -p conductor-core`

use conductor_cloud::Catalog;
use conductor_core::{Goal, JobController, Planner, ResourcePool};
use conductor_mapreduce::Workload;

fn main() {
    // 1. The set of cloud services the customer could use: the AWS catalog
    //    with July-2011 prices (m1.large / m1.xlarge / c1.xlarge, S3,
    //    instance disks) and a 16 Mbit/s uplink.
    let catalog = Catalog::aws_july_2011();

    // 2. The resource abstraction layer splits those services into uniform
    //    compute and storage resources (1 MB storage-layer chunks).
    let pool = ResourcePool::from_catalog(&catalog, 1.0);

    // 3. The computation: the paper's 32 GB k-means workload.
    let job = Workload::KMeans32Gb.spec();

    // 4. The goal: minimize cost, finish within 6 hours.
    let goal = Goal::MinimizeCost {
        deadline_hours: 6.0,
    };

    // 5. Plan and deploy.
    let planner = Planner::new(pool);
    let controller =
        JobController::new(catalog, planner).expect("planner pool matches the catalog");
    let outcome = controller
        .run(&job, goal)
        .expect("planning and deployment succeed");

    // 6. Report what Conductor decided and what it cost.
    println!("=== Conductor quickstart ===");
    println!(
        "job: {} ({} GB input, {} tasks)",
        job.name,
        job.input_gb,
        job.total_tasks()
    );
    println!("goal: minimize cost, deadline 6 h");
    println!();
    println!("plan:");
    println!(
        "  peak m1.large nodes : {}",
        outcome.plan.peak_nodes("m1.large")
    );
    println!("  node-hours          : {:?}", outcome.plan.node_hours());
    println!("  storage mix         : {:?}", outcome.plan.storage_mix());
    println!("  expected cost       : ${:.2}", outcome.plan.expected_cost);
    println!(
        "  expected completion : {:.1} h",
        outcome.plan.expected_completion_hours
    );
    println!();
    println!("measured execution:");
    println!(
        "  completion          : {:.2} h",
        outcome.execution.completion_hours
    );
    println!(
        "  met deadline        : {:?}",
        outcome.execution.met_deadline
    );
    println!(
        "  total cost          : ${:.2}",
        outcome.execution.total_cost
    );
    for (category, cost) in outcome.execution.cost_breakdown.iter() {
        println!("    {category:?}: ${cost:.2}");
    }
    println!();
    println!(
        "planning overhead: model {} vars / {} constraints, built in {:?}, solved in {:?}",
        outcome.planning.model_vars,
        outcome.planning.model_constraints,
        outcome.planning.model_build_time,
        outcome.planning.solve_time,
    );
}
