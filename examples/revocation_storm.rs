//! Spot revocation storms: the market takes the fleet's nodes away.
//!
//! Two tenants run against one shared spot market whose price spikes above
//! the fleet bid mid-run. At the out-bid hour every spot session is
//! terminated by the provider (the partial hour is not charged — EC2's
//! out-of-bid rule), the interrupted tasks go back to the runnable set,
//! and new capacity requests are refused until the price comes back down.
//! The periodic monitor then re-plans the victims against the post-storm
//! residual capacity, splicing updated schedules into the live
//! deployments — the fleet-scale version of the paper's Figure 12
//! deadline rescue.
//!
//! Run with: `cargo run --release --example revocation_storm`

use conductor_cloud::{Catalog, SpotMarket, SpotTrace, TraceKind};
use conductor_core::{ConductorService, FleetJobRequest, Goal, ResourcePool};
use conductor_mapreduce::Workload;

fn main() {
    // 1. A hand-written price trace: cheap hours everywhere except a storm
    //    at hours [2, 4) where the price spikes over the 0.34 bid.
    let prices: Vec<f64> = (0..48)
        .map(|t| if (2..4).contains(&t) { 0.50 } else { 0.20 })
        .collect();
    let market = SpotMarket::new(SpotTrace::from_prices(TraceKind::AwsLike, prices), 0.34);
    println!(
        "out-bid hours at bid $0.34: {:?}",
        market.revocation_hours(0, 48, 0.34).collect::<Vec<_>>()
    );

    // 2. The fleet: shared 100-node cap, both tenants priced (and revoked)
    //    by the same market.
    let catalog = Catalog::aws_july_2011();
    let pool = ResourcePool::from_catalog(&catalog, 1.0)
        .with_compute_only(&["m1.large"])
        .with_compute_cap("m1.large", 100);
    let service = ConductorService::new(catalog, pool).with_spot_market(market);

    let report = service
        .run(&[
            FleetJobRequest::new(
                "tight-deadline",
                Workload::KMeans32Gb.spec(),
                Goal::MinimizeCost {
                    deadline_hours: 7.0,
                },
                0.0,
            ),
            FleetJobRequest::new(
                "roomy-deadline",
                Workload::KMeans32Gb.spec(),
                Goal::MinimizeCost {
                    deadline_hours: 12.0,
                },
                0.5,
            ),
        ])
        .expect("fleet run succeeds");

    // 3. What the storm did to each tenant.
    println!("\n=== storm aftermath ===");
    for t in &report.tenants {
        let Some(exec) = &t.execution else {
            println!("{:<15} rejected: {:?}", t.tenant, t.rejection);
            continue;
        };
        println!(
            "{:<15} revoked at {:?}, re-planned at {:?}",
            t.tenant, t.revoked_at_hours, t.replanned_at_hours
        );
        println!(
            "{:<15} finished {:.2} h after arrival, bill ${:.2}, deadline {}",
            "",
            exec.completion_hours,
            exec.total_cost,
            match exec.met_deadline {
                Some(true) => "met",
                Some(false) => "MISSED",
                None => "none",
            }
        );
        // The blackout is visible in the allocation timeline: a dip to
        // zero at the storm hour, capacity re-acquired after recovery.
        let during: Vec<&(f64, usize)> = exec
            .allocation_timeline
            .iter()
            .filter(|(h, _)| {
                let fleet_hour = h + t.arrival_hours;
                (1.5..4.5).contains(&fleet_hour)
            })
            .collect();
        println!("{:<15} allocation around the storm: {during:?}", "");
    }
    println!(
        "\nfleet bill ${:.2} (= sum of tenant bills), {} / {} deadlines met",
        report.fleet_cost, report.deadlines_met, report.jobs_completed
    );
}
