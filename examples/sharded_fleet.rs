//! The sharded fleet runtime: partitioned tenants, parallel shard
//! stepping, and the queue-rebalancer.
//!
//! A `ShardedFleet` splits the capacity pool into N slices and runs one
//! independent `Fleet` per slice — own clock, own event heap, own
//! (optional) write-ahead log. Tenants route to shards by a deterministic
//! hash of their name; the only cross-shard interaction is an explicit
//! `TransferEvent` when the rebalancer migrates a *queued* job from a
//! deep queue toward slack. Shards share nothing mutable, so the driver
//! steps them on a scoped thread pool between barriers — and the whole
//! run stays bitwise deterministic.
//!
//! This example piles every tenant onto shard 0 through a custom
//! `ShardRouter` (the default hash router would spread them evenly and
//! leave the rebalancer nothing to do), then watches the rebalancer fan
//! the queue out across all four shards.
//!
//! Run with: `cargo run --release --example sharded_fleet`

use conductor_cloud::Catalog;
use conductor_core::{
    FleetConfig, FleetJobRequest, Goal, ResourcePool, ShardRouter, ShardedFleet,
    ShardedFleetConfig, TenantId,
};
use conductor_mapreduce::Workload;

/// Deliberately bad placement: everything on shard 0, so the rebalancer
/// has to earn its keep.
struct PileUpRouter;

impl ShardRouter for PileUpRouter {
    fn route(&self, _request: &FleetJobRequest, _shards: usize) -> usize {
        0
    }
}

fn main() {
    // 1. One 120-node pool, split four ways (30 nodes per shard).
    let catalog = Catalog::aws_july_2011();
    let pool = ResourcePool::from_catalog(&catalog, 1.0)
        .with_compute_only(&["m1.large"])
        .with_compute_cap("m1.large", 120);
    let mut fleet = ShardedFleet::with_router(
        catalog,
        pool,
        FleetConfig::default(),
        ShardedFleetConfig {
            shards: 4,
            rebalance_period_hours: Some(1.0),
        },
        Box::new(PileUpRouter),
    )
    .expect("valid sharded config");
    println!(
        "opened {} shards, rebalancing every 1 h",
        fleet.shard_count()
    );

    // 2. Twelve tenants, arrivals spread over twelve hours, all routed to
    //    shard 0: a worst-case pile-up.
    let mut ids: Vec<TenantId> = Vec::new();
    for i in 0..12 {
        let id = fleet
            .submit(FleetJobRequest::new(
                format!("tenant-{i:02}"),
                Workload::KMeansScaled { input_gb: 8 }.spec(),
                Goal::MinimizeCost {
                    deadline_hours: 8.0,
                },
                i as f64,
            ))
            .expect("valid request");
        ids.push(id);
    }
    println!("submitted {} tenants, all piled on shard 0", ids.len());

    // 3. Drain. The driver steps all four shards in parallel between
    //    rebalance barriers; at each barrier the rebalancer migrates
    //    queued jobs from the deepest queue toward slack.
    fleet.run_to_quiescence();

    // 4. The transfer log is the entire cross-shard story.
    println!("\n== transfers ({}) ==", fleet.transfers().len());
    for t in fleet.transfers() {
        println!(
            "  hour {:>4.1}  {}  shard {} -> shard {}",
            t.at_hours, t.tenant, t.from_shard, t.to_shard
        );
    }

    // 5. Global tenant ids survive migration: status() resolves wherever
    //    the job ended up.
    println!("\n== final placements ==");
    for &id in &ids {
        let status = fleet.status(id).expect("known tenant");
        println!(
            "  {:<10} shard {}  {:?}  bill ${:.2}",
            status.tenant,
            fleet.shard_of(id).unwrap(),
            status.state,
            status.bill_so_far,
        );
    }

    // 6. The merged view: one deterministically-ordered event stream and
    //    one fleet-wide report, same API shape as the single fleet.
    let report = fleet.report();
    let merged = fleet.merged_events();
    println!(
        "\nfleet bill ${:.2}, {} admitted / {} completed, {} events across {} shards",
        fleet.fleet_bill(),
        report.jobs_admitted,
        report.jobs_completed,
        merged.len(),
        fleet.shard_count(),
    );

    // This example is CI's sharded-runtime smoke test.
    assert!(
        !fleet.transfers().is_empty(),
        "the pile-up should force migrations"
    );
    let spread: std::collections::BTreeSet<usize> =
        ids.iter().filter_map(|&id| fleet.shard_of(id)).collect();
    assert!(
        spread.len() > 1,
        "the rebalancer should spread the pile-up across shards"
    );
    assert_eq!(report.jobs_completed, ids.len(), "every tenant completes");
    assert!(
        merged
            .windows(2)
            .all(|w| w[0].1.at_hours() <= w[1].1.at_hours() + 1e-9),
        "merged events must be in clock order"
    );
}
