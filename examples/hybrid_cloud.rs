//! Hybrid-cloud deployment (§6.3, Figures 10 and 11).
//!
//! The customer owns a 5-node local cluster that is free to use but too small
//! to meet a 4-hour deadline alone; Conductor augments it with EC2 instances.
//!
//! Run with: `cargo run --example hybrid_cloud -p conductor-core`

use conductor_cloud::Catalog;
use conductor_core::{Goal, JobController, Planner, ResourcePool};
use conductor_mapreduce::Workload;

fn main() {
    let deadline = 4.0;
    let spec = Workload::KMeans32Gb.spec();
    // AWS services plus the customer's own 5-node cluster (free, capped).
    let catalog = Catalog::aws_with_local_cluster(5);
    let pool = ResourcePool::from_catalog(&catalog, 1.0).with_compute_only(&["m1.large", "local"]);

    let planner = Planner::new(pool);
    let controller =
        JobController::new(catalog, planner).expect("planner pool matches the catalog");

    println!("=== Hybrid deployment: 5 free local nodes + EC2, deadline {deadline} h ===");

    let outcome = controller
        .run(
            &spec,
            Goal::MinimizeCost {
                deadline_hours: deadline,
            },
        )
        .expect("hybrid plan");

    println!("plan:");
    println!(
        "  peak local nodes    : {}",
        outcome.plan.peak_nodes("local")
    );
    println!(
        "  peak m1.large nodes : {}",
        outcome.plan.peak_nodes("m1.large")
    );
    println!("  node-hours          : {:?}", outcome.plan.node_hours());
    println!("  storage mix         : {:?}", outcome.plan.storage_mix());
    println!("  expected cost       : ${:.2}", outcome.plan.expected_cost);
    println!();
    println!("measured execution:");
    println!(
        "  completion          : {:.2} h",
        outcome.execution.completion_hours
    );
    println!(
        "  met deadline        : {:?}",
        outcome.execution.met_deadline
    );
    println!(
        "  total cost          : ${:.2}",
        outcome.execution.total_cost
    );
    for (category, cost) in outcome.execution.cost_breakdown.iter() {
        if cost > 0.005 {
            println!("    {category:?}: ${cost:.2}");
        }
    }
    println!();

    // What the cost/deadline trade-off looks like if the user guesses the EC2
    // node count instead (the Figure 11 sweep).
    println!("manual node-count sweep (what the user would have to guess):");
    for nodes in [11usize, 16, 21] {
        let planner = controller.planner();
        // Pin the number of EC2 nodes by restricting the model's horizon and
        // reading the plan cost for a manual schedule instead: here we simply
        // report the planned cost when the cap is forced via max_instances.
        let mut pool = planner.pool().clone();
        for c in &mut pool.compute {
            if c.name == "m1.large" {
                c.max_nodes = Some(nodes);
            }
        }
        let pinned = Planner::new(pool);
        match pinned.plan(
            &spec,
            Goal::MinimizeCost {
                deadline_hours: deadline,
            },
        ) {
            Ok((plan, _)) => println!(
                "  cap {nodes:>2} EC2 nodes -> planned cost ${:.2}, completion {:.1} h",
                plan.expected_cost, plan.expected_completion_hours
            ),
            Err(_) => println!("  cap {nodes:>2} EC2 nodes -> deadline cannot be met"),
        }
    }
}
