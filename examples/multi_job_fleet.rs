//! Fleet-level orchestration: many tenants, one Conductor.
//!
//! Four tenants submit MapReduce jobs with mixed deadlines at staggered
//! arrival times. The `ConductorService` plans each arrival against the
//! *residual* capacity the earlier tenants left under a fleet-wide
//! allocation cap, prices every rental against one shared spot-price
//! trace, meters a per-tenant bill, and watches progress with periodic
//! monitor events on the shared simulation clock.
//!
//! Run with: `cargo run --release --example multi_job_fleet`

use conductor_cloud::{Catalog, SpotMarket, SpotTrace};
use conductor_core::{ConductorService, FleetJobRequest, Goal, ResourcePool};
use conductor_mapreduce::Workload;

fn main() {
    // 1. The shared infrastructure: the AWS catalog, a fleet-wide cap of
    //    90 m1.large instances, and one spot market every tenant bids in.
    let catalog = Catalog::aws_july_2011();
    let pool = ResourcePool::from_catalog(&catalog, 1.0)
        .with_compute_only(&["m1.large"])
        .with_compute_cap("m1.large", 90);
    let market = SpotMarket::new(SpotTrace::electricity_like(17, 24 * 10), 0.34);
    let service = ConductorService::new(catalog, pool).with_spot_market(market);

    // 2. The tenants: mixed workloads and deadlines, arriving half an hour
    //    apart.
    let requests = vec![
        FleetJobRequest::new(
            "analytics-team",
            Workload::KMeans32Gb.spec(),
            Goal::MinimizeCost {
                deadline_hours: 6.0,
            },
            0.0,
        ),
        FleetJobRequest::new(
            "ml-research",
            Workload::KMeans32Gb.spec(),
            Goal::MinimizeCost {
                deadline_hours: 7.0,
            },
            0.5,
        ),
        FleetJobRequest::new(
            "reporting",
            Workload::KMeansFastScan32Gb.spec(),
            Goal::MinimizeCost {
                deadline_hours: 6.0,
            },
            1.0,
        ),
        FleetJobRequest::new(
            "batch-etl",
            Workload::KMeans32Gb.spec(),
            Goal::MinimizeCost {
                deadline_hours: 8.0,
            },
            1.5,
        ),
    ];

    // 3. Run the fleet on one shared clock.
    let report = service.run(&requests).expect("fleet run succeeds");

    println!("=== Conductor fleet: {} tenants ===", report.tenants.len());
    println!(
        "admitted {} / completed {} / deadlines met {}",
        report.jobs_admitted, report.jobs_completed, report.deadlines_met
    );
    println!();
    for t in &report.tenants {
        print!("{:<15} arrived {:>4.1} h  ", t.tenant, t.arrival_hours);
        match (&t.execution, &t.rejection) {
            (Some(exec), _) => {
                let peak = t
                    .plan
                    .as_ref()
                    .map(|p| p.peak_nodes("m1.large"))
                    .unwrap_or(0);
                println!(
                    "peak {:>3} nodes  finished {:>5.2} h after arrival  bill ${:>6.2}  deadline {}",
                    peak,
                    exec.completion_hours,
                    exec.total_cost,
                    match exec.met_deadline {
                        Some(true) => "met",
                        Some(false) => "MISSED",
                        None => "none",
                    }
                );
                if !t.replanned_at_hours.is_empty() {
                    println!(
                        "{:15} monitor re-planned at fleet hours {:?}",
                        "", t.replanned_at_hours
                    );
                }
            }
            (None, Some(reason)) => println!("REJECTED: {reason}"),
            (None, None) => println!("FAILED: {:?}", t.failure),
        }
    }
    println!();
    println!(
        "fleet bill: ${:.2} (= sum of tenant bills), makespan {:.2} h",
        report.fleet_cost, report.makespan_hours
    );
    for (category, cost) in report.fleet_breakdown.iter() {
        println!("  {category:?}: ${cost:.2}");
    }
}
