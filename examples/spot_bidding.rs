//! Spot-market bidding (§6.5, Figures 13 and 14).
//!
//! Generates the two spot-price traces the paper evaluates against (an
//! AWS-like unpredictable trace and an electricity-market-like diurnal
//! trace), then compares regular instances against spot deployments driven by
//! the paper's bid predictors (-opt, -p0, -p5, -p13).
//!
//! Run with: `cargo run --example spot_bidding -p conductor-core`

use conductor_cloud::{SpotMarket, SpotTrace, TraceKind};
use conductor_core::{BidPredictor, SpotDeploymentSimulator};

fn main() {
    let hours = 24 * 35;
    let starts: Vec<usize> = (0..24 * 28).step_by(5).collect();
    // The paper's job shape: ~80 node-hours (16 nodes x 5 h) with slack to
    // wait for cheap prices within a 12-hour window.
    let node_hours = 80;
    let concurrency = 16;
    let deadline = 12;

    println!("=== Spot price traces (Figure 13) ===");
    for (label, trace) in [
        ("electricity-like", SpotTrace::electricity_like(42, hours)),
        ("aws-like", SpotTrace::aws_like(42, hours)),
    ] {
        let prices = trace.prices();
        let mean = prices.iter().sum::<f64>() / prices.len() as f64;
        let min = prices.iter().copied().fold(f64::INFINITY, f64::min);
        let max = prices.iter().copied().fold(0.0f64, f64::max);
        println!("  {label:<18} mean ${mean:.3}/h  min ${min:.3}  max ${max:.3}");
        // A one-day excerpt so the diurnal structure (or its absence) is visible.
        let day: Vec<String> = trace
            .window(72, 24)
            .iter()
            .map(|p| format!("{p:.2}"))
            .collect();
        println!("    day 4 hourly prices: {}", day.join(" "));
    }

    println!();
    println!("=== Spot savings by predictor (Figure 14) ===");
    println!(
        "{:<12} {:>12} {:>12} {:>10} {:>14}",
        "scenario", "avg cost $", "max cost $", "stddev", "interrupted %"
    );
    for (kind, prefix) in [
        (TraceKind::AwsLike, "aws"),
        (TraceKind::ElectricityLike, "el"),
    ] {
        let trace = match kind {
            TraceKind::AwsLike => SpotTrace::aws_like(42, hours),
            TraceKind::ElectricityLike => SpotTrace::electricity_like(42, hours),
        };
        let market = SpotMarket::new(trace, 0.34);
        let sim = SpotDeploymentSimulator::new(market, node_hours, concurrency, deadline);
        let predictors = [
            BidPredictor::Regular,
            BidPredictor::Optimal,
            BidPredictor::Current,
            BidPredictor::MaxOfPastDays { days: 5 },
            BidPredictor::MaxOfPastDays { days: 13 },
        ];
        for predictor in predictors {
            let label = if predictor == BidPredictor::Regular {
                "regular".to_string()
            } else {
                format!("{prefix}-{}", predictor.label())
            };
            let result = sim.run_scenario(&label, predictor, &starts);
            println!(
                "{:<12} {:>12.2} {:>12.2} {:>10.2} {:>13.0}%",
                result.label,
                result.average_cost,
                result.max_cost,
                result.std_dev,
                result.interruption_rate * 100.0
            );
        }
    }
    println!();
    println!("Spot allocation cuts the average job cost by roughly half versus regular");
    println!("instances, and even the trivial p0 predictor captures most of the savings —");
    println!("the paper's two main observations in §6.5.");
}
