//! The open-world fleet: submit while it runs, watch the event stream.
//!
//! The batch API (`ConductorService::run`, see `multi_job_fleet.rs`) needs
//! every arrival up front. This example drives the incremental `Fleet`
//! session instead: one tenant is admitted at hour 0, the clock is stepped
//! into a revocation storm, a second tenant is submitted *mid-storm* (its
//! admission plans against whatever the first tenant left over), a third
//! is queued and cancelled before it ever arrives — and every lifecycle
//! transition (Submitted, Admitted, Planned, Revoked, Replanned,
//! Completed, …) arrives as a typed `FleetEvent` in deterministic clock
//! order.
//!
//! Run with: `cargo run --release --example online_fleet`

use conductor_cloud::{Catalog, SpotMarket, SpotTrace, TraceKind};
use conductor_core::{Fleet, FleetConfig, FleetEvent, FleetJobRequest, Goal, ResourcePool};
use conductor_mapreduce::Workload;

fn main() {
    // 1. The shared infrastructure: a fleet-wide 100-node cap and a spot
    //    market whose price spikes above the 0.34 bid at hours [2, 4) — a
    //    genuine two-hour revocation storm.
    let catalog = Catalog::aws_july_2011();
    let pool = ResourcePool::from_catalog(&catalog, 1.0)
        .with_compute_only(&["m1.large"])
        .with_compute_cap("m1.large", 100);
    let prices: Vec<f64> = (0..48)
        .map(|t| if (2..4).contains(&t) { 0.50 } else { 0.20 })
        .collect();
    let config = FleetConfig {
        spot_market: Some(SpotMarket::new(
            SpotTrace::from_prices(TraceKind::AwsLike, prices),
            0.34,
        )),
        ..FleetConfig::default()
    };
    let mut fleet = Fleet::new(catalog, pool, config).expect("valid fleet config");

    // 2. An observer sees every event as it happens (closures work).
    fleet.observe(Box::new(|event: &FleetEvent| {
        println!("  [observer] {event:?}");
    }));

    // 3. Tenant 1 arrives at hour 0 with a deadline tight enough that the
    //    storm is guaranteed to hit a working cluster.
    println!("== hour 0: submit `analytics` (deadline 7 h) ==");
    let analytics = fleet
        .submit(FleetJobRequest::new(
            "analytics",
            Workload::KMeans32Gb.spec(),
            Goal::MinimizeCost {
                deadline_hours: 7.0,
            },
            0.0,
        ))
        .expect("valid request");

    // 4. Step into the middle of the storm and look around: the job is
    //    running, its nodes were just revoked, its bill is accruing.
    fleet.step_until(2.5);
    let status = fleet.status(analytics).expect("known tenant");
    println!(
        "== hour {:.1}: `analytics` is {:?}, revoked at {:?}, bill so far ${:.2} ==",
        fleet.now_hours(),
        status.state,
        status.revoked_at_hours,
        status.bill_so_far,
    );

    // 5. Submit a second tenant *mid-storm*. Its admission plan is built
    //    against the residual capacity the survivor leaves and against the
    //    post-storm price forecast.
    println!("== hour 2.5: submit `batch-etl` mid-run (deadline 10 h) ==");
    let etl = fleet
        .submit(FleetJobRequest::new(
            "batch-etl",
            Workload::KMeansScaled { input_gb: 16 }.spec(),
            Goal::MinimizeCost {
                deadline_hours: 10.0,
            },
            2.5,
        ))
        .expect("valid request");

    // 6. Queue a third job for much later, then think better of it.
    let speculative = fleet
        .submit(FleetJobRequest::new(
            "speculative",
            Workload::KMeansScaled { input_gb: 8 }.spec(),
            Goal::MinimizeCost {
                deadline_hours: 6.0,
            },
            30.0,
        ))
        .expect("valid request");
    println!("== hour 2.5: cancel `speculative` before it arrives ==");
    fleet.cancel(speculative).expect("known tenant");

    // 7. Drain the fleet and print the final outcomes.
    fleet.run_to_quiescence();
    println!();
    println!("== final report (fleet hour {:.1}) ==", fleet.now_hours());
    for id in [analytics, etl, speculative] {
        let s = fleet.status(id).expect("known tenant");
        println!(
            "{:<12} {:?}  finished {:?}  re-plans {:?}  bill ${:.2}",
            s.tenant, s.state, s.finished_at_hours, s.replanned_at_hours, s.bill_so_far,
        );
    }
    let report = fleet.report();
    println!(
        "fleet bill ${:.2}, {} admitted / {} completed / {} deadlines met, {} events emitted",
        fleet.fleet_bill(),
        report.jobs_admitted,
        report.jobs_completed,
        report.deadlines_met,
        fleet.events().len(),
    );

    // The storm really interrupted the first tenant, and the fleet
    // rescued it: this example is CI's online-submission smoke test.
    let analytics_status = fleet.status(analytics).unwrap();
    assert!(
        !analytics_status.revoked_at_hours.is_empty(),
        "the storm should have hit the running tenant"
    );
    assert!(
        analytics_status.finished_at_hours.is_some(),
        "the victim should still complete"
    );
    assert!(
        fleet
            .events()
            .windows(2)
            .all(|w| w[0].at_hours() <= w[1].at_hours() + 1e-9),
        "events must be in clock order"
    );
}
