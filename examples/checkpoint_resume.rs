//! Durability: suspend a fleet at an event boundary and resume it, or
//! rebuild it from nothing but its write-ahead event log.
//!
//! The fleet clock is deterministic, so durability reduces to two
//! mechanisms proven here end to end:
//!
//! 1. **Checkpoint/resume** — `Fleet::checkpoint()` captures the whole
//!    session (clock, event heap, per-tenant executions, billing, plan
//!    cache, solver state) as a serializable `FleetSnapshot`; the JSON
//!    round-trip plus `Fleet::restore` reproduces the uninterrupted run
//!    bit for bit.
//! 2. **Replay** — every `FleetEvent` carries enough payload (the full
//!    request on `Submitted`, fault salts, cache keys) that
//!    `Fleet::replay` can re-drive the persisted log from an empty
//!    fleet and arrive at the identical state. `WalWriter`/`WalReader`
//!    persist the log as JSON lines and recover cleanly from a torn
//!    tail (a crash mid-write).
//!
//! Run with: `cargo run --release --example checkpoint_resume`

use conductor_cloud::{Catalog, SpotMarket, SpotTrace, TraceKind};
use conductor_core::{
    Fleet, FleetConfig, FleetJobRequest, Goal, ResourcePool, WalReader, WalWriter,
};
use conductor_mapreduce::Workload;

/// Three staggered arrivals on a capped pool under a revocation storm —
/// small enough to run in seconds, busy enough that the snapshot has a
/// non-trivial heap (revocation sweeps, monitor ticks) to carry across.
fn fixture() -> (Catalog, ResourcePool, FleetConfig, Vec<FleetJobRequest>) {
    let catalog = Catalog::aws_july_2011();
    let pool = ResourcePool::from_catalog(&catalog, 1.0)
        .with_compute_only(&["m1.large"])
        .with_compute_cap("m1.large", 60);
    let prices: Vec<f64> = (0..48)
        .map(|t| if (2..4).contains(&t) { 0.50 } else { 0.20 })
        .collect();
    let config = FleetConfig {
        spot_market: Some(SpotMarket::new(
            SpotTrace::from_prices(TraceKind::AwsLike, prices),
            0.34,
        )),
        ..FleetConfig::default()
    };
    let requests = vec![
        FleetJobRequest::new(
            "analytics",
            Workload::KMeansScaled { input_gb: 16 }.spec(),
            Goal::MinimizeCost {
                deadline_hours: 9.0,
            },
            0.0,
        ),
        FleetJobRequest::new(
            "batch-etl",
            Workload::KMeansScaled { input_gb: 8 }.spec(),
            Goal::MinimizeCost {
                deadline_hours: 12.0,
            },
            1.5,
        ),
        FleetJobRequest::new(
            "nightly-rollup",
            Workload::KMeansScaled { input_gb: 8 }.spec(),
            Goal::MinimizeCost {
                deadline_hours: 14.0,
            },
            3.0,
        ),
    ];
    (catalog, pool, config, requests)
}

fn open_fleet(
    catalog: &Catalog,
    pool: &ResourcePool,
    config: &FleetConfig,
    requests: &[FleetJobRequest],
) -> Fleet {
    let mut fleet =
        Fleet::new(catalog.clone(), pool.clone(), config.clone()).expect("valid fleet config");
    for request in requests {
        fleet.submit(request.clone()).expect("valid request");
    }
    fleet
}

fn main() {
    let (catalog, pool, config, requests) = fixture();

    // 1. The reference: one uninterrupted run to quiescence.
    let mut reference = open_fleet(&catalog, &pool, &config, &requests);
    reference.run_to_quiescence();
    let reference_report = reference.report();
    println!(
        "reference run: {} events, fleet bill ${:.2}, makespan {:.1} h",
        reference.events().len(),
        reference_report.fleet_cost,
        reference_report.makespan_hours,
    );

    // 2. Suspend mid-storm. Step the same session batch by batch, then
    //    checkpoint at an event boundary — the snapshot is plain JSON,
    //    so it can be written to disk, shipped, or archived.
    let mut interrupted = open_fleet(&catalog, &pool, &config, &requests);
    let mut boundaries = 0;
    while interrupted.now_hours() < 2.5 && interrupted.step_one_batch() {
        boundaries += 1;
    }
    let json = interrupted.checkpoint().to_json();
    println!(
        "suspended after {boundaries} batches at hour {:.2}: snapshot is {} bytes of JSON, {} events pending",
        interrupted.now_hours(),
        json.len(),
        interrupted.pending_events(),
    );
    drop(interrupted); // the process "crashes" here

    // 3. Resume in a fresh fleet from the snapshot alone and finish.
    let snapshot =
        conductor_core::FleetSnapshot::from_json(&json).expect("snapshot JSON round-trips");
    let mut resumed = Fleet::restore(catalog.clone(), pool.clone(), config.clone(), &snapshot)
        .expect("snapshot restores");
    resumed.run_to_quiescence();
    let resumed_report = resumed.report();
    assert_eq!(
        resumed.events(),
        reference.events(),
        "resumed event stream must match the uninterrupted run"
    );
    assert_eq!(
        resumed_report.fleet_cost.to_bits(),
        reference_report.fleet_cost.to_bits(),
        "resumed bill must match bitwise"
    );
    println!(
        "resumed run: identical event stream ({} events) and bitwise-equal bill",
        resumed.events().len(),
    );

    // 4. Replay: persist the event log through the WAL, then rebuild the
    //    whole session from the log alone — no snapshot involved.
    let wal_path =
        std::env::temp_dir().join(format!("conductor_example_{}.wal", std::process::id()));
    let mut writer = WalWriter::create(&wal_path).expect("WAL create");
    writer.log_all(reference.events()).expect("WAL append");
    drop(writer);
    let readout = WalReader::read(&wal_path).expect("WAL read");
    assert!(!readout.torn, "a cleanly closed WAL has no torn tail");
    let mut replayed =
        Fleet::replay(catalog, pool, config, &readout.events).expect("event log replays cleanly");
    replayed.run_to_quiescence();
    assert_eq!(
        replayed.events(),
        reference.events(),
        "replay must regenerate the exact log"
    );
    assert_eq!(
        replayed.report().fleet_cost.to_bits(),
        reference_report.fleet_cost.to_bits(),
        "replayed bill must match bitwise"
    );
    println!(
        "replayed {} WAL events into an identical session (bill bitwise-equal)",
        readout.events.len(),
    );
    std::fs::remove_file(&wal_path).ok();
    println!("checkpoint/resume and replay both reproduce the reference bit for bit");
}
