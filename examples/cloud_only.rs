//! Cloud-only deployment comparison (§6.2, Figures 5 and 6).
//!
//! Compares Conductor's automatically planned deployment against the three
//! manual options the Hadoop/AWS documentation suggests: upload-to-HDFS
//! first, read directly from the customer's HDFS, and store everything on S3.
//!
//! Run with: `cargo run --example cloud_only -p conductor-core`

use conductor_cloud::{catalog::mbps_to_gb_per_hour, Catalog};
use conductor_core::{Goal, JobController, Planner, ResourcePool};
use conductor_mapreduce::engine::{DataLocation, DeploymentOptions, Engine, ExecutionReport};
use conductor_mapreduce::scheduler::LocalityScheduler;
use conductor_mapreduce::Workload;

fn print_report(report: &ExecutionReport) {
    println!(
        "  {:<22} cost ${:>6.2}   time {:>5.2} h   met deadline: {:?}",
        report.name, report.total_cost, report.completion_hours, report.met_deadline
    );
    for (category, cost) in report.cost_breakdown.iter() {
        if cost > 0.005 {
            println!("      {category:?}: ${cost:.2}");
        }
    }
}

fn main() {
    let catalog = Catalog::aws_july_2011();
    let uplink = mbps_to_gb_per_hour(16.0);
    let spec = Workload::KMeans32Gb.spec();
    let deadline = 6.0;
    let engine = Engine::new(catalog.clone());
    let upload_hours = spec.input_gb / uplink;

    println!(
        "=== Cloud-only deployment options for {} (deadline {deadline} h) ===",
        spec.name
    );

    // --- Conductor: plan automatically, deploy through the plan-following scheduler.
    let pool = ResourcePool::from_catalog(&catalog, 1.0).with_compute_only(&["m1.large"]);
    let planner = Planner::new(pool);
    let controller =
        JobController::new(catalog.clone(), planner).expect("planner pool matches the catalog");
    let outcome = controller
        .run(
            &spec,
            Goal::MinimizeCost {
                deadline_hours: deadline,
            },
        )
        .expect("conductor plan");
    print_report(&outcome.execution);

    // --- Hadoop upload first: one node receives the upload into HDFS, then
    //     100 instances join and process.
    let upload_first = DeploymentOptions {
        upload_before_processing: true,
        deadline_hours: Some(deadline),
        ..DeploymentOptions::new("hadoop-upload-first", uplink)
            .with_nodes("m1.large", 1, 0.0)
            .with_nodes("m1.large", 100, upload_hours)
    };
    print_report(
        &engine
            .run(&spec, &upload_first, &LocalityScheduler)
            .expect("upload first"),
    );

    // --- Hadoop direct: 16 instances stream their input from the customer's
    //     HDFS over the uplink.
    let direct = DeploymentOptions {
        upload_plan: vec![],
        deadline_hours: Some(deadline),
        ..DeploymentOptions::new("hadoop-direct", uplink).with_nodes("m1.large", 16, 0.0)
    };
    print_report(
        &engine
            .run(&spec, &direct, &LocalityScheduler)
            .expect("direct"),
    );

    // --- Hadoop S3: upload everything to S3 first, then 100 instances read
    //     from S3 (processing takes just over an hour, but two are billed).
    let s3 = DeploymentOptions {
        upload_plan: vec![(DataLocation::S3, 1.0)],
        upload_before_processing: true,
        deadline_hours: Some(deadline),
        ..DeploymentOptions::new("hadoop-s3", uplink).with_nodes("m1.large", 100, upload_hours)
    };
    print_report(&engine.run(&spec, &s3, &LocalityScheduler).expect("s3"));

    println!();
    println!(
        "Conductor picked {} m1.large nodes and the storage mix {:?},",
        outcome.plan.peak_nodes("m1.large"),
        outcome.plan.storage_mix()
    );
    println!("matching the paper's observation that it lands near the cheapest option while meeting the deadline.");
}
