//! Analytical throughput model of Conductor's storage layer (Figure 15).
//!
//! The paper measures ~25% lower throughput for Conductor's storage service
//! than for HDFS, attributing the gap to the abstraction layer (namenode
//! lookups, key-value chunking, backend indirection) rather than to the
//! underlying services, and deems it "an acceptable throughput overhead".
//! [`ConductorStorageModel`] expresses that relationship so the Figure 15
//! bench can regenerate all four bars from one parameter set.

use serde::{Deserialize, Serialize};

/// Throughput model for Conductor's own storage path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConductorStorageModel {
    /// Throughput of the underlying direct path (HDFS-like pipeline), MB/s.
    pub baseline_mbps: f64,
    /// Fractional overhead added by the abstraction layer (0.25 in the paper).
    pub abstraction_overhead: f64,
    /// Per-block namenode lookup latency in milliseconds.
    pub namenode_lookup_ms: f64,
    /// Fraction of reads served by the co-located fast path (which skips the
    /// namenode lookup entirely).
    pub local_hit_rate: f64,
}

impl Default for ConductorStorageModel {
    fn default() -> Self {
        Self {
            baseline_mbps: 21.0,
            abstraction_overhead: 0.25,
            namenode_lookup_ms: 2.0,
            local_hit_rate: 0.8,
        }
    }
}

impl ConductorStorageModel {
    /// Sustained throughput of Conductor's storage layer for blocks of
    /// `block_mb` megabytes, in MB/s.
    pub fn throughput_mbps(&self, block_mb: f64) -> f64 {
        if block_mb <= 0.0 {
            return 0.0;
        }
        let effective = self.baseline_mbps * (1.0 - self.abstraction_overhead);
        // Namenode lookups only hit the slow path.
        let lookups_per_block = 1.0 - self.local_hit_rate;
        let lookup_s = lookups_per_block * self.namenode_lookup_ms / 1000.0;
        let transfer_s = block_mb / effective;
        block_mb / (transfer_s + lookup_s)
    }

    /// Time in seconds to copy `total_gb` of data in `block_mb` blocks.
    pub fn copy_time_s(&self, total_gb: f64, block_mb: f64) -> f64 {
        let mbps = self.throughput_mbps(block_mb);
        if mbps <= 0.0 {
            return f64::INFINITY;
        }
        total_gb * 1024.0 / mbps
    }

    /// The relative overhead versus the baseline path for a given block size
    /// (≈ `abstraction_overhead` for large blocks).
    pub fn relative_overhead(&self, block_mb: f64) -> f64 {
        1.0 - self.throughput_mbps(block_mb) / self.baseline_mbps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_roughly_a_quarter_for_64mb_blocks() {
        let m = ConductorStorageModel::default();
        let overhead = m.relative_overhead(64.0);
        assert!(overhead > 0.2 && overhead < 0.3, "overhead {overhead}");
        // Throughput lands in the band the paper plots (~15-16 MB/s).
        let t = m.throughput_mbps(64.0);
        assert!(t > 14.0 && t < 17.0, "throughput {t}");
    }

    #[test]
    fn small_blocks_pay_more_for_namenode_lookups() {
        let m = ConductorStorageModel::default();
        assert!(m.throughput_mbps(1.0) < m.throughput_mbps(64.0));
        assert!(m.relative_overhead(1.0) > m.relative_overhead(64.0));
    }

    #[test]
    fn higher_local_hit_rate_improves_throughput() {
        let base = ConductorStorageModel::default();
        let all_local = ConductorStorageModel {
            local_hit_rate: 1.0,
            ..base
        };
        assert!(all_local.throughput_mbps(4.0) > base.throughput_mbps(4.0));
    }

    #[test]
    fn copy_time_for_32gb_is_about_35_minutes() {
        // 32 GB at ~15.7 MB/s ≈ 2,100 s, the scale of the paper's measurement.
        let m = ConductorStorageModel::default();
        let t = m.copy_time_s(32.0, 64.0);
        assert!(t > 1800.0 && t < 2400.0, "copy time {t}");
        assert_eq!(m.copy_time_s(32.0, 0.0), f64::INFINITY);
    }
}
