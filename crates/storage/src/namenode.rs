//! The namenode: Conductor's storage directory service (§5.1).
//!
//! The namenode "provides a directory service for data, and manages upload,
//! replication and migration of the data as per the execution plan". It
//! keeps, for every block, a set of location records identifying the backends
//! holding a replica, chooses placements for new blocks, and tracks which
//! blocks the plan wants uploaded or replicated with higher priority (the
//! hints the Hadoop FS driver passes down, §5.3).

use crate::backend::{BackendId, BackendProfile};
use crate::error::StorageError;
use crate::kv::BlockKey;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A location record: which backend holds a replica of a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockLocation {
    /// Backend holding the replica.
    pub backend: BackendId,
}

/// How many replicas of each block the namenode tries to maintain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicationPolicy {
    /// Desired replica count (the paper's prototype uses 3).
    pub replicas: usize,
}

impl Default for ReplicationPolicy {
    fn default() -> Self {
        Self { replicas: 3 }
    }
}

/// The metadata service.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Namenode {
    policy: ReplicationPolicy,
    backends: BTreeMap<BackendId, BackendProfile>,
    locations: BTreeMap<BlockKey, Vec<BlockLocation>>,
    /// Blocks the execution plan wants moved/replicated first.
    priority: BTreeSet<BlockKey>,
}

impl Namenode {
    /// Creates a namenode with the default (3-way) replication policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a namenode with an explicit replication policy.
    pub fn with_policy(policy: ReplicationPolicy) -> Self {
        Self {
            policy,
            ..Self::default()
        }
    }

    /// The active replication policy.
    pub fn policy(&self) -> ReplicationPolicy {
        self.policy
    }

    /// Registers a storage backend so it can receive placements.
    pub fn register_backend(&mut self, id: BackendId, profile: BackendProfile) {
        self.backends.insert(id, profile);
    }

    /// Unregisters a backend (e.g. the node left the cluster). Its replicas
    /// are forgotten; blocks may become under-replicated or lost.
    pub fn unregister_backend(&mut self, id: BackendId) {
        self.backends.remove(&id);
        for locs in self.locations.values_mut() {
            locs.retain(|l| l.backend != id);
        }
    }

    /// Registered backends and their profiles.
    pub fn backends(&self) -> impl Iterator<Item = (BackendId, BackendProfile)> + '_ {
        self.backends.iter().map(|(id, p)| (*id, *p))
    }

    /// Chooses up to `policy.replicas` distinct backends for a new block of
    /// `size_bytes`, preferring the writer's co-located backend (`local`)
    /// first — the write fast path of §5.1 — and then backends with the
    /// lowest ping.
    pub fn choose_placement(
        &self,
        size_bytes: u64,
        local: Option<BackendId>,
    ) -> Result<Vec<BackendId>, StorageError> {
        let mut candidates: Vec<(BackendId, BackendProfile)> = self
            .backends
            .iter()
            .filter(|(_, p)| p.capacity_bytes >= size_bytes)
            .map(|(id, p)| (*id, *p))
            .collect();
        if candidates.is_empty() {
            return Err(StorageError::NoEligibleBackend);
        }
        candidates.sort_by(|a, b| {
            let a_local = Some(a.0) == local;
            let b_local = Some(b.0) == local;
            b_local
                .cmp(&a_local)
                .then(
                    a.1.ping_ms
                        .partial_cmp(&b.1.ping_ms)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
                .then(a.0.cmp(&b.0))
        });
        Ok(candidates
            .into_iter()
            .take(self.policy.replicas.max(1))
            .map(|(id, _)| id)
            .collect())
    }

    /// Records that `backend` now holds a replica of `key`.
    pub fn add_replica(&mut self, key: BlockKey, backend: BackendId) {
        let locs = self.locations.entry(key).or_default();
        if !locs.iter().any(|l| l.backend == backend) {
            locs.push(BlockLocation { backend });
        }
    }

    /// Records that `backend` no longer holds a replica of `key`.
    pub fn remove_replica(&mut self, key: &BlockKey, backend: BackendId) {
        if let Some(locs) = self.locations.get_mut(key) {
            locs.retain(|l| l.backend != backend);
            if locs.is_empty() {
                self.locations.remove(key);
            }
        }
    }

    /// The location records of a block.
    pub fn locations(&self, key: &BlockKey) -> Result<&[BlockLocation], StorageError> {
        self.locations
            .get(key)
            .map(Vec::as_slice)
            .ok_or_else(|| StorageError::UnknownBlock {
                key: key.as_str().to_string(),
            })
    }

    /// `true` when the namenode knows of at least one replica of the block.
    pub fn knows(&self, key: &BlockKey) -> bool {
        self.locations.contains_key(key)
    }

    /// Number of known blocks.
    pub fn block_count(&self) -> usize {
        self.locations.len()
    }

    /// Blocks that currently have fewer replicas than the policy requires.
    pub fn under_replicated(&self) -> Vec<BlockKey> {
        self.locations
            .iter()
            .filter(|(_, locs)| locs.len() < self.policy.replicas)
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Marks a block as high priority for upload/replication (the hint the
    /// Hadoop driver passes down so plan-critical data moves first).
    pub fn set_priority(&mut self, key: BlockKey) {
        self.priority.insert(key);
    }

    /// Clears a priority hint.
    pub fn clear_priority(&mut self, key: &BlockKey) {
        self.priority.remove(key);
    }

    /// `true` if the block is currently marked high priority.
    pub fn is_priority(&self, key: &BlockKey) -> bool {
        self.priority.contains(key)
    }

    /// Blocks whose replicas live on `backend` (used to plan migrations when
    /// the plan asks for data to move).
    pub fn blocks_on(&self, backend: BackendId) -> Vec<BlockKey> {
        self.locations
            .iter()
            .filter(|(_, locs)| locs.iter().any(|l| l.backend == backend))
            .map(|(k, _)| k.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nn_with_backends() -> Namenode {
        let mut nn = Namenode::new();
        nn.register_backend(BackendId(1), BackendProfile::local_disk());
        nn.register_backend(BackendId(2), BackendProfile::local_disk());
        nn.register_backend(BackendId(3), BackendProfile::object_store());
        nn
    }

    #[test]
    fn placement_prefers_local_then_lowest_ping() {
        let nn = nn_with_backends();
        let placement = nn.choose_placement(1024, Some(BackendId(2))).unwrap();
        assert_eq!(placement[0], BackendId(2));
        assert_eq!(placement.len(), 3);
        // Without a local hint the lowest-ping (local disk) backends come first.
        let placement = nn.choose_placement(1024, None).unwrap();
        assert_eq!(placement[0], BackendId(1));
        assert_eq!(placement.last(), Some(&BackendId(3)));
    }

    #[test]
    fn placement_respects_capacity_and_replica_count() {
        let mut nn = Namenode::with_policy(ReplicationPolicy { replicas: 2 });
        nn.register_backend(
            BackendId(1),
            BackendProfile {
                capacity_bytes: 10,
                ..BackendProfile::local_disk()
            },
        );
        nn.register_backend(BackendId(2), BackendProfile::object_store());
        let placement = nn.choose_placement(1000, None).unwrap();
        assert_eq!(placement, vec![BackendId(2)]);
        assert!(matches!(
            Namenode::new().choose_placement(1, None),
            Err(StorageError::NoEligibleBackend)
        ));
    }

    #[test]
    fn replica_bookkeeping() {
        let mut nn = nn_with_backends();
        let key = BlockKey::chunk("f", 0);
        nn.add_replica(key.clone(), BackendId(1));
        nn.add_replica(key.clone(), BackendId(3));
        nn.add_replica(key.clone(), BackendId(1)); // duplicate is ignored
        assert_eq!(nn.locations(&key).unwrap().len(), 2);
        assert!(nn.knows(&key));
        assert_eq!(nn.block_count(), 1);
        // 2 replicas < policy 3 -> under-replicated.
        assert_eq!(nn.under_replicated(), vec![key.clone()]);
        nn.remove_replica(&key, BackendId(1));
        nn.remove_replica(&key, BackendId(3));
        assert!(!nn.knows(&key));
        assert!(nn.locations(&key).is_err());
    }

    #[test]
    fn unregistering_a_backend_drops_its_replicas() {
        let mut nn = nn_with_backends();
        let key = BlockKey::chunk("f", 0);
        nn.add_replica(key.clone(), BackendId(1));
        nn.add_replica(key.clone(), BackendId(2));
        nn.unregister_backend(BackendId(1));
        let locs = nn.locations(&key).unwrap();
        assert_eq!(locs.len(), 1);
        assert_eq!(locs[0].backend, BackendId(2));
        assert_eq!(nn.blocks_on(BackendId(2)), vec![key]);
        assert!(nn.blocks_on(BackendId(1)).is_empty());
    }

    #[test]
    fn priority_hints_toggle() {
        let mut nn = nn_with_backends();
        let key = BlockKey::chunk("f", 9);
        assert!(!nn.is_priority(&key));
        nn.set_priority(key.clone());
        assert!(nn.is_priority(&key));
        nn.clear_priority(&key);
        assert!(!nn.is_priority(&key));
    }
}
