//! The uniform key-value interface all storage backends implement.
//!
//! The paper's storage daemons expose "a protocol with put, get and delete
//! queries" (§5.1); [`KeyValueStore`] is that protocol. Keys identify file
//! blocks, values are opaque byte vectors.

use serde::{Deserialize, Serialize};

/// The key of one stored block.
///
/// Blocks are usually chunks of a larger file (`file:index`), but any string
/// key is accepted — the interface is deliberately generic so higher-level
/// abstractions (file systems, tables) can be layered on top, as the paper
/// notes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockKey(pub String);

impl BlockKey {
    /// Builds the conventional key for chunk `index` of file `file`.
    pub fn chunk(file: &str, index: usize) -> Self {
        BlockKey(format!("{file}:{index}"))
    }

    /// The raw key string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl From<&str> for BlockKey {
    fn from(s: &str) -> Self {
        BlockKey(s.to_string())
    }
}

impl From<String> for BlockKey {
    fn from(s: String) -> Self {
        BlockKey(s)
    }
}

/// The put/get/delete protocol spoken by every storage backend.
pub trait KeyValueStore {
    /// Stores `value` under `key`, replacing any previous value. Returns the
    /// number of bytes written.
    fn put(&mut self, key: BlockKey, value: Vec<u8>) -> Result<usize, crate::StorageError>;

    /// Retrieves the value stored under `key`, if any.
    fn get(&self, key: &BlockKey) -> Option<Vec<u8>>;

    /// Deletes the value stored under `key`; returns `true` if it existed.
    fn delete(&mut self, key: &BlockKey) -> bool;

    /// `true` if a value is stored under `key`.
    fn contains(&self, key: &BlockKey) -> bool {
        self.get(key).is_some()
    }

    /// Number of stored blocks.
    fn len(&self) -> usize;

    /// `true` when the store holds no blocks.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes currently stored.
    fn used_bytes(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_keys_have_stable_format() {
        let k = BlockKey::chunk("input/part-0001", 7);
        assert_eq!(k.as_str(), "input/part-0001:7");
        assert_eq!(BlockKey::from("x"), BlockKey("x".to_string()));
        assert_eq!(BlockKey::from(String::from("y")).as_str(), "y");
    }

    #[test]
    fn keys_are_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let mut s = BTreeSet::new();
        s.insert(BlockKey::chunk("f", 1));
        s.insert(BlockKey::chunk("f", 0));
        s.insert(BlockKey::chunk("f", 1));
        assert_eq!(s.len(), 2);
    }
}
