//! Errors surfaced by the storage abstraction layer.

use std::fmt;

/// Errors returned by backends, the namenode and the storage client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The requested block is not known to the namenode.
    UnknownBlock { key: String },
    /// The block is known but none of its replicas could be read.
    NoReplicaAvailable { key: String },
    /// A backend referenced by a location record does not exist (e.g. the
    /// node left the cluster).
    UnknownBackend { backend: u64 },
    /// A backend rejected a write because it is out of capacity.
    CapacityExceeded { backend: u64, capacity_bytes: u64 },
    /// The file's inode references a chunk that has gone missing.
    MissingChunk { file: String, chunk: usize },
    /// The namenode has no backend that satisfies the requested placement.
    NoEligibleBackend,
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownBlock { key } => write!(f, "unknown block `{key}`"),
            StorageError::NoReplicaAvailable { key } => {
                write!(f, "no replica of block `{key}` is readable")
            }
            StorageError::UnknownBackend { backend } => {
                write!(f, "location record references unknown backend {backend}")
            }
            StorageError::CapacityExceeded {
                backend,
                capacity_bytes,
            } => {
                write!(
                    f,
                    "backend {backend} is full (capacity {capacity_bytes} bytes)"
                )
            }
            StorageError::MissingChunk { file, chunk } => {
                write!(f, "file `{file}` is missing chunk {chunk}")
            }
            StorageError::NoEligibleBackend => {
                write!(f, "no backend satisfies the requested placement")
            }
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_identify_the_failing_object() {
        assert!(StorageError::UnknownBlock { key: "b7".into() }
            .to_string()
            .contains("b7"));
        assert!(StorageError::UnknownBackend { backend: 12 }
            .to_string()
            .contains("12"));
        assert!(StorageError::MissingChunk {
            file: "f".into(),
            chunk: 3
        }
        .to_string()
        .contains("chunk 3"));
    }
}
