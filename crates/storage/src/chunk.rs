//! File chunking and the Hadoop file-system driver shim (§5.3).
//!
//! "In our implementation, we split files into smaller chunks that are stored
//! as key-value pairs in Conductor's storage system. Additionally, for each
//! file we store inodes that list the chunks that constitute the file
//! content." [`FileSystemShim`] is that driver: it translates file-level
//! open/read/write calls into the key-value operations of
//! [`crate::StorageClient`], and exposes the location information the
//! location-aware scheduler needs.

use crate::backend::BackendId;
use crate::client::StorageClient;
use crate::error::StorageError;
use crate::kv::BlockKey;
use serde::{Deserialize, Serialize};

/// The inode of a chunked file: its name, total size and chunk count.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Inode {
    /// File path/name.
    pub name: String,
    /// Total file size in bytes.
    pub size_bytes: u64,
    /// Number of chunks the file was split into.
    pub chunks: usize,
    /// Chunk size used when writing (bytes).
    pub chunk_size: usize,
}

impl Inode {
    /// The key under which this inode itself is stored.
    pub fn key(name: &str) -> BlockKey {
        BlockKey(format!("inode:{name}"))
    }

    /// The key of chunk `i` of this file.
    pub fn chunk_key(&self, i: usize) -> BlockKey {
        BlockKey::chunk(&self.name, i)
    }
}

/// A fully materialized chunked file (inode + chunk keys), handy for tests
/// and for the scheduler's location queries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkedFile {
    /// The file's inode.
    pub inode: Inode,
}

impl ChunkedFile {
    /// Keys of all chunks in order.
    pub fn chunk_keys(&self) -> Vec<BlockKey> {
        (0..self.inode.chunks)
            .map(|i| self.inode.chunk_key(i))
            .collect()
    }
}

/// The file-system driver: file-level operations over the key-value store.
#[derive(Debug, Clone, Default)]
pub struct FileSystemShim {
    client: StorageClient,
    /// Chunk size in bytes (Hadoop-style 64 MB by default; tests use smaller).
    chunk_size: usize,
}

impl FileSystemShim {
    /// Creates a shim over a storage client with the default 64 MB chunk size.
    pub fn new(client: StorageClient) -> Self {
        Self {
            client,
            chunk_size: 64 * 1024 * 1024,
        }
    }

    /// Creates a shim with an explicit chunk size (bytes).
    pub fn with_chunk_size(client: StorageClient, chunk_size: usize) -> Self {
        Self {
            client,
            chunk_size: chunk_size.max(1),
        }
    }

    /// The underlying storage client.
    pub fn client(&self) -> &StorageClient {
        &self.client
    }

    /// Mutable access to the underlying storage client.
    pub fn client_mut(&mut self) -> &mut StorageClient {
        &mut self.client
    }

    /// Writes a whole file, splitting it into chunks and recording the inode.
    pub fn write_file(&mut self, name: &str, data: &[u8]) -> Result<Inode, StorageError> {
        let chunks = if data.is_empty() {
            0
        } else {
            data.len().div_ceil(self.chunk_size)
        };
        let inode = Inode {
            name: name.to_string(),
            size_bytes: data.len() as u64,
            chunks,
            chunk_size: self.chunk_size,
        };
        for (i, chunk) in data.chunks(self.chunk_size).enumerate() {
            self.client.write(inode.chunk_key(i), chunk.to_vec())?;
        }
        let encoded = serde_json::to_vec(&inode).expect("inode serialization cannot fail");
        self.client.write(Inode::key(name), encoded)?;
        Ok(inode)
    }

    /// Reads a whole file back by walking its inode.
    pub fn read_file(&mut self, name: &str) -> Result<Vec<u8>, StorageError> {
        let inode = self.stat(name)?;
        let mut data = Vec::with_capacity(inode.size_bytes as usize);
        for i in 0..inode.chunks {
            let chunk =
                self.client
                    .read(&inode.chunk_key(i))
                    .map_err(|_| StorageError::MissingChunk {
                        file: name.to_string(),
                        chunk: i,
                    })?;
            data.extend_from_slice(&chunk);
        }
        Ok(data)
    }

    /// Reads a file's inode.
    pub fn stat(&mut self, name: &str) -> Result<Inode, StorageError> {
        let raw = self.client.read(&Inode::key(name))?;
        serde_json::from_slice(&raw).map_err(|_| StorageError::UnknownBlock {
            key: format!("inode:{name}"),
        })
    }

    /// Deletes a file (inode and all chunks). Returns the number of chunk
    /// replicas removed.
    pub fn delete_file(&mut self, name: &str) -> Result<usize, StorageError> {
        let inode = self.stat(name)?;
        let mut removed = 0;
        for i in 0..inode.chunks {
            removed += self.client.delete(&inode.chunk_key(i));
        }
        self.client.delete(&Inode::key(name));
        Ok(removed)
    }

    /// Lists the backends holding each chunk of a file — the per-block
    /// location information Conductor's location-aware scheduler queries
    /// before marking a task runnable (§5.3).
    pub fn chunk_locations(&mut self, name: &str) -> Result<Vec<Vec<BackendId>>, StorageError> {
        let inode = self.stat(name)?;
        let mut out = Vec::with_capacity(inode.chunks);
        for i in 0..inode.chunks {
            let locs = self
                .client
                .namenode()
                .locations(&inode.chunk_key(i))
                .map(|ls| ls.iter().map(|l| l.backend).collect())
                .unwrap_or_default();
            out.push(locs);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::InMemoryBackend;

    fn shim(chunk_size: usize) -> FileSystemShim {
        let mut c = StorageClient::new();
        c.add_backend(InMemoryBackend::local_disk(1), true);
        c.add_backend(InMemoryBackend::local_disk(2), false);
        c.add_backend(InMemoryBackend::object_store(10), false);
        FileSystemShim::with_chunk_size(c, chunk_size)
    }

    #[test]
    fn write_then_read_roundtrips() {
        let mut fs = shim(16);
        let data: Vec<u8> = (0..100u8).collect();
        let inode = fs.write_file("input/part-0", &data).unwrap();
        assert_eq!(inode.chunks, 7); // ceil(100/16)
        assert_eq!(inode.size_bytes, 100);
        let back = fs.read_file("input/part-0").unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn empty_files_are_valid() {
        let mut fs = shim(16);
        let inode = fs.write_file("empty", &[]).unwrap();
        assert_eq!(inode.chunks, 0);
        assert_eq!(fs.read_file("empty").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn stat_reports_the_inode() {
        let mut fs = shim(8);
        fs.write_file("f", &[0u8; 20]).unwrap();
        let inode = fs.stat("f").unwrap();
        assert_eq!(inode.chunks, 3);
        assert_eq!(inode.chunk_size, 8);
        assert!(fs.stat("missing").is_err());
    }

    #[test]
    fn delete_removes_chunks_and_inode() {
        let mut fs = shim(8);
        fs.write_file("f", &[1u8; 24]).unwrap();
        let removed = fs.delete_file("f").unwrap();
        assert!(removed >= 3);
        assert!(fs.stat("f").is_err());
        assert!(fs.read_file("f").is_err());
    }

    #[test]
    fn chunk_locations_expose_placement_for_the_scheduler() {
        let mut fs = shim(8);
        fs.write_file("f", &[2u8; 16]).unwrap();
        let locs = fs.chunk_locations("f").unwrap();
        assert_eq!(locs.len(), 2);
        for chunk_locs in locs {
            // Default replication is 3 and we registered 3 backends.
            assert_eq!(chunk_locs.len(), 3);
            assert!(chunk_locs.contains(&BackendId(1)));
        }
    }

    #[test]
    fn missing_chunk_is_reported_precisely() {
        let mut fs = shim(8);
        let inode = fs.write_file("f", &[3u8; 32]).unwrap();
        // Remove every replica of chunk 2 behind the shim's back.
        fs.client_mut().delete(&inode.chunk_key(2));
        let err = fs.read_file("f").unwrap_err();
        assert_eq!(
            err,
            StorageError::MissingChunk {
                file: "f".into(),
                chunk: 2
            }
        );
    }

    #[test]
    fn chunked_file_lists_keys_in_order() {
        let inode = Inode {
            name: "x".into(),
            size_bytes: 30,
            chunks: 3,
            chunk_size: 10,
        };
        let f = ChunkedFile { inode };
        let keys = f.chunk_keys();
        assert_eq!(keys[0].as_str(), "x:0");
        assert_eq!(keys[2].as_str(), "x:2");
    }
}
