//! # conductor-storage
//!
//! Conductor's storage abstraction layer (§5.1 of the paper): a distributed
//! key-value storage service that lets the same application transparently use
//! several storage backends (node-local disks, an S3-style object store, the
//! customer's own machines) while a central **namenode** tracks where every
//! block lives and drives replication and migration according to the
//! execution plan.
//!
//! The pieces map one-to-one onto the paper's design:
//!
//! * [`KeyValueStore`] — the uniform put/get/delete interface every backend
//!   implements (the paper's storage daemons speak exactly this protocol);
//! * [`backend`] — the backend implementations (local-disk daemon, S3-style
//!   object store) with throughput parameters used by the Figure 15
//!   comparison;
//! * [`Namenode`] — the directory service mapping block ids to location
//!   records, managing replication and plan-driven migration;
//! * [`StorageClient`] — the client that resolves block locations, reads from
//!   the closest replica, and implements the co-located read/write fast path;
//! * [`chunk`] — the file-chunking layer (files become chunk key-value pairs
//!   plus an inode), which is what the Hadoop file-system driver shim uses;
//! * [`throughput`] — the analytical throughput model of the abstraction
//!   layer used to regenerate Figure 15.

pub mod backend;
pub mod chunk;
pub mod client;
pub mod error;
pub mod kv;
pub mod namenode;
pub mod throughput;

pub use backend::{BackendId, InMemoryBackend, StorageBackend};
pub use chunk::{ChunkedFile, FileSystemShim, Inode};
pub use client::StorageClient;
pub use error::StorageError;
pub use kv::{BlockKey, KeyValueStore};
pub use namenode::{BlockLocation, Namenode, ReplicationPolicy};
pub use throughput::ConductorStorageModel;
