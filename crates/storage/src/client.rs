//! The storage client: the uniform interface applications (and the Hadoop
//! file-system driver) use to read and write data regardless of where it is
//! stored (§5.1).
//!
//! Reads first try the co-located backend directly (the fast path: "directing
//! requests to the local storage daemon directly, which can either succeed
//! and proceed in a very fast manner, or fail and fall back to the normal
//! read operation, in which case we additionally install a cached copy of the
//! data on the local node"). Writes go to the local backend first and the
//! namenode then replicates to the planned locations.

use crate::backend::{BackendId, InMemoryBackend, StorageBackend};
use crate::error::StorageError;
use crate::kv::{BlockKey, KeyValueStore};
use crate::namenode::{Namenode, ReplicationPolicy};
use std::collections::BTreeMap;

/// A client session bound to a set of backends and a namenode.
///
/// In the real system backends are remote daemons; in this reproduction they
/// are owned in-process, which keeps the control flow identical (placement
/// via the namenode, per-backend puts/gets, fallback on miss) without a
/// network layer.
#[derive(Debug, Clone, Default)]
pub struct StorageClient {
    namenode: Namenode,
    backends: BTreeMap<BackendId, InMemoryBackend>,
    /// The backend co-located with this client (its node's local disk).
    local: Option<BackendId>,
    /// Statistics: reads served by the local fast path.
    pub local_hits: u64,
    /// Statistics: reads that had to consult the namenode.
    pub namenode_reads: u64,
}

impl StorageClient {
    /// Creates a client with an empty backend set and default replication.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a client with an explicit replication policy.
    pub fn with_policy(policy: ReplicationPolicy) -> Self {
        Self {
            namenode: Namenode::with_policy(policy),
            ..Self::default()
        }
    }

    /// Adds a backend; the first backend added with `local = true` becomes
    /// the co-located fast-path target.
    pub fn add_backend(&mut self, backend: InMemoryBackend, local: bool) -> BackendId {
        let id = backend.id();
        self.namenode.register_backend(id, backend.profile());
        self.backends.insert(id, backend);
        if local && self.local.is_none() {
            self.local = Some(id);
        }
        id
    }

    /// Removes a backend (node departure). Replicas stored there are lost.
    pub fn remove_backend(&mut self, id: BackendId) {
        self.backends.remove(&id);
        self.namenode.unregister_backend(id);
        if self.local == Some(id) {
            self.local = None;
        }
    }

    /// Read access to the namenode (for inspection and plan-driven hints).
    pub fn namenode(&self) -> &Namenode {
        &self.namenode
    }

    /// Mutable access to the namenode (to set priority hints).
    pub fn namenode_mut(&mut self) -> &mut Namenode {
        &mut self.namenode
    }

    /// Writes a block: placement is chosen by the namenode (local backend
    /// first), every chosen backend receives a replica, and the namenode's
    /// location records are updated.
    pub fn write(&mut self, key: BlockKey, value: Vec<u8>) -> Result<Vec<BackendId>, StorageError> {
        let placement = self
            .namenode
            .choose_placement(value.len() as u64, self.local)?;
        let mut written = Vec::with_capacity(placement.len());
        let mut last_err = None;
        for backend_id in placement {
            let Some(backend) = self.backends.get_mut(&backend_id) else {
                last_err = Some(StorageError::UnknownBackend {
                    backend: backend_id.0,
                });
                continue;
            };
            match backend.put(key.clone(), value.clone()) {
                Ok(_) => {
                    self.namenode.add_replica(key.clone(), backend_id);
                    written.push(backend_id);
                }
                Err(e) => last_err = Some(e),
            }
        }
        if written.is_empty() {
            Err(last_err.unwrap_or(StorageError::NoEligibleBackend))
        } else {
            Ok(written)
        }
    }

    /// Reads a block through the fast path (local backend), falling back to
    /// the namenode's location records ordered by ping time. On a fallback
    /// read the block is cached on the local backend, as the paper describes.
    pub fn read(&mut self, key: &BlockKey) -> Result<Vec<u8>, StorageError> {
        // Fast path: co-located daemon.
        if let Some(local_id) = self.local {
            if let Some(local) = self.backends.get(&local_id) {
                if let Some(v) = local.get(key) {
                    self.local_hits += 1;
                    return Ok(v);
                }
            }
        }
        // Normal path: ask the namenode, try replicas closest first.
        self.namenode_reads += 1;
        let mut locations: Vec<BackendId> = self
            .namenode
            .locations(key)?
            .iter()
            .map(|l| l.backend)
            .collect();
        locations.sort_by(|a, b| {
            let pa = self
                .backends
                .get(a)
                .map(|x| x.profile().ping_ms)
                .unwrap_or(f64::MAX);
            let pb = self
                .backends
                .get(b)
                .map(|x| x.profile().ping_ms)
                .unwrap_or(f64::MAX);
            pa.partial_cmp(&pb).unwrap_or(std::cmp::Ordering::Equal)
        });
        for backend_id in locations {
            if let Some(backend) = self.backends.get(&backend_id) {
                if let Some(v) = backend.get(key) {
                    // Install a cached copy locally for future reads.
                    if let Some(local_id) = self.local {
                        if local_id != backend_id {
                            if let Some(local) = self.backends.get_mut(&local_id) {
                                if local.put(key.clone(), v.clone()).is_ok() {
                                    self.namenode.add_replica(key.clone(), local_id);
                                }
                            }
                        }
                    }
                    return Ok(v);
                }
            }
        }
        Err(StorageError::NoReplicaAvailable {
            key: key.as_str().to_string(),
        })
    }

    /// Deletes all replicas of a block. Returns the number of replicas removed.
    pub fn delete(&mut self, key: &BlockKey) -> usize {
        let locations: Vec<BackendId> = match self.namenode.locations(key) {
            Ok(locs) => locs.iter().map(|l| l.backend).collect(),
            Err(_) => return 0,
        };
        let mut removed = 0;
        for backend_id in locations {
            if let Some(backend) = self.backends.get_mut(&backend_id) {
                if backend.delete(key) {
                    removed += 1;
                }
            }
            self.namenode.remove_replica(key, backend_id);
        }
        removed
    }

    /// Migrates a block so that a replica exists on `to` (plan-driven data
    /// migration, §4.5/§5.2). The source replicas are kept unless `evict_src`
    /// is set, in which case only the new location retains the data.
    pub fn migrate(
        &mut self,
        key: &BlockKey,
        to: BackendId,
        evict_src: bool,
    ) -> Result<(), StorageError> {
        let data = self.read_raw(key)?;
        let sources: Vec<BackendId> = self
            .namenode
            .locations(key)?
            .iter()
            .map(|l| l.backend)
            .collect();
        let dest = self
            .backends
            .get_mut(&to)
            .ok_or(StorageError::UnknownBackend { backend: to.0 })?;
        dest.put(key.clone(), data)?;
        self.namenode.add_replica(key.clone(), to);
        if evict_src {
            for src in sources {
                if src == to {
                    continue;
                }
                if let Some(backend) = self.backends.get_mut(&src) {
                    backend.delete(key);
                }
                self.namenode.remove_replica(key, src);
            }
        }
        Ok(())
    }

    /// Reads without the caching side effect (used internally by migration).
    fn read_raw(&self, key: &BlockKey) -> Result<Vec<u8>, StorageError> {
        for loc in self.namenode.locations(key)? {
            if let Some(backend) = self.backends.get(&loc.backend) {
                if let Some(v) = backend.get(key) {
                    return Ok(v);
                }
            }
        }
        Err(StorageError::NoReplicaAvailable {
            key: key.as_str().to_string(),
        })
    }

    /// Total bytes stored across all backends (counting replicas).
    pub fn total_stored_bytes(&self) -> u64 {
        self.backends.values().map(|b| b.used_bytes()).sum()
    }

    /// Number of replicas of `key` currently readable.
    pub fn replica_count(&self, key: &BlockKey) -> usize {
        match self.namenode.locations(key) {
            Ok(locs) => locs
                .iter()
                .filter(|l| {
                    self.backends
                        .get(&l.backend)
                        .is_some_and(|b| b.contains(key))
                })
                .count(),
            Err(_) => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4-node setup like the paper's Figure 15 measurement: three local
    /// disks plus S3, replication factor 3.
    fn client() -> (StorageClient, Vec<BackendId>) {
        let mut c = StorageClient::new();
        let ids = vec![
            c.add_backend(InMemoryBackend::local_disk(1), true),
            c.add_backend(InMemoryBackend::local_disk(2), false),
            c.add_backend(InMemoryBackend::local_disk(3), false),
            c.add_backend(InMemoryBackend::object_store(10), false),
        ];
        (c, ids)
    }

    #[test]
    fn write_replicates_to_policy_count() {
        let (mut c, _) = client();
        let key = BlockKey::chunk("input", 0);
        let written = c.write(key.clone(), vec![7; 1024]).unwrap();
        assert_eq!(written.len(), 3);
        assert_eq!(c.replica_count(&key), 3);
        // The local backend holds the first replica (write fast path).
        assert_eq!(written[0], BackendId(1));
    }

    #[test]
    fn read_prefers_local_fast_path() {
        let (mut c, _) = client();
        let key = BlockKey::chunk("input", 1);
        c.write(key.clone(), vec![1, 2, 3]).unwrap();
        let v = c.read(&key).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(c.local_hits, 1);
        assert_eq!(c.namenode_reads, 0);
    }

    #[test]
    fn fallback_read_caches_locally() {
        let (mut c, ids) = client();
        let key = BlockKey::chunk("input", 2);
        c.write(key.clone(), vec![9; 64]).unwrap();
        // Drop the local replica to force the fallback path.
        let local = ids[0];
        c.backends.get_mut(&local).unwrap().delete(&key);
        c.namenode.remove_replica(&key, local);
        let v = c.read(&key).unwrap();
        assert_eq!(v.len(), 64);
        assert_eq!(c.namenode_reads, 1);
        // The fallback installed a cached copy locally, so the next read hits
        // the fast path again.
        c.read(&key).unwrap();
        assert_eq!(c.local_hits, 1);
    }

    #[test]
    fn missing_blocks_error_cleanly() {
        let (mut c, _) = client();
        let err = c.read(&BlockKey::from("nope")).unwrap_err();
        assert!(matches!(err, StorageError::UnknownBlock { .. }));
        assert_eq!(c.delete(&BlockKey::from("nope")), 0);
    }

    #[test]
    fn delete_removes_all_replicas() {
        let (mut c, _) = client();
        let key = BlockKey::chunk("input", 3);
        c.write(key.clone(), vec![5; 128]).unwrap();
        assert_eq!(c.delete(&key), 3);
        assert_eq!(c.replica_count(&key), 0);
        assert!(c.read(&key).is_err());
    }

    #[test]
    fn migration_moves_data_between_backends() {
        let (mut c, ids) = client();
        let key = BlockKey::chunk("input", 4);
        c.write(key.clone(), vec![4; 256]).unwrap();
        let s3 = ids[3];
        // Move the block to S3 exclusively (the plan decided S3 is where it
        // should live from now on).
        c.migrate(&key, s3, true).unwrap();
        assert_eq!(c.replica_count(&key), 1);
        let locs = c.namenode().locations(&key).unwrap();
        assert_eq!(locs.len(), 1);
        assert_eq!(locs[0].backend, s3);
        // Data is still readable (through the namenode path).
        assert_eq!(c.read(&key).unwrap(), vec![4; 256]);
    }

    #[test]
    fn migration_without_eviction_adds_a_replica() {
        let (mut c, ids) = client();
        let key = BlockKey::chunk("input", 5);
        c.write(key.clone(), vec![1; 32]).unwrap();
        // Local + 2 others = 3; migrating to S3 without eviction gives 4.
        c.migrate(&key, ids[3], false).unwrap();
        assert_eq!(c.replica_count(&key), 4);
    }

    #[test]
    fn node_departure_loses_replicas_but_not_data() {
        let (mut c, ids) = client();
        let key = BlockKey::chunk("input", 6);
        c.write(key.clone(), vec![8; 512]).unwrap();
        c.remove_backend(ids[0]);
        c.remove_backend(ids[1]);
        // One replica remains somewhere; reads still succeed.
        assert!(c.replica_count(&key) >= 1);
        assert_eq!(c.read(&key).unwrap(), vec![8; 512]);
    }

    #[test]
    fn stored_bytes_count_replicas() {
        let (mut c, _) = client();
        c.write(BlockKey::chunk("f", 0), vec![0; 100]).unwrap();
        assert_eq!(c.total_stored_bytes(), 300);
    }

    #[test]
    fn custom_replication_policy_is_respected() {
        let mut c = StorageClient::with_policy(ReplicationPolicy { replicas: 1 });
        c.add_backend(InMemoryBackend::local_disk(1), true);
        c.add_backend(InMemoryBackend::local_disk(2), false);
        let key = BlockKey::from("solo");
        let written = c.write(key.clone(), vec![0; 8]).unwrap();
        assert_eq!(written.len(), 1);
        assert_eq!(c.replica_count(&key), 1);
    }
}
