//! Storage backend implementations.
//!
//! Each backend is specific to the storage service it wraps and "maps the
//! semantics of each service to the target key-value store semantics" (§5.1).
//! The paper's prototype has a Berkeley-DB-backed local-disk daemon and an S3
//! backend; here both are modelled by [`InMemoryBackend`] instances that
//! differ in their declared capacity, throughput and network distance
//! (ping time), which is what the client uses to pick the closest replica.

use crate::error::StorageError;
use crate::kv::{BlockKey, KeyValueStore};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of a backend registered with the namenode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BackendId(pub u64);

/// The class of service a backend wraps, mirroring
/// [`conductor_cloud::StorageKind`] but kept separate so this crate stays
/// usable without a catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackendKind {
    /// A storage daemon on a node's local disk (Berkeley DB in the paper).
    LocalDisk,
    /// An S3-style object store accessed through its client API.
    ObjectStore,
    /// A disk in the customer's own cluster.
    CustomerDisk,
}

/// Static properties of a backend, used by the client for replica selection
/// and by the Figure 15 throughput model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackendProfile {
    /// What kind of service this backend wraps.
    pub kind: BackendKind,
    /// Capacity in bytes (`u64::MAX` for effectively unlimited services).
    pub capacity_bytes: u64,
    /// Sustained throughput in MB/s for bulk transfers.
    pub throughput_mbps: f64,
    /// Round-trip time from the computation nodes in milliseconds — the
    /// "ping time" the client uses to pick the closest location.
    pub ping_ms: f64,
}

impl BackendProfile {
    /// Profile of a node-local disk daemon.
    pub fn local_disk() -> Self {
        Self {
            kind: BackendKind::LocalDisk,
            capacity_bytes: 850 * GB,
            throughput_mbps: 20.0,
            ping_ms: 0.2,
        }
    }

    /// Profile of an S3-style object store.
    pub fn object_store() -> Self {
        Self {
            kind: BackendKind::ObjectStore,
            capacity_bytes: u64::MAX,
            throughput_mbps: 14.0,
            ping_ms: 8.0,
        }
    }

    /// Profile of a disk in the customer's own cluster, reached over the WAN
    /// from cloud nodes.
    pub fn customer_disk() -> Self {
        Self {
            kind: BackendKind::CustomerDisk,
            capacity_bytes: 250 * GB,
            throughput_mbps: 2.0,
            ping_ms: 60.0,
        }
    }
}

const GB: u64 = 1024 * 1024 * 1024;

/// The interface the namenode and client need beyond raw key-value access.
pub trait StorageBackend: KeyValueStore {
    /// Static properties of this backend.
    fn profile(&self) -> BackendProfile;

    /// Identifier assigned at registration time.
    fn id(&self) -> BackendId;
}

/// An in-memory backend implementation used for every service in the
/// simulation. Capacity limits are enforced so placement and failure paths
/// behave like the real daemons.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InMemoryBackend {
    id: BackendId,
    profile: BackendProfile,
    blocks: BTreeMap<BlockKey, Vec<u8>>,
    used: u64,
}

impl InMemoryBackend {
    /// Creates a backend with the given id and profile.
    pub fn new(id: BackendId, profile: BackendProfile) -> Self {
        Self {
            id,
            profile,
            blocks: BTreeMap::new(),
            used: 0,
        }
    }

    /// Convenience constructor for a node-local disk daemon.
    pub fn local_disk(id: u64) -> Self {
        Self::new(BackendId(id), BackendProfile::local_disk())
    }

    /// Convenience constructor for an S3-style object store.
    pub fn object_store(id: u64) -> Self {
        Self::new(BackendId(id), BackendProfile::object_store())
    }

    /// Convenience constructor for a customer-site disk.
    pub fn customer_disk(id: u64) -> Self {
        Self::new(BackendId(id), BackendProfile::customer_disk())
    }

    /// Iterates the keys currently stored (used by migration).
    pub fn keys(&self) -> impl Iterator<Item = &BlockKey> {
        self.blocks.keys()
    }
}

impl KeyValueStore for InMemoryBackend {
    fn put(&mut self, key: BlockKey, value: Vec<u8>) -> Result<usize, StorageError> {
        let new_bytes = value.len() as u64;
        let replaced = self.blocks.get(&key).map(|v| v.len() as u64).unwrap_or(0);
        let projected = self.used - replaced + new_bytes;
        if projected > self.profile.capacity_bytes {
            return Err(StorageError::CapacityExceeded {
                backend: self.id.0,
                capacity_bytes: self.profile.capacity_bytes,
            });
        }
        self.used = projected;
        let written = value.len();
        self.blocks.insert(key, value);
        Ok(written)
    }

    fn get(&self, key: &BlockKey) -> Option<Vec<u8>> {
        self.blocks.get(key).cloned()
    }

    fn delete(&mut self, key: &BlockKey) -> bool {
        if let Some(v) = self.blocks.remove(key) {
            self.used -= v.len() as u64;
            true
        } else {
            false
        }
    }

    fn len(&self) -> usize {
        self.blocks.len()
    }

    fn used_bytes(&self) -> u64 {
        self.used
    }
}

impl StorageBackend for InMemoryBackend {
    fn profile(&self) -> BackendProfile {
        self.profile
    }

    fn id(&self) -> BackendId {
        self.id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete_roundtrip() {
        let mut b = InMemoryBackend::local_disk(1);
        let key = BlockKey::chunk("f", 0);
        assert_eq!(b.put(key.clone(), vec![1, 2, 3]).unwrap(), 3);
        assert_eq!(b.get(&key), Some(vec![1, 2, 3]));
        assert!(b.contains(&key));
        assert_eq!(b.len(), 1);
        assert_eq!(b.used_bytes(), 3);
        assert!(b.delete(&key));
        assert!(!b.delete(&key));
        assert!(b.is_empty());
        assert_eq!(b.used_bytes(), 0);
    }

    #[test]
    fn overwrite_replaces_and_adjusts_usage() {
        let mut b = InMemoryBackend::local_disk(1);
        let key = BlockKey::from("k");
        b.put(key.clone(), vec![0; 100]).unwrap();
        b.put(key.clone(), vec![0; 10]).unwrap();
        assert_eq!(b.used_bytes(), 10);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn capacity_is_enforced() {
        let profile = BackendProfile {
            kind: BackendKind::LocalDisk,
            capacity_bytes: 8,
            throughput_mbps: 20.0,
            ping_ms: 0.1,
        };
        let mut b = InMemoryBackend::new(BackendId(7), profile);
        b.put(BlockKey::from("a"), vec![0; 6]).unwrap();
        let err = b.put(BlockKey::from("b"), vec![0; 6]).unwrap_err();
        assert_eq!(
            err,
            StorageError::CapacityExceeded {
                backend: 7,
                capacity_bytes: 8
            }
        );
        // Replacing the existing block within capacity still works.
        b.put(BlockKey::from("a"), vec![0; 8]).unwrap();
        assert_eq!(b.used_bytes(), 8);
    }

    #[test]
    fn profiles_reflect_service_classes() {
        assert!(BackendProfile::local_disk().ping_ms < BackendProfile::object_store().ping_ms);
        assert!(BackendProfile::object_store().ping_ms < BackendProfile::customer_disk().ping_ms);
        assert_eq!(BackendProfile::object_store().capacity_bytes, u64::MAX);
        let b = InMemoryBackend::object_store(3);
        assert_eq!(b.id(), BackendId(3));
        assert_eq!(b.profile().kind, BackendKind::ObjectStore);
    }
}
