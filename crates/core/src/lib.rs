//! # conductor-core
//!
//! The Conductor system itself: automatic selection of cloud services for
//! MapReduce computations, plan deployment, and runtime adaptation — the
//! primary contribution of *"Orchestrating the Deployment of Computations in
//! the Cloud with Conductor"* (NSDI 2012).
//!
//! The flow mirrors Figure 2 of the paper:
//!
//! 1. [`resources`] — the resource abstraction layer turns heterogeneous
//!    service offerings (catalog entries or published service descriptions)
//!    into uniform compute and storage resources (§4.2, §4.6, §5.1).
//! 2. [`model`] — the dynamic-linear-program generator encodes the MapReduce
//!    job, the resources, their prices (including spot-price expectations)
//!    and the user's goal as a [`conductor_lp::Problem`] (§4.3–§4.7).
//! 3. [`planner`] — dispatches the model to the solver and extracts an
//!    [`plan::ExecutionPlan`] (§4.8).
//! 4. [`controller`] — the job controller deploys the plan on the MapReduce
//!    engine through the plan-following scheduler and meters cost (§5.2).
//! 5. [`adapt`] — monitors progress, detects deviations (mispredicted
//!    throughput, §5.4) and re-plans from the current state (Figure 12).
//! 6. [`spot`] — bid predictors and the spot-market deployment simulation of
//!    §6.5 (Figure 14).
//! 7. [`fleet`] — the open-world fleet: [`fleet::Fleet`] is a long-lived
//!    orchestration session — jobs submitted or cancelled at any simulated
//!    time, the clock advanced in steps, live status queries, and a typed
//!    [`fleet::FleetEvent`] stream in deterministic clock order. Many
//!    concurrent jobs share one discrete-event clock, are planned against
//!    the residual capacity and a shared spot market, and are re-planned
//!    by monitor events, with per-tenant billing.
//! 8. [`service`] — [`service::ConductorService`], the closed-world batch
//!    facade over the fleet session (submit everything, drain, report),
//!    pinned bitwise-identical to the incremental path.
//! 9. [`policy`] — the failure-policy layer: seeded fault injection
//!    ([`policy::FaultPlan`]), per-tenant retry with exponential backoff
//!    and a dead-letter queue, an admission gate over a sliding window of
//!    outcomes, and a spot-market circuit breaker with on-demand
//!    fallback. All of it runs on the fleet's deterministic event loop.

pub mod adapt;
pub mod controller;
pub mod error;
pub mod fleet;
pub mod goal;
pub mod model;
pub mod plan;
pub mod planner;
pub mod policy;
pub mod resources;
pub mod service;
pub mod shards;
pub mod spot;
pub mod wal;

pub use adapt::{AdaptationReport, AdaptiveController};
pub use controller::{DeploymentOutcome, JobController};
pub use error::ConductorError;
pub use fleet::{
    Fleet, FleetConfig, FleetEvent, FleetJobRequest, FleetObserver, FleetReport, FleetSnapshot,
    OutcomeClass, PlanCacheKey, TenantId, TenantOutcome, TenantState, TenantStatus,
};
pub use goal::Goal;
pub use model::{InitialState, ModelConfig, ModelInstance};
pub use plan::{ExecutionPlan, IntervalPlan};
pub use planner::{Planner, PlanningReport};
pub use policy::{
    BreakerState, CircuitBreakerConfig, DeadLetter, FailurePolicy, FailureThreshold, FallbackTier,
    FaultKind, FaultPlan, RetryPolicy,
};
pub use resources::{ComputeResource, ResourcePool, StorageResource};
pub use service::ConductorService;
pub use shards::{HashRouter, ShardRouter, ShardedFleet, ShardedFleetConfig, TransferEvent};
pub use spot::{BidPredictor, SpotDeploymentSimulator, SpotScenarioResult};
pub use wal::{WalReader, WalReadout, WalWriter};
