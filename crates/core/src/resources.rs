//! The resource abstraction layer (§4.2, §4.6, §5.1).
//!
//! Cloud services bundle storage and computation (an EC2 instance is both a
//! worker and 850 GB of disk); the abstraction layer breaks every offering
//! into separate **compute resources** and **storage resources** so the
//! planner can reason about them independently, while remembering the overlap
//! (instance-disk storage only exists while instances are rented).

use conductor_cloud::{Catalog, InstanceType, ServiceDescription, StorageKind, StorageService};
use serde::{Deserialize, Serialize};

/// Measured m1.large throughput (GB/h) of the reference workload — the
/// paper's k-means job — that the catalog's per-instance capacities were
/// calibrated against. A job spec's `reference_throughput_gbph` is expressed
/// on the same instance, so the ratio scales every instance's capacity to
/// the workload at hand (§4.2, Figure 1). Shared with the execution
/// simulator, which applies the identical scaling.
pub const REFERENCE_WORKLOAD_GBPH: f64 = conductor_mapreduce::REFERENCE_INSTANCE_GBPH;

/// HDFS-style replication factor assumed for data resident on instance
/// disks: each stored GB pins disk (and therefore a slice of a running
/// instance) on this many nodes (§4.6).
pub const INSTANCE_DISK_REPLICATION: f64 = 3.0;

/// A compute resource: something that can run MapReduce tasks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComputeResource {
    /// Service name (matches the catalog instance type).
    pub name: String,
    /// Price per node-hour in USD (on-demand).
    pub hourly_price: f64,
    /// Processing capacity per node in GB/h.
    pub capacity_gbph: f64,
    /// Maximum simultaneously allocatable nodes (`None` = unlimited).
    pub max_nodes: Option<usize>,
    /// Disk capacity per node in GB that doubles as storage (§4.6).
    pub disk_gb: f64,
    /// `true` for customer-owned machines (no rental cost).
    pub is_local: bool,
}

/// A storage resource: somewhere data can live.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StorageResource {
    /// Service name (matches the catalog storage service).
    pub name: String,
    /// Cost per GB-hour of residency.
    pub cost_per_gb_hour: f64,
    /// Cost per GB written (request costs translated to per-byte costs as in
    /// §4.2, using the storage layer's chunk size).
    pub put_cost_per_gb: f64,
    /// Cost per GB read.
    pub get_cost_per_gb: f64,
    /// Capacity in GB (`None` = unlimited).
    pub capacity_gb: Option<f64>,
    /// `true` when this storage only exists on rented cloud instances (the
    /// resource-overlap coupling of §4.6): its capacity at any time is the
    /// sum of the rented nodes' disks.
    pub instance_disk: bool,
    /// `true` for customer-owned storage.
    pub is_local: bool,
}

/// The uniform view of everything the planner can use.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ResourcePool {
    /// Compute resources.
    pub compute: Vec<ComputeResource>,
    /// Storage resources.
    pub storage: Vec<StorageResource>,
    /// Customer uplink bandwidth in GB/h.
    pub uplink_gbph: f64,
    /// Transfer price per GB into the cloud.
    pub transfer_in_per_gb: f64,
    /// Transfer price per GB out of the cloud.
    pub transfer_out_per_gb: f64,
    /// Chunk size (MB) the storage layer uses, for translating per-request
    /// prices into per-GB prices.
    pub chunk_mb: f64,
}

impl ResourcePool {
    /// Builds the pool from a service catalog.
    ///
    /// `chunk_mb` is the object size Conductor's storage layer uses when
    /// talking to object stores (it determines how per-request prices
    /// translate into per-GB prices).
    pub fn from_catalog(catalog: &Catalog, chunk_mb: f64) -> Self {
        let compute: Vec<ComputeResource> = catalog
            .instances
            .iter()
            .map(ComputeResource::from_instance)
            .collect();
        let storage = catalog
            .storages
            .iter()
            .map(|s| StorageResource::from_storage(s, chunk_mb))
            .collect();
        Self {
            compute,
            storage,
            uplink_gbph: catalog.uplink_gb_per_hour(),
            // Inbound transfer has been free on AWS since mid-2011; outbound
            // is charged (the catalog carries both).
            transfer_in_per_gb: 0.0,
            transfer_out_per_gb: catalog.transfer.out_per_gb,
            chunk_mb,
        }
    }

    /// Builds the pool from published service descriptions plus uplink
    /// parameters (the "provider-published description" workflow of §4.2).
    pub fn from_descriptions(
        descriptions: &[ServiceDescription],
        uplink_gbph: f64,
        transfer_out_per_gb: f64,
        chunk_mb: f64,
    ) -> Self {
        let mut compute = Vec::new();
        let mut storage = Vec::new();
        for d in descriptions {
            if let Some(i) = d.to_instance() {
                compute.push(ComputeResource::from_instance(&i));
            }
            if let Some(s) = d.to_storage() {
                storage.push(StorageResource {
                    instance_disk: d.can_compute,
                    ..StorageResource::from_storage(&s, chunk_mb)
                });
            }
        }
        Self {
            compute,
            storage,
            uplink_gbph,
            transfer_in_per_gb: 0.0,
            transfer_out_per_gb,
            chunk_mb,
        }
    }

    /// Looks up a compute resource by name.
    pub fn compute_resource(&self, name: &str) -> Option<&ComputeResource> {
        self.compute.iter().find(|c| c.name == name)
    }

    /// Looks up a storage resource by name.
    pub fn storage_resource(&self, name: &str) -> Option<&StorageResource> {
        self.storage.iter().find(|s| s.name == name)
    }

    /// Restricts the pool to the named compute resources (keeps all storage).
    /// Unknown names are ignored.
    pub fn with_compute_only(mut self, names: &[&str]) -> Self {
        self.compute.retain(|c| names.contains(&c.name.as_str()));
        self
    }

    /// Restricts the pool to the named storage resources (keeps all compute).
    pub fn with_storage_only(mut self, names: &[&str]) -> Self {
        self.storage.retain(|s| names.contains(&s.name.as_str()));
        self
    }

    /// Caps the simultaneously allocatable nodes of one compute resource
    /// (e.g. a fleet-wide EC2 allocation limit shared by all tenants).
    /// Unknown names are ignored.
    pub fn with_compute_cap(mut self, name: &str, cap: usize) -> Self {
        if let Some(c) = self.compute.iter_mut().find(|c| c.name == name) {
            c.max_nodes = Some(match c.max_nodes {
                Some(existing) => existing.min(cap),
                None => cap,
            });
        }
        self
    }

    /// Splits the pool into `n` shard slices for a sharded fleet: capped
    /// compute node budgets are divided evenly (the first `cap % n`
    /// shards take one extra node), capped storage capacities are divided
    /// exactly by `n`, and uncapped resources stay uncapped — splitting
    /// infinity is still infinity. Prices, the chunk size and the uplink
    /// are carried whole per slice: in the single-fleet model every
    /// concurrent tenant already plans against the full uplink timetable,
    /// so a shard keeps that same view. Returns an empty vector for
    /// `n == 0`; every returned slice validates whenever `self` does.
    pub fn split(&self, n: usize) -> Vec<ResourcePool> {
        (0..n)
            .map(|shard| {
                let mut slice = self.clone();
                for c in &mut slice.compute {
                    if let Some(cap) = c.max_nodes {
                        c.max_nodes = Some(cap / n + usize::from(shard < cap % n));
                    }
                }
                for s in &mut slice.storage {
                    if let Some(cap) = s.capacity_gb {
                        s.capacity_gb = Some(cap / n as f64);
                    }
                }
                slice
            })
            .collect()
    }

    /// Basic consistency checks: non-empty, positive uplink, storage ties
    /// resolve.
    pub fn validate(&self) -> Result<(), String> {
        if self.compute.is_empty() {
            return Err("no compute resources available".into());
        }
        if self.storage.is_empty() {
            return Err("no storage resources available".into());
        }
        if self.uplink_gbph <= 0.0 {
            return Err("uplink bandwidth must be positive".into());
        }
        for s in &self.storage {
            if s.instance_disk && !self.compute.iter().any(|c| !c.is_local) {
                return Err(format!(
                    "storage `{}` lives on instance disks but no cloud compute resource is available",
                    s.name
                ));
            }
        }
        Ok(())
    }
}

impl ComputeResource {
    /// Effective per-node throughput (GB/h) for a workload whose measured
    /// m1.large throughput is `spec_reference_gbph`. Instances scale by
    /// their measured ratio to the reference workload; a non-positive spec
    /// throughput falls back to the calibration capacity.
    pub fn capacity_for_spec(&self, spec_reference_gbph: f64) -> f64 {
        if spec_reference_gbph > 0.0 {
            self.capacity_gbph * (spec_reference_gbph / REFERENCE_WORKLOAD_GBPH)
        } else {
            self.capacity_gbph
        }
    }

    /// Converts a catalog instance type.
    pub fn from_instance(i: &InstanceType) -> Self {
        Self {
            name: i.name.clone(),
            hourly_price: i.hourly_price,
            capacity_gbph: i.measured_throughput_gbph,
            max_nodes: i.max_instances,
            disk_gb: i.disk_gb,
            is_local: i.is_local(),
        }
    }
}

impl StorageResource {
    /// Converts a catalog storage service. Per-request prices are translated
    /// into per-GB prices assuming `chunk_mb` objects, the translation §4.2
    /// describes.
    pub fn from_storage(s: &StorageService, chunk_mb: f64) -> Self {
        let chunks_per_gb = if chunk_mb > 0.0 {
            1024.0 / chunk_mb
        } else {
            0.0
        };
        Self {
            name: s.name.clone(),
            cost_per_gb_hour: s.cost_per_gb_hour,
            put_cost_per_gb: s.cost_put * chunks_per_gb,
            get_cost_per_gb: s.cost_get * chunks_per_gb,
            capacity_gb: s.capacity_gb,
            instance_disk: s.kind == StorageKind::InstanceDisk,
            is_local: s.kind == StorageKind::Local,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_from_aws_catalog_separates_compute_and_storage() {
        let pool = ResourcePool::from_catalog(&Catalog::aws_july_2011(), 1.0);
        assert_eq!(pool.compute.len(), 3);
        assert_eq!(pool.storage.len(), 2);
        assert!(pool.validate().is_ok());
        let s3 = pool.storage_resource("S3").unwrap();
        // 1 MB chunks -> 1024 PUTs per GB at 1e-5 each.
        assert!((s3.put_cost_per_gb - 1024.0 * 1.0e-5).abs() < 1e-9);
        assert!(!s3.instance_disk);
        let disk = pool.storage_resource("EC2-disk").unwrap();
        assert_eq!(disk.cost_per_gb_hour, 0.0);
        assert!(disk.instance_disk);
    }

    #[test]
    fn hybrid_pool_includes_free_local_resources() {
        let pool = ResourcePool::from_catalog(&Catalog::aws_with_local_cluster(5), 1.0);
        let local = pool.compute_resource("local").unwrap();
        assert!(local.is_local);
        assert_eq!(local.hourly_price, 0.0);
        assert_eq!(local.max_nodes, Some(5));
        let local_disk = pool.storage_resource("local-disk").unwrap();
        assert!(local_disk.is_local);
        // Local disks are not coupled to rented cloud instances.
        assert!(!local_disk.instance_disk);
    }

    #[test]
    fn restriction_helpers_filter_resources() {
        let pool = ResourcePool::from_catalog(&Catalog::aws_july_2011(), 1.0)
            .with_compute_only(&["m1.large"])
            .with_storage_only(&["EC2-disk"]);
        assert_eq!(pool.compute.len(), 1);
        assert_eq!(pool.storage.len(), 1);
        assert!(pool.validate().is_ok());
    }

    #[test]
    fn validation_catches_empty_and_dangling() {
        let empty = ResourcePool::default();
        assert!(empty.validate().is_err());
        let mut pool = ResourcePool::from_catalog(&Catalog::aws_july_2011(), 1.0);
        // Instance-disk storage without any cloud compute resource is invalid.
        pool.compute.clear();
        pool.compute.push(ComputeResource {
            name: "local".into(),
            hourly_price: 0.0,
            capacity_gbph: 0.44,
            max_nodes: Some(5),
            disk_gb: 250.0,
            is_local: true,
        });
        assert!(pool.validate().unwrap_err().contains("instance disks"));
    }

    #[test]
    fn pool_from_descriptions_matches_catalog_route() {
        let cat = Catalog::aws_july_2011();
        let descriptions: Vec<ServiceDescription> = cat
            .instances
            .iter()
            .map(ServiceDescription::from_instance)
            .chain(cat.storages.iter().map(ServiceDescription::from_storage))
            .collect();
        let pool =
            ResourcePool::from_descriptions(&descriptions, cat.uplink_gb_per_hour(), 0.12, 1.0);
        assert_eq!(pool.compute.len(), 3);
        // Instances contribute their disks as storage too, plus S3 and EC2-disk.
        assert!(pool.storage.len() >= 2);
        assert!(pool.validate().is_ok());
        let large_disk = pool.storage_resource("m1.large").unwrap();
        assert!(large_disk.instance_disk);
    }

    #[test]
    fn split_divides_caps_and_keeps_uncapped_unbounded() {
        let pool = ResourcePool::from_catalog(&Catalog::aws_july_2011(), 1.0)
            .with_compute_only(&["m1.large"])
            .with_compute_cap("m1.large", 10);
        let slices = pool.split(4);
        assert_eq!(slices.len(), 4);
        let caps: Vec<usize> = slices
            .iter()
            .map(|s| s.compute_resource("m1.large").unwrap().max_nodes.unwrap())
            .collect();
        // 10 = 3 + 3 + 2 + 2: even split, remainder to the first shards.
        assert_eq!(caps, vec![3, 3, 2, 2]);
        assert_eq!(caps.iter().sum::<usize>(), 10);
        for s in &slices {
            assert!(s.validate().is_ok());
            // Uncapped storage stays uncapped; uplink is carried whole.
            assert_eq!(
                s.storage_resource("S3").unwrap().capacity_gb,
                pool.storage_resource("S3").unwrap().capacity_gb
            );
            assert_eq!(s.uplink_gbph, pool.uplink_gbph);
        }
        // Degenerate counts.
        assert!(pool.split(0).is_empty());
        assert_eq!(pool.split(1), vec![pool.clone()]);
    }

    #[test]
    fn uplink_uses_catalog_bandwidth() {
        let pool = ResourcePool::from_catalog(&Catalog::aws_july_2011(), 1.0);
        assert!(pool.uplink_gbph > 6.0 && pool.uplink_gbph < 7.5);
        assert_eq!(pool.transfer_in_per_gb, 0.0);
        assert!((pool.transfer_out_per_gb - 0.12).abs() < 1e-12);
    }
}
