//! The error type of the Conductor core.

use conductor_lp::LpError;
use conductor_mapreduce::engine::EngineError;
use std::fmt;

/// Errors produced while planning, deploying or adapting a job.
#[derive(Debug, Clone, PartialEq)]
pub enum ConductorError {
    /// The optimization model could not be solved (infeasible goal, unbounded
    /// model, or solver limits without any feasible plan).
    Planning(LpError),
    /// The deployment simulation failed.
    Deployment(EngineError),
    /// The requested goal cannot be met with the available resources (e.g.
    /// the deadline is shorter than the unavoidable upload time).
    GoalUnattainable {
        /// Human-readable explanation.
        reason: String,
    },
    /// The inputs were inconsistent (unknown service names, empty catalogs…).
    InvalidInput(String),
    /// A durability operation (write-ahead log, checkpoint file) failed at
    /// the filesystem. Carries the rendered `std::io::Error` (io errors are
    /// not `Clone`, this enum is).
    Io(String),
}

impl fmt::Display for ConductorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConductorError::Planning(e) => write!(f, "planning failed: {e}"),
            ConductorError::Deployment(e) => write!(f, "deployment failed: {e}"),
            ConductorError::GoalUnattainable { reason } => {
                write!(f, "goal cannot be attained: {reason}")
            }
            ConductorError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            ConductorError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for ConductorError {}

impl From<LpError> for ConductorError {
    fn from(e: LpError) -> Self {
        ConductorError::Planning(e)
    }
}

impl From<EngineError> for ConductorError {
    fn from(e: EngineError) -> Self {
        ConductorError::Deployment(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_messages() {
        let e: ConductorError = LpError::Infeasible.into();
        assert!(matches!(e, ConductorError::Planning(LpError::Infeasible)));
        assert!(e.to_string().contains("planning"));
        let e: ConductorError = EngineError::InvalidOptions("bad".into()).into();
        assert!(e.to_string().contains("deployment"));
        let e = ConductorError::GoalUnattainable {
            reason: "deadline too tight".into(),
        };
        assert!(e.to_string().contains("deadline too tight"));
    }
}
