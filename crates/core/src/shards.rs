//! The sharded fleet runtime: partitioned tenants, parallel shard
//! stepping, and a queue-rebalancer.
//!
//! A [`ShardedFleet`] partitions tenants across N independent [`Fleet`]
//! shards. Each shard owns a slice of the capacity pool (cut by
//! [`ResourcePool::split`]), its own clock and event heap, and — when the
//! caller attaches one — its own write-ahead log. Shards share **no**
//! mutable state; the only cross-shard interaction is an explicit, logged
//! [`TransferEvent`] that moves a *queued* job (never a running one) from
//! one shard to another, carrying the full [`FleetJobRequest`] and the
//! billing accrued so far (always zero for queued jobs, recorded anyway so
//! the transfer record is self-describing if the policy ever widens).
//!
//! # Placement
//!
//! Submissions route to a shard through a [`ShardRouter`]. The default
//! [`HashRouter`] is FNV-1a over the tenant name modulo the shard count:
//! stateless, deterministic, and stable across runs and processes (no
//! `RandomState`). A custom router can pin tenants, spread by workload
//! class, or anything else — it only has to be a pure function of the
//! request.
//!
//! # Determinism argument
//!
//! Every shard is a [`Fleet`], which is deterministic on its own clock
//! (see the fleet module's determinism contract). The sharded layer adds
//! three things, each deterministic by construction:
//!
//! 1. **Routing** is a pure function of the request and the shard count.
//! 2. **Parallel stepping** ([`ShardedFleet::step_until`]) advances every
//!    shard to the *same* barrier hour on a scoped thread pool. Threads
//!    never touch another shard's state, so OS scheduling cannot reorder
//!    anything observable; results are read back in shard order after the
//!    scope joins.
//! 3. **Rebalancing** runs only at barriers, when every shard sits at the
//!    same hour, and iterates a greedy loop with total tie-breaking
//!    (lowest shard index, lowest local submission index), so the
//!    transfer sequence is a pure function of barrier state.
//!
//! Consequently an N-shard run is bitwise reproducible: same submissions →
//! same per-shard event logs, same transfers, same merged report. The PR 9
//! checkpoint/replay guarantees hold *shard-locally*: each shard's WAL
//! replays on that shard alone, because migrations appear in it as
//! ordinary `MigratedOut` / `Submitted` events.
//!
//! # Rebalancer policy
//!
//! At each cadence barrier the rebalancer compares per-shard queue depth
//! (pending arrivals) and residual capped capacity, then greedily moves
//! the lowest-indexed queued *original* submission (attempt zero — retry
//! chains never migrate) from the deepest queue to the shallowest, ties
//! broken toward more residual slack and then lower shard index, until no
//! move would strictly reduce the depth spread. Each move emits a
//! [`TransferEvent`].

use crate::error::ConductorError;
use crate::fleet::{
    Fleet, FleetConfig, FleetEvent, FleetJobRequest, FleetReport, FleetSnapshot, TenantId,
    TenantOutcome, TenantStatus,
};
use crate::resources::ResourcePool;
use crate::wal::WalWriter;
use conductor_cloud::Catalog;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Deterministic tenant→shard placement. Implementations must be pure:
/// the same request and shard count always map to the same shard, or
/// replay and the N=1 equivalence argument both break.
pub trait ShardRouter: Send + Sync {
    /// The shard (`0..shards`) this request lives on. Out-of-range
    /// returns are folded back with a modulo rather than trusted.
    fn route(&self, request: &FleetJobRequest, shards: usize) -> usize;
}

/// The default router: FNV-1a over the tenant name, modulo the shard
/// count. Stateless and seed-free, so placement is stable across runs,
/// processes and platforms.
#[derive(Debug, Clone, Copy, Default)]
pub struct HashRouter;

impl ShardRouter for HashRouter {
    fn route(&self, request: &FleetJobRequest, shards: usize) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in request.tenant.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % shards.max(1) as u64) as usize
    }
}

/// One cross-shard job migration, in the order the rebalancer issued it.
/// This is the *entire* cross-shard protocol: the full request moves, the
/// source shard logs a `MigratedOut`, the destination logs a `Submitted`,
/// and nothing else crosses the boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferEvent {
    /// Tenant name, for log readability (the request carries it too).
    pub tenant: String,
    /// Shard the job left.
    pub from_shard: usize,
    /// Shard the job landed on.
    pub to_shard: usize,
    /// Barrier hour at which the transfer happened.
    pub at_hours: f64,
    /// Spend accrued on the source shard before the move. Queued jobs
    /// have not run, so this is always `0.0` under the current policy;
    /// it is recorded so the transfer log stays self-describing if the
    /// policy ever migrates started work.
    pub billed_so_far: f64,
    /// The migrated submission, with `arrival_hours` rewritten to the
    /// *scheduled* arrival on the source shard, so resubmission on the
    /// destination reproduces the identical arrival event.
    pub request: FleetJobRequest,
}

/// Configuration of a [`ShardedFleet`]: how many shards, and whether (and
/// how often) the queue-rebalancer runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardedFleetConfig {
    /// Number of shards (≥ 1). The capacity pool is cut into this many
    /// slices by [`ResourcePool::split`].
    pub shards: usize,
    /// Rebalance cadence on the fleet clock. `None` disables the
    /// rebalancer entirely: shards never interact and
    /// [`ShardedFleet::run_to_quiescence`] drains them fully in parallel.
    pub rebalance_period_hours: Option<f64>,
}

impl Default for ShardedFleetConfig {
    fn default() -> Self {
        Self {
            shards: 1,
            rebalance_period_hours: None,
        }
    }
}

impl ShardedFleetConfig {
    /// Checks the configuration is usable.
    pub fn validate(&self) -> Result<(), ConductorError> {
        if self.shards == 0 {
            return Err(ConductorError::InvalidInput(
                "sharded fleet needs at least one shard".into(),
            ));
        }
        if let Some(p) = self.rebalance_period_hours {
            if !p.is_finite() || p <= 0.0 {
                return Err(ConductorError::InvalidInput(format!(
                    "rebalance period must be finite and positive, got {p}"
                )));
            }
        }
        Ok(())
    }
}

/// A fleet of [`Fleet`]s: tenants partitioned across N shards, stepped in
/// parallel between barriers, optionally rebalanced. The single-fleet
/// status/billing surface ([`submit`](Self::submit),
/// [`cancel`](Self::cancel), [`status`](Self::status),
/// [`fleet_bill`](Self::fleet_bill), [`report`](Self::report)) works
/// unchanged on top; [`TenantId`]s returned here are *global* (fleet-wide
/// submission order) and stay valid across migrations.
pub struct ShardedFleet {
    catalog: Catalog,
    fleet_config: FleetConfig,
    pools: Vec<ResourcePool>,
    shards: Vec<Fleet>,
    router: Box<dyn ShardRouter>,
    /// Global tenant id → current (shard, shard-local id).
    placements: Vec<(usize, TenantId)>,
    /// Per shard: local submission index → global tenant id. Entries for
    /// migrated-away locals are kept (the report scan needs the total
    /// map); `migrated_away` marks which to skip.
    local_to_global: Vec<BTreeMap<usize, usize>>,
    /// Per shard: local indices whose job migrated to another shard.
    migrated_away: Vec<BTreeSet<usize>>,
    transfers: Vec<TransferEvent>,
    rebalance_period: Option<f64>,
    next_rebalance: f64,
}

impl std::fmt::Debug for ShardedFleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedFleet")
            .field("shards", &self.shards.len())
            .field("tenants", &self.placements.len())
            .field("transfers", &self.transfers.len())
            .field("rebalance_period", &self.rebalance_period)
            .finish_non_exhaustive()
    }
}

impl ShardedFleet {
    /// Opens a sharded session with the default [`HashRouter`]: the pool
    /// is split into `config.shards` slices and one [`Fleet`] opens per
    /// slice, each with a clone of the catalog and fleet config (so every
    /// shard schedules the identical revocation sweeps and fault plan on
    /// its own clock).
    pub fn new(
        catalog: Catalog,
        pool: ResourcePool,
        fleet_config: FleetConfig,
        config: ShardedFleetConfig,
    ) -> Result<Self, ConductorError> {
        Self::with_router(catalog, pool, fleet_config, config, Box::new(HashRouter))
    }

    /// [`new`](Self::new) with a custom placement policy.
    pub fn with_router(
        catalog: Catalog,
        pool: ResourcePool,
        fleet_config: FleetConfig,
        config: ShardedFleetConfig,
        router: Box<dyn ShardRouter>,
    ) -> Result<Self, ConductorError> {
        config.validate()?;
        let pools = pool.split(config.shards);
        let mut shards = Vec::with_capacity(config.shards);
        for slice in &pools {
            shards.push(Fleet::new(
                catalog.clone(),
                slice.clone(),
                fleet_config.clone(),
            )?);
        }
        let n = shards.len();
        Ok(Self {
            catalog,
            fleet_config,
            pools,
            shards,
            router,
            placements: Vec::new(),
            local_to_global: vec![BTreeMap::new(); n],
            migrated_away: vec![BTreeSet::new(); n],
            transfers: Vec::new(),
            rebalance_period: config.rebalance_period_hours,
            next_rebalance: config.rebalance_period_hours.unwrap_or(f64::INFINITY),
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Read access to one shard (its event log, WAL error, clock…).
    pub fn shard(&self, shard: usize) -> Option<&Fleet> {
        self.shards.get(shard)
    }

    /// Every cross-shard migration so far, in the deterministic order the
    /// rebalancer issued them.
    pub fn transfers(&self) -> &[TransferEvent] {
        &self.transfers
    }

    /// Routes and submits a job. The returned [`TenantId`] is global —
    /// fleet-wide submission order — and stays valid if the rebalancer
    /// later migrates the job. Other shards get their monitor grid
    /// aligned to this arrival ([`Fleet::align_monitor`]), so per-shard
    /// re-plan tick times match what a single unsharded fleet seeing
    /// every submission would produce.
    pub fn submit(&mut self, request: FleetJobRequest) -> Result<TenantId, ConductorError> {
        let n = self.shards.len();
        let target = self.router.route(&request, n) % n;
        let arrival = request.arrival_hours;
        let local = self.shards[target].submit(request)?;
        for (i, shard) in self.shards.iter_mut().enumerate() {
            if i != target {
                shard.align_monitor(arrival)?;
            }
        }
        let global = self.placements.len();
        self.placements.push((target, local));
        self.local_to_global[target].insert(local.0, global);
        Ok(TenantId(global))
    }

    /// Cancels a tenant's job on whichever shard currently owns it. Same
    /// semantics as [`Fleet::cancel`].
    pub fn cancel(&mut self, id: TenantId) -> Result<bool, ConductorError> {
        let (shard, local) = self.placement(id)?;
        self.shards[shard].cancel(local)
    }

    /// Live status of a tenant's *original* submission, wherever it lives
    /// now. `None` for unknown ids.
    pub fn status(&self, id: TenantId) -> Option<TenantStatus> {
        let (shard, local) = self.placement(id).ok()?;
        self.shards[shard].status(local)
    }

    /// Which shard currently owns a tenant (it changes when the
    /// rebalancer migrates the job).
    pub fn shard_of(&self, id: TenantId) -> Option<usize> {
        self.placements.get(id.0).map(|&(s, _)| s)
    }

    fn placement(&self, id: TenantId) -> Result<(usize, TenantId), ConductorError> {
        self.placements.get(id.0).copied().ok_or_else(|| {
            ConductorError::InvalidInput(format!("unknown tenant id {} in sharded fleet", id.0))
        })
    }

    /// Advances every shard to `hours` in parallel. With a rebalance
    /// cadence configured, stepping pauses at each cadence barrier — all
    /// shards at the identical hour — runs the rebalancer, then resumes.
    /// Without one, this is a single parallel advance.
    pub fn step_until(&mut self, hours: f64) {
        if !hours.is_finite() {
            return;
        }
        if let Some(period) = self.rebalance_period {
            while self.next_rebalance < hours {
                let boundary = self.next_rebalance;
                self.parallel_step(boundary);
                self.rebalance(boundary);
                self.next_rebalance = boundary + period;
            }
        }
        self.parallel_step(hours);
    }

    /// Drains every shard. With the rebalancer off, shards are fully
    /// independent and each drains [`Fleet::run_to_quiescence`] on its own
    /// thread. With it on, the driver steps barrier-to-barrier (so queued
    /// work keeps rebalancing) until no shard has events before the next
    /// barrier, then drains; per-shard stalled-abort/retry semantics are
    /// unchanged.
    pub fn run_to_quiescence(&mut self) {
        if let Some(period) = self.rebalance_period {
            loop {
                let horizon = self
                    .shards
                    .iter()
                    .filter_map(Fleet::horizon_hours)
                    .reduce(f64::max);
                let Some(horizon) = horizon else { break };
                if self.next_rebalance > horizon {
                    break;
                }
                let boundary = self.next_rebalance;
                self.parallel_step(boundary);
                self.rebalance(boundary);
                self.next_rebalance = boundary + period;
            }
        }
        self.parallel_drain();
    }

    /// Total pending events across all shard clocks.
    pub fn pending_events(&self) -> usize {
        self.shards.iter().map(Fleet::pending_events).sum()
    }

    /// Sum of all shard bills — terminal spend plus accrued spend of
    /// still-running jobs, exactly [`Fleet::fleet_bill`] per shard.
    /// Migrated jobs never ran on their source shard, so nothing is
    /// double-billed.
    pub fn fleet_bill(&self) -> f64 {
        self.shards.iter().map(Fleet::fleet_bill).sum()
    }

    /// The merged event stream: every shard's [`Fleet::events`] log
    /// tagged with its shard id, in stable `(time, shard, per-shard
    /// sequence)` order. The sort is stable and per-shard logs are
    /// appended in shard order, so simultaneous events order by shard id
    /// and each shard's internal sequence is preserved.
    pub fn merged_events(&self) -> Vec<(usize, FleetEvent)> {
        let mut all: Vec<(usize, FleetEvent)> = Vec::new();
        for (i, shard) in self.shards.iter().enumerate() {
            all.extend(shard.events().iter().map(|e| (i, e.clone())));
        }
        all.sort_by(|a, b| {
            a.1.at_hours()
                .total_cmp(&b.1.at_hours())
                .then(a.0.cmp(&b.0))
        });
        all
    }

    /// The fleet-wide report: per-tenant outcomes from every shard merged
    /// in canonical order — by global submission id, then attempt, so the
    /// merged report is identical whether a tenant's chain ran on one
    /// shard or migrated. Source-shard records of migrated-away jobs are
    /// dropped (the destination owns the outcome). Breaker-open hours and
    /// plan-cache counters sum across shards.
    pub fn report(&self) -> FleetReport {
        let mut keyed: Vec<((usize, usize, usize, usize), TenantOutcome)> = Vec::new();
        for (s, shard) in self.shards.iter().enumerate() {
            for (i, o) in shard.outcomes().iter().enumerate() {
                let root = o.retry_of.unwrap_or(i);
                if self.migrated_away[s].contains(&root) {
                    continue;
                }
                let global = self.local_to_global[s][&root];
                keyed.push(((global, o.attempt, s, i), o.clone()));
            }
        }
        keyed.sort_by_key(|a| a.0);
        let mut report = FleetReport::from_outcomes(keyed.into_iter().map(|(_, o)| o).collect());
        for shard in &self.shards {
            let r = shard.report();
            report.breaker_open_hours += r.breaker_open_hours;
            report.plan_cache_hits += r.plan_cache_hits;
            report.plan_cache_misses += r.plan_cache_misses;
        }
        report
    }

    /// Checkpoints one shard ([`Fleet::checkpoint`]). Meaningful at
    /// barrier boundaries — between [`step_until`](Self::step_until)
    /// calls — exactly like the single-fleet contract.
    pub fn checkpoint_shard(&self, shard: usize) -> Result<FleetSnapshot, ConductorError> {
        self.shards
            .get(shard)
            .map(Fleet::checkpoint)
            .ok_or_else(|| Self::no_such_shard(shard))
    }

    /// Replaces one shard with a restore from a snapshot taken by
    /// [`checkpoint_shard`](Self::checkpoint_shard), using the shard's
    /// own pool slice and the shared catalog/config. The caller is
    /// responsible for timing: restoring to a barrier earlier than
    /// migrations that already updated the global placement table would
    /// desynchronize it. A WAL attached to the old shard instance is
    /// dropped, as in [`Fleet::restore`] — re-attach afterwards to keep
    /// tailing.
    pub fn restore_shard(
        &mut self,
        shard: usize,
        snapshot: &FleetSnapshot,
    ) -> Result<(), ConductorError> {
        let pool = self
            .pools
            .get(shard)
            .cloned()
            .ok_or_else(|| Self::no_such_shard(shard))?;
        self.shards[shard] = Fleet::restore(
            self.catalog.clone(),
            pool,
            self.fleet_config.clone(),
            snapshot,
        )?;
        Ok(())
    }

    /// Attaches a write-ahead log to one shard ([`Fleet::attach_wal`]):
    /// from now on that shard's events tail into the log as they are
    /// emitted.
    pub fn attach_wal(&mut self, shard: usize, wal: WalWriter) -> Result<(), ConductorError> {
        self.shards
            .get_mut(shard)
            .map(|s| s.attach_wal(wal))
            .ok_or_else(|| Self::no_such_shard(shard))
    }

    fn no_such_shard(shard: usize) -> ConductorError {
        ConductorError::InvalidInput(format!("no such shard: {shard}"))
    }

    /// Advances every shard to the same hour on a scoped thread pool.
    /// Shards share nothing mutable, so thread interleaving is
    /// unobservable; the barrier join restores shard order.
    fn parallel_step(&mut self, hours: f64) {
        if self.shards.len() == 1 {
            self.shards[0].step_until(hours);
            return;
        }
        std::thread::scope(|scope| {
            for shard in &mut self.shards {
                scope.spawn(move || shard.step_until(hours));
            }
        });
    }

    /// Drains every shard completely, in parallel.
    fn parallel_drain(&mut self) {
        if self.shards.len() == 1 {
            self.shards[0].run_to_quiescence();
            return;
        }
        std::thread::scope(|scope| {
            for shard in &mut self.shards {
                scope.spawn(move || shard.run_to_quiescence());
            }
        });
    }

    /// One rebalance pass at a barrier. Greedy: move the lowest-indexed
    /// queued original submission from the deepest queue to the
    /// shallowest (ties toward more residual slack, then lower shard
    /// index) while a move strictly narrows the depth spread.
    fn rebalance(&mut self, at: f64) {
        let n = self.shards.len();
        if n < 2 {
            return;
        }
        loop {
            let depths: Vec<usize> = self.shards.iter().map(Fleet::queue_depth).collect();
            let slack: Vec<usize> = self
                .shards
                .iter()
                .map(|s| s.residual_capped_nodes(at))
                .collect();
            let src = (0..n)
                .max_by(|&a, &b| depths[a].cmp(&depths[b]).then(b.cmp(&a)))
                .expect("at least two shards");
            let dst = (0..n)
                .min_by(|&a, &b| {
                    depths[a]
                        .cmp(&depths[b])
                        .then(slack[b].cmp(&slack[a]))
                        .then(a.cmp(&b))
                })
                .expect("at least two shards");
            // A move must strictly narrow the spread (src loses one, dst
            // gains one), or the loop would oscillate.
            if src == dst || depths[src] < depths[dst] + 2 {
                break;
            }
            let candidates = self.shards[src].queued_candidates();
            let Some(&victim) = candidates.first() else {
                // Depth counts retry waits too, but those never migrate.
                break;
            };
            let request = self.shards[src]
                .migrate_out(TenantId(victim))
                .expect("queued candidate migrates");
            let global = self.local_to_global[src][&victim];
            let new_local = self.shards[dst]
                .submit(request.clone())
                .expect("validated request resubmits");
            self.migrated_away[src].insert(victim);
            self.placements[global] = (dst, new_local);
            self.local_to_global[dst].insert(new_local.0, global);
            self.transfers.push(TransferEvent {
                tenant: request.tenant.clone(),
                from_shard: src,
                to_shard: dst,
                at_hours: at,
                billed_so_far: 0.0,
                request,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request_named(name: &str) -> FleetJobRequest {
        FleetJobRequest::new(
            name,
            conductor_mapreduce::Workload::KMeansScaled { input_gb: 4 }.spec(),
            crate::goal::Goal::MinimizeCost {
                deadline_hours: 24.0,
            },
            0.0,
        )
    }

    #[test]
    fn hash_router_is_stable_and_in_range() {
        let router = HashRouter;
        for n in 1..=8 {
            for name in ["analytics", "etl", "ml-train", "", "tenant-42"] {
                let req = request_named(name);
                let a = router.route(&req, n);
                let b = router.route(&req, n);
                assert_eq!(a, b, "routing must be pure");
                assert!(a < n, "route {a} out of range for {n} shards");
            }
        }
    }

    #[test]
    fn hash_router_spreads_tenants() {
        let router = HashRouter;
        let shards = 4;
        let mut hit = vec![0usize; shards];
        for i in 0..64 {
            let req = request_named(&format!("tenant-{i}"));
            hit[router.route(&req, shards)] += 1;
        }
        assert!(
            hit.iter().all(|&c| c > 0),
            "64 tenants over 4 shards should touch every shard: {hit:?}"
        );
    }

    #[test]
    fn config_validation_rejects_bad_values() {
        assert!(ShardedFleetConfig {
            shards: 0,
            rebalance_period_hours: None,
        }
        .validate()
        .is_err());
        assert!(ShardedFleetConfig {
            shards: 2,
            rebalance_period_hours: Some(0.0),
        }
        .validate()
        .is_err());
        assert!(ShardedFleetConfig {
            shards: 2,
            rebalance_period_hours: Some(f64::NAN),
        }
        .validate()
        .is_err());
        assert!(ShardedFleetConfig::default().validate().is_ok());
    }
}
