//! The planner: builds the model, dispatches it to the solver, and extracts
//! an execution plan (§4.8, Figure 2 steps 1–2).

use crate::error::ConductorError;
use crate::goal::Goal;
use crate::model::{ModelConfig, ModelInstance};
use crate::plan::ExecutionPlan;
use crate::resources::ResourcePool;
use conductor_lp::{LpError, SolveContext, SolveOptions};
use conductor_mapreduce::JobSpec;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Statistics about one planning run (model size, solver effort) — the data
/// behind the overhead evaluation of §6.6 / Figure 16.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanningReport {
    /// Number of decision variables in the generated model.
    pub model_vars: usize,
    /// Number of constraints in the generated model.
    pub model_constraints: usize,
    /// Time spent generating the model.
    pub model_build_time: Duration,
    /// Time spent in the solver.
    pub solve_time: Duration,
    /// Simplex iterations across all branch & bound nodes.
    pub simplex_iterations: usize,
    /// Branch & bound nodes explored.
    pub nodes_explored: usize,
    /// Nodes that reused their parent's simplex basis (phase 1 skipped).
    #[serde(default)]
    pub warm_start_hits: usize,
    /// Nodes whose warm-start attempt fell back to the cold path.
    #[serde(default)]
    pub warm_start_misses: usize,
    /// LU factorizations of the simplex basis (revised engine; 0 for the
    /// tableau engines).
    #[serde(default)]
    pub basis_factorizations: usize,
    /// Factorizations triggered mid-stream by the eta limit or a drift
    /// check (subset of `basis_factorizations`).
    #[serde(default)]
    pub basis_refactorizations: usize,
    /// Bound flips by the bounded-variable ratio test (0 unless
    /// `SolveOptions::bounded_variables` is on).
    #[serde(default)]
    pub bound_flips: usize,
    /// Forrest–Tomlin factor updates (0 unless
    /// `SolveOptions::forrest_tomlin` is on).
    #[serde(default)]
    pub ft_updates: usize,
}

impl PlanningReport {
    /// Fraction of warm-start attempts that hit (0 when none were attempted).
    pub fn warm_start_rate(&self) -> f64 {
        let attempts = self.warm_start_hits + self.warm_start_misses;
        if attempts == 0 {
            0.0
        } else {
            self.warm_start_hits as f64 / attempts as f64
        }
    }
}

/// A root LP relaxation bound plus the dimensions of the model it was
/// computed on — what [`Planner::root_bound_with_ctx`] returns for plan
/// cache certification and hit-path reporting.
#[derive(Debug, Clone, Copy)]
pub struct RootBound {
    /// Objective of the root LP relaxation in the problem's own sense — a
    /// lower bound (for minimization) on every integral plan's cost.
    pub bound: f64,
    /// Decision variables in the generated model.
    pub model_vars: usize,
    /// Constraints in the generated model.
    pub model_constraints: usize,
    /// Time spent generating the model.
    pub model_build_time: Duration,
    /// Time spent solving the relaxation.
    pub solve_time: Duration,
}

/// The planning front end.
#[derive(Debug, Clone)]
pub struct Planner {
    pool: ResourcePool,
    solve_options: SolveOptions,
    /// Interval length in hours (1.0 by default, as in the paper).
    pub interval_hours: f64,
    /// Whether generated models include migration variables.
    pub enable_migration: bool,
}

impl Planner {
    /// Creates a planner over a resource pool.
    ///
    /// The default solver configuration follows the spirit of the paper's
    /// CPLEX setup (return the best plan found when limits are hit, §4.8) but
    /// with bounds tuned for the bundled branch & bound solver: a 2 %
    /// optimality gap, a 2,000-node search limit and a 60-second cap. Use
    /// [`Planner::with_solve_options`] to reproduce the exact 1 %/3-minute
    /// CPLEX configuration.
    pub fn new(pool: ResourcePool) -> Self {
        Self {
            pool,
            solve_options: SolveOptions {
                relative_gap: 0.02,
                max_nodes: 4_000,
                time_limit: Duration::from_secs(60),
                ..SolveOptions::default()
            },
            interval_hours: 1.0,
            enable_migration: false,
        }
    }

    /// Replaces the solver options (gap, node/time limits).
    pub fn with_solve_options(mut self, options: SolveOptions) -> Self {
        self.solve_options = options;
        self
    }

    /// Enables inter-storage migration variables in generated models.
    pub fn with_migration(mut self, enable: bool) -> Self {
        self.enable_migration = enable;
        self
    }

    /// The resource pool this planner plans over.
    pub fn pool(&self) -> &ResourcePool {
        &self.pool
    }

    /// Plans `spec` under `goal`. Returns the plan and a report of the
    /// planning effort.
    pub fn plan(
        &self,
        spec: &JobSpec,
        goal: Goal,
    ) -> Result<(ExecutionPlan, PlanningReport), ConductorError> {
        self.plan_with_config(spec, goal, &ModelConfig::default())
    }

    /// Plans with extra model configuration (initial state for re-planning,
    /// price forecasts, pinned storage mixes). The horizon and budget fields
    /// of `base_config` are overridden from `goal`.
    pub fn plan_with_config(
        &self,
        spec: &JobSpec,
        goal: Goal,
        base_config: &ModelConfig,
    ) -> Result<(ExecutionPlan, PlanningReport), ConductorError> {
        self.plan_with_config_ctx(spec, goal, base_config, None)
    }

    /// [`Self::plan_with_config`] with a cross-solve [`SolveContext`]: a
    /// stream of look-alike admissions drains through one standard-form
    /// skeleton and factorized basis, each solve warm-starting its root
    /// from the previous solve's optimum instead of a cold two-phase fill.
    pub fn plan_with_config_ctx(
        &self,
        spec: &JobSpec,
        goal: Goal,
        base_config: &ModelConfig,
        ctx: Option<&mut SolveContext>,
    ) -> Result<(ExecutionPlan, PlanningReport), ConductorError> {
        match goal {
            Goal::MinimizeCost { deadline_hours } => {
                let config = self.min_cost_config(deadline_hours, base_config);
                self.solve_config(spec, &config, ctx)
            }
            Goal::MinimizeTime {
                budget_usd,
                max_hours,
            } => self.minimize_time(spec, budget_usd, max_hours, base_config, ctx),
        }
    }

    /// The fully resolved model config a `MinimizeCost { deadline_hours }`
    /// goal solves under.
    fn min_cost_config(&self, deadline_hours: f64, base_config: &ModelConfig) -> ModelConfig {
        let horizon = (deadline_hours / self.interval_hours).ceil().max(1.0) as usize;
        ModelConfig {
            horizon_intervals: horizon,
            interval_hours: self.interval_hours,
            enable_migration: self.enable_migration || base_config.enable_migration,
            budget_usd: None,
            ..base_config.clone()
        }
    }

    /// Builds the minimize-cost model for `deadline_hours` and solves only
    /// its root LP relaxation through `ctx` — the certified lower bound a
    /// plan cache compares a candidate reused plan against, at a fraction
    /// of a branch & bound's cost. Returns the bound together with the
    /// model dimensions (for reporting). The context keeps the optimal
    /// factorized basis, so a full solve on a cache miss warm-starts from
    /// the relaxation just computed.
    pub fn root_bound_with_ctx(
        &self,
        spec: &JobSpec,
        deadline_hours: f64,
        base_config: &ModelConfig,
        ctx: &mut SolveContext,
    ) -> Result<RootBound, ConductorError> {
        let config = self.min_cost_config(deadline_hours, base_config);
        let build_start = std::time::Instant::now();
        let model = ModelInstance::build(&self.pool, spec, &config)?;
        let model_build_time = build_start.elapsed();
        let solve_start = std::time::Instant::now();
        let bound = ctx
            .relaxation_bound(
                &model.problem,
                &self.solve_options,
                self.solve_options.max_simplex_iterations,
            )
            .map_err(ConductorError::Planning)?;
        Ok(RootBound {
            bound,
            model_vars: model.num_vars(),
            model_constraints: model.num_constraints(),
            model_build_time,
            solve_time: solve_start.elapsed(),
        })
    }

    /// Minimize-cost-style solve for a fully specified config.
    fn solve_config(
        &self,
        spec: &JobSpec,
        config: &ModelConfig,
        ctx: Option<&mut SolveContext>,
    ) -> Result<(ExecutionPlan, PlanningReport), ConductorError> {
        let build_start = std::time::Instant::now();
        let model = ModelInstance::build(&self.pool, spec, config)?;
        let model_build_time = build_start.elapsed();
        let solution = match ctx {
            Some(ctx) => model.problem.solve_with_context(&self.solve_options, ctx)?,
            None => model.problem.solve_with(&self.solve_options)?,
        };
        let plan = ExecutionPlan::from_solution(&model, &solution);
        let report = PlanningReport {
            model_vars: model.num_vars(),
            model_constraints: model.num_constraints(),
            model_build_time,
            solve_time: solution.stats().solve_time,
            simplex_iterations: solution.stats().simplex_iterations,
            nodes_explored: solution.stats().nodes_explored,
            warm_start_hits: solution.stats().warm_start_hits,
            warm_start_misses: solution.stats().warm_start_misses,
            basis_factorizations: solution.stats().basis_factorizations,
            basis_refactorizations: solution.stats().basis_refactorizations,
            bound_flips: solution.stats().bound_flips,
            ft_updates: solution.stats().ft_updates,
        };
        Ok((plan, report))
    }

    /// Minimize completion time under a budget: find the smallest horizon `T`
    /// for which a within-budget plan exists (binary search over `T`, each
    /// probe a min-cost solve with a budget cap).
    fn minimize_time(
        &self,
        spec: &JobSpec,
        budget_usd: f64,
        max_hours: f64,
        base_config: &ModelConfig,
        mut ctx: Option<&mut SolveContext>,
    ) -> Result<(ExecutionPlan, PlanningReport), ConductorError> {
        let max_horizon = (max_hours / self.interval_hours).ceil().max(1.0) as usize;
        let mut lo = 1usize;
        let mut hi = max_horizon;
        let mut best: Option<(ExecutionPlan, PlanningReport)>;

        // First check feasibility at the largest horizon.
        let config_at = |horizon: usize| ModelConfig {
            horizon_intervals: horizon,
            interval_hours: self.interval_hours,
            enable_migration: self.enable_migration || base_config.enable_migration,
            budget_usd: Some(budget_usd),
            ..base_config.clone()
        };
        match self.solve_config(spec, &config_at(max_horizon), ctx.as_deref_mut()) {
            Ok(result) => best = Some(result),
            Err(ConductorError::Planning(LpError::Infeasible | LpError::NoIncumbent)) => {
                return Err(ConductorError::GoalUnattainable {
                    reason: format!(
                        "no plan finishes within {max_hours} h under a {budget_usd} USD budget"
                    ),
                });
            }
            Err(e) => return Err(e),
        }

        while lo < hi {
            let mid = (lo + hi) / 2;
            match self.solve_config(spec, &config_at(mid), ctx.as_deref_mut()) {
                Ok(result) => {
                    best = Some(result);
                    hi = mid;
                }
                Err(ConductorError::Planning(LpError::Infeasible | LpError::NoIncumbent)) => {
                    lo = mid + 1;
                }
                Err(e) => return Err(e),
            }
        }
        best.ok_or(ConductorError::GoalUnattainable {
            reason: "no feasible horizon found".into(),
        })
    }

    /// Evaluates the cost of a plan that is forced to put `fraction` of the
    /// input on `storage` (the Figure 8/9 storage-mix sweeps). Returns the
    /// optimal cost under that restriction.
    pub fn cost_with_storage_fraction(
        &self,
        spec: &JobSpec,
        deadline_hours: f64,
        storage: &str,
        fraction: f64,
    ) -> Result<f64, ConductorError> {
        let config = ModelConfig {
            horizon_intervals: (deadline_hours / self.interval_hours).ceil().max(1.0) as usize,
            interval_hours: self.interval_hours,
            fixed_storage_fraction: Some((storage.to_string(), fraction)),
            ..ModelConfig::default()
        };
        let (plan, _) = self.solve_config(spec, &config, None)?;
        Ok(plan.expected_cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conductor_cloud::Catalog;
    use conductor_mapreduce::Workload;

    fn planner() -> Planner {
        let pool = ResourcePool::from_catalog(&Catalog::aws_july_2011(), 1.0)
            .with_compute_only(&["m1.large"]);
        Planner::new(pool)
    }

    fn fast_options() -> SolveOptions {
        SolveOptions {
            relative_gap: 0.02,
            max_nodes: 2_000,
            time_limit: Duration::from_secs(30),
            ..Default::default()
        }
    }

    #[test]
    fn cloud_only_min_cost_plan_matches_paper_scale() {
        let (plan, report) = planner()
            .with_solve_options(fast_options())
            .plan(
                &Workload::KMeans32Gb.spec(),
                Goal::MinimizeCost {
                    deadline_hours: 6.0,
                },
            )
            .unwrap();
        // Paper §6.2: Conductor stores data on EC2 instances and allocates on
        // the order of 16 nodes; cost lands in the tens of dollars.
        assert!(plan.expected_cost > 20.0 && plan.expected_cost < 45.0);
        // The plan concentrates work differently across intervals than the
        // paper's steady 16-node allocation, but the total rented node-hours
        // must cover the 32 GB / 0.44 GB/h of work.
        assert!(plan.peak_nodes("m1.large") >= 13 && plan.peak_nodes("m1.large") <= 40);
        let node_hours = plan.node_hours().get("m1.large").copied().unwrap_or(0.0);
        assert!(
            (32.0 / 0.44 - 1e-6..=90.0).contains(&node_hours),
            "{node_hours}"
        );
        let mix = plan.storage_mix();
        let ec2_fraction = mix.get("EC2-disk").copied().unwrap_or(0.0);
        assert!(ec2_fraction > 0.9, "storage mix {mix:?}");
        assert!(report.model_vars > 0);
        assert!(report.solve_time < Duration::from_secs(30));
    }

    #[test]
    fn impossible_deadline_is_a_planning_error() {
        let err = planner()
            .with_solve_options(fast_options())
            .plan(
                &Workload::KMeans32Gb.spec(),
                Goal::MinimizeCost {
                    deadline_hours: 2.0,
                },
            )
            .unwrap_err();
        assert!(matches!(err, ConductorError::Planning(_)));
    }

    #[test]
    fn minimize_time_finds_the_shortest_feasible_horizon() {
        let spec = Workload::KMeans32Gb.spec();
        let (plan, _) = planner()
            .with_solve_options(fast_options())
            .plan(
                &spec,
                Goal::MinimizeTime {
                    budget_usd: 60.0,
                    max_hours: 12.0,
                },
            )
            .unwrap();
        // The uplink alone needs ~4.8 h, so the best possible horizon is 5-6 h.
        assert!(plan.len() <= 7, "horizon {}", plan.len());
        assert!(plan.expected_cost <= 60.0 + 1e-6);
    }

    #[test]
    fn minimize_time_with_tiny_budget_is_unattainable() {
        let err = planner()
            .with_solve_options(fast_options())
            .plan(
                &Workload::KMeans32Gb.spec(),
                Goal::MinimizeTime {
                    budget_usd: 2.0,
                    max_hours: 10.0,
                },
            )
            .unwrap_err();
        assert!(matches!(err, ConductorError::GoalUnattainable { .. }));
    }

    #[test]
    fn storage_fraction_sweep_returns_costs() {
        let planner = planner().with_solve_options(fast_options());
        let spec = Workload::KMeansFastScan32Gb.spec();
        let all_s3 = planner
            .cost_with_storage_fraction(&spec, 12.0, "EC2-disk", 0.0)
            .unwrap();
        let all_ec2 = planner
            .cost_with_storage_fraction(&spec, 12.0, "EC2-disk", 1.0)
            .unwrap();
        assert!(all_s3 > 0.0);
        assert!(all_ec2 > 0.0);
    }
}
