//! The open-world fleet: a long-lived, incremental orchestration session.
//!
//! [`Fleet`] is the driver API the paper's *service* framing actually
//! needs: jobs [`submit`](Fleet::submit)ted at any simulated time
//! (including while the fleet is running), [`cancel`](Fleet::cancel)led
//! mid-flight, the clock advanced in steps
//! ([`step_until`](Fleet::step_until) /
//! [`run_to_quiescence`](Fleet::run_to_quiescence)), live state queried
//! ([`status`](Fleet::status), [`fleet_bill`](Fleet::fleet_bill),
//! [`now_hours`](Fleet::now_hours)) and every lifecycle transition
//! delivered as a typed [`FleetEvent`] — to registered
//! [`FleetObserver`]s as it happens, and to the replayable
//! [`events`](Fleet::events) log — in deterministic clock order.
//!
//! The closed-world batch call, `ConductorService::run`, is a thin
//! compatibility wrapper over this session (submit everything, then drain)
//! and is pinned **bitwise identical** to the pre-redesign driver by
//! `tests/fleet_api.rs`: same admissions, same re-plan hours, same bills
//! to the last bit on the multi-job, revocation-storm and Poisson-churn
//! suites.
//!
//! # Determinism contract
//!
//! All fleet state advances on one [`conductor_sim::Simulator`]; events
//! settle in `(time, class, insertion-seq)` order (arrivals before job
//! wakeups before revocations before monitor ticks — see the class
//! layering notes in [`conductor_sim`]). Two things keep the *incremental*
//! path on the batch path's trajectory:
//!
//! - **Monitor grid.** Ticks fire on the iterated grid `a₀ + k·period`
//!   anchored at the earliest submission's arrival hour. If the chain goes
//!   quiet (no active jobs, no pending arrivals) and a later submission
//!   revives it, the next tick is recomputed by *iterating* from the
//!   anchor — reproducing the exact floating-point tick times the batch
//!   driver's `t += period` chain would have produced.
//! - **Revocation sweeps.** Out-bid hours at the fleet bid become sweep
//!   events at construction (exactly as the batch driver scheduled them
//!   up front); a submission with a *lower* per-tenant
//!   [`FleetJobRequest::spot_bid`] adds sweeps for its extra out-bid
//!   hours, and every sweep checks each running job against **its own**
//!   bid, so default-bid tenants are untouched by another tenant's
//!   aggressive bidding.
//!
//! # Example
//!
//! ```
//! use conductor_cloud::Catalog;
//! use conductor_core::{Fleet, FleetConfig, FleetJobRequest, Goal, ResourcePool};
//! use conductor_mapreduce::Workload;
//!
//! let catalog = Catalog::aws_july_2011();
//! let pool = ResourcePool::from_catalog(&catalog, 1.0)
//!     .with_compute_only(&["m1.large"])
//!     .with_compute_cap("m1.large", 40);
//! let mut fleet = Fleet::new(catalog, pool, FleetConfig::default()).unwrap();
//!
//! // Submit while the clock is anywhere; step; query live state.
//! let tenant = fleet
//!     .submit(FleetJobRequest::new(
//!         "analytics",
//!         Workload::KMeansScaled { input_gb: 8 }.spec(),
//!         Goal::MinimizeCost { deadline_hours: 6.0 },
//!         0.0,
//!     ))
//!     .unwrap();
//! fleet.run_to_quiescence();
//!
//! let status = fleet.status(tenant).unwrap();
//! assert!(status.finished_at_hours.is_some());
//! assert!(fleet.fleet_bill() > 0.0);
//! assert!(fleet
//!     .events()
//!     .iter()
//!     .any(|e| matches!(e, conductor_core::FleetEvent::Completed { .. })));
//! ```

use crate::controller::scheduler_for_plan;
use crate::error::ConductorError;
use crate::goal::Goal;
use crate::model::{InitialState, ModelConfig};
use crate::plan::ExecutionPlan;
use crate::planner::{Planner, PlanningReport};
use crate::policy::{
    AdmissionChange, BreakerState, BreakerTransition, DeadLetter, FailurePolicy, FailureWindow,
    FallbackTier, FaultKind, RetryPolicy, SpotBreaker,
};
use crate::resources::{ResourcePool, REFERENCE_WORKLOAD_GBPH};
use crate::wal::WalWriter;
use conductor_cloud::{Catalog, CostBreakdown, SpotMarket};
use conductor_lp::{SolveContext, SolveOptions};
use conductor_mapreduce::cluster::nodes_at;
use conductor_mapreduce::execution::{
    ExecutionProgress, ExecutionSnapshot, JobExecution, JobPhase, SessionPricing,
};
use conductor_mapreduce::{JobSpec, NodeAllocation};
use conductor_sim::{ProcessId, ProcessRegistry, ScheduledEvent, Simulator, TIME_EPSILON};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};

/// Handle of one submitted job within a [`Fleet`] session. Ids are issued
/// in submission order and index [`FleetReport::tenants`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TenantId(pub usize);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

/// One tenant's job submission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetJobRequest {
    /// Tenant name (used as the deployment label and in the fleet report).
    pub tenant: String,
    /// The computation to deploy.
    pub spec: JobSpec,
    /// The tenant's optimization goal.
    pub goal: Goal,
    /// Fleet-clock hour at which the job arrives. A mid-run
    /// [`Fleet::submit`] clamps this to the current fleet hour: jobs
    /// cannot arrive in the simulated past.
    pub arrival_hours: f64,
    /// Per-tenant maximum bid per spot instance-hour, overriding the
    /// fleet-wide [`FleetConfig::spot_bid`] for this job's rental
    /// sessions, price forecast and revocation checks. `None` uses the
    /// fleet bid. Must be finite and non-negative.
    #[serde(default)]
    pub spot_bid: Option<f64>,
    /// Per-tenant retry policy, overriding the fleet-wide
    /// [`FailurePolicy::retry`] for this tenant's terminal dispositions
    /// (retry/backoff and dead-lettering). `None` uses the fleet policy;
    /// retries inherit the override (the cloned request carries it).
    #[serde(default)]
    pub retry_override: Option<RetryPolicy>,
}

impl FleetJobRequest {
    /// Creates a request (fleet-bid pricing; see
    /// [`with_spot_bid`](Self::with_spot_bid)).
    pub fn new(tenant: impl Into<String>, spec: JobSpec, goal: Goal, arrival_hours: f64) -> Self {
        Self {
            tenant: tenant.into(),
            spec,
            goal,
            arrival_hours,
            spot_bid: None,
            retry_override: None,
        }
    }

    /// Overrides the fleet-wide spot bid for this tenant only. A lower bid
    /// buys cheaper hours at the price of more revocations *for this
    /// tenant*; other tenants keep their own bids.
    pub fn with_spot_bid(mut self, bid: f64) -> Self {
        self.spot_bid = Some(bid);
        self
    }

    /// Overrides the fleet-wide retry policy for this tenant only: its
    /// failures (and late completions, per the policy) retry on this
    /// budget and backoff instead of the fleet's, and exhaust into the
    /// shared dead-letter queue. Retries inherit the override.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry_override = Some(retry);
        self
    }
}

/// Configuration of a [`Fleet`] session (and of the `ConductorService`
/// compatibility wrapper), validated once at construction — replacing the
/// old `with_*` builder sprawl with one checked struct.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Solver options used for admission and re-planning.
    pub solve_options: SolveOptions,
    /// The shared spot market every tenant's rental sessions are priced
    /// against; `None` buys on-demand (no revocations).
    pub spot_market: Option<SpotMarket>,
    /// Fleet-wide maximum bid per spot instance-hour; `None` bids the
    /// on-demand price (the rational ceiling). Sessions are terminated —
    /// and new requests refused — whenever the trace price rises strictly
    /// above the effective bid. Per-tenant
    /// [`FleetJobRequest::spot_bid`] overrides this for individual jobs.
    pub spot_bid: Option<f64>,
    /// Hours between monitor ticks (1.0 = the paper's planning interval).
    /// Must be finite and positive.
    pub monitor_period_hours: f64,
    /// Relative shortfall that triggers a re-plan: the monitor stays quiet
    /// while observed progress is at least `(1 - tolerance)` of the plan's
    /// projection. Must be finite and within `[0, 1]`.
    pub monitor_tolerance: f64,
    /// Safety margin subtracted from the remaining deadline when
    /// re-planning (see `AdaptiveController::replan_margin_hours`).
    pub replan_margin_hours: f64,
    /// Fractional inflation of the remaining work at re-plan time.
    pub monitor_conservatism: f64,
    /// The failure policy: fault injection, retry/backoff with
    /// dead-lettering, the admission gate and the spot-market circuit
    /// breaker (see [`crate::policy`]). The default is completely inert,
    /// so unpolicied sessions replay the pre-policy trajectories bit for
    /// bit.
    pub policy: FailurePolicy,
    /// Reuse admission plans across look-alike arrivals: a cached plan
    /// whose shape fits the current residual capacity and whose re-priced
    /// cost is certified against the fresh model's root LP relaxation
    /// bound (within the solver's `relative_gap`) is admitted without a
    /// branch & bound solve. Off by default: the cache changes which
    /// (equally certified) plan a tenant is admitted under, so sessions
    /// that pin exact trajectories should leave it disabled.
    pub plan_cache: bool,
    /// Validation mode: probe the plan cache at every admission and
    /// record how each would-be hit compares against the full solve that
    /// actually decides — but never *use* a cached plan. The probe runs
    /// through its own solve context, so the session's trajectory stays
    /// bitwise identical to `plan_cache: false`. Query the comparison
    /// via [`Fleet::plan_cache_shadow_stats`]. Takes precedence over
    /// `plan_cache` when both are set.
    pub plan_cache_shadow: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            solve_options: SolveOptions {
                relative_gap: 0.02,
                max_nodes: 2_000,
                time_limit: std::time::Duration::from_secs(30),
                ..SolveOptions::default()
            },
            spot_market: None,
            spot_bid: None,
            monitor_period_hours: 1.0,
            monitor_tolerance: 0.25,
            replan_margin_hours: 1.0,
            monitor_conservatism: 0.15,
            policy: FailurePolicy::default(),
            plan_cache: false,
            plan_cache_shadow: false,
        }
    }
}

impl FleetConfig {
    /// Checks every knob once, so NaN or negative values can never reach
    /// the event heap (where a NaN tick period or tolerance would silently
    /// corrupt comparisons instead of failing loudly).
    pub fn validate(&self) -> Result<(), ConductorError> {
        if !self.monitor_period_hours.is_finite() || self.monitor_period_hours <= 0.0 {
            return Err(ConductorError::InvalidInput(format!(
                "monitor period must be a finite positive number of hours, got {}",
                self.monitor_period_hours
            )));
        }
        if !self.monitor_tolerance.is_finite() || !(0.0..=1.0).contains(&self.monitor_tolerance) {
            return Err(ConductorError::InvalidInput(format!(
                "monitor tolerance must be finite and within [0, 1], got {}",
                self.monitor_tolerance
            )));
        }
        if !self.replan_margin_hours.is_finite() || self.replan_margin_hours < 0.0 {
            return Err(ConductorError::InvalidInput(format!(
                "re-plan margin must be finite and non-negative, got {}",
                self.replan_margin_hours
            )));
        }
        if !self.monitor_conservatism.is_finite() || self.monitor_conservatism < 0.0 {
            return Err(ConductorError::InvalidInput(format!(
                "monitor conservatism must be finite and non-negative, got {}",
                self.monitor_conservatism
            )));
        }
        if let Some(bid) = self.spot_bid {
            if !bid.is_finite() || bid < 0.0 {
                return Err(ConductorError::InvalidInput(format!(
                    "fleet spot bid must be finite and non-negative, got {bid}"
                )));
            }
        }
        self.policy.validate()?;
        Ok(())
    }
}

/// What happened to one tenant's job.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TenantOutcome {
    /// Tenant name.
    pub tenant: String,
    /// Arrival hour on the fleet clock (mid-run submissions are clamped to
    /// the submission hour).
    pub arrival_hours: f64,
    /// `true` when the job was admitted (a plan existed under the residual
    /// capacity at arrival).
    pub admitted: bool,
    /// Why admission failed, when it did.
    pub rejection: Option<String>,
    /// The plan the job was admitted under.
    pub plan: Option<ExecutionPlan>,
    /// Planning effort at admission.
    pub planning: Option<PlanningReport>,
    /// The measured execution (tenant-relative hours; the tenant's bill is
    /// `execution.cost_breakdown`). `None` when the job was rejected at
    /// admission; for a job that failed mid-run (`failure` set) this holds
    /// the *partial* bill accrued up to the abort.
    pub execution: Option<conductor_mapreduce::ExecutionReport>,
    /// Why the admitted job failed to finish, when it did.
    pub failure: Option<String>,
    /// Fleet-clock hours at which the monitor re-planned this job.
    pub replanned_at_hours: Vec<f64>,
    /// Fleet-clock hours at which the spot market revoked nodes from this
    /// job (one entry per revocation event that killed at least one node).
    pub revoked_at_hours: Vec<f64>,
    /// Fleet-clock hour at which the job (including its result download)
    /// completed.
    pub finished_at_hours: Option<f64>,
    /// For retry attempts, the root submission this attempt descends
    /// from; `None` for original submissions.
    #[serde(default)]
    pub retry_of: Option<usize>,
    /// Which attempt this outcome records: `0` for the original run,
    /// `n` for the n-th retry.
    #[serde(default)]
    pub attempt: usize,
    /// `true` when this (final) attempt exhausted the retry budget and
    /// landed in the dead-letter queue.
    #[serde(default)]
    pub dead_lettered: bool,
}

impl TenantOutcome {
    fn pending(tenant: String, arrival_hours: f64) -> Self {
        Self {
            tenant,
            arrival_hours,
            admitted: false,
            rejection: None,
            plan: None,
            planning: None,
            execution: None,
            failure: None,
            replanned_at_hours: Vec::new(),
            revoked_at_hours: Vec::new(),
            finished_at_hours: None,
            retry_of: None,
            attempt: 0,
            dead_lettered: false,
        }
    }

    /// Which terminal (or snapshot) class this outcome falls in.
    pub fn outcome_class(&self) -> OutcomeClass {
        if self.dead_lettered {
            OutcomeClass::DeadLettered
        } else if !self.admitted {
            OutcomeClass::Rejected
        } else if self.failure.is_some() {
            OutcomeClass::Failed
        } else if self.execution.is_some() {
            OutcomeClass::Completed
        } else {
            OutcomeClass::Running
        }
    }
}

/// Coarse outcome classes for [`FleetReport::tenants_by_outcome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutcomeClass {
    /// Never admitted: no feasible plan, invalid deployment, or cancelled
    /// before arrival.
    Rejected,
    /// Admitted and ran to completion.
    Completed,
    /// Admitted but aborted mid-run (stuck, over the hours cap, or
    /// cancelled); carries a partial bill.
    Failed,
    /// Admitted and still running — only seen in mid-run
    /// [`Fleet::report`] snapshots, never in a drained fleet.
    Running,
    /// The final attempt of a tenant that exhausted its retry budget
    /// (see [`crate::policy::RetryPolicy`]); also in
    /// [`Fleet::dead_letters`].
    DeadLettered,
}

/// The fleet-wide result of one service run (or a [`Fleet::report`]
/// snapshot).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetReport {
    /// Per-tenant outcomes, in submission order.
    pub tenants: Vec<TenantOutcome>,
    /// Name → index into [`tenants`](Self::tenants) (first occurrence
    /// wins, matching the old linear scan). Built by
    /// [`from_outcomes`](Self::from_outcomes); hand-built reports may
    /// leave it empty — [`tenant`](Self::tenant) falls back to a scan.
    #[serde(default)]
    pub tenant_index: BTreeMap<String, usize>,
    /// Sum of all tenant bills (USD), including partial bills of jobs
    /// that failed mid-run.
    pub fleet_cost: f64,
    /// The provider-side roll-up of every tenant's cost breakdown.
    pub fleet_breakdown: CostBreakdown,
    /// Fleet-clock hour at which the last job completed.
    pub makespan_hours: f64,
    /// Jobs admitted.
    pub jobs_admitted: usize,
    /// Jobs that ran to completion.
    pub jobs_completed: usize,
    /// Completed jobs that met their deadline.
    pub deadlines_met: usize,
    /// Retry attempts issued (outcomes with `attempt > 0`).
    #[serde(default)]
    pub retries: usize,
    /// Tenants whose final attempt exhausted the retry budget.
    #[serde(default)]
    pub dead_lettered: usize,
    /// Fleet hours the spot-market circuit breaker spent open. Filled by
    /// [`Fleet::report`]; zero for hand-built reports.
    #[serde(default)]
    pub breaker_open_hours: f64,
    /// Admissions served from the plan cache (shape reused, certified
    /// against a fresh root LP bound; no branch & bound). Filled by
    /// [`Fleet::report`]; zero for hand-built reports or when
    /// [`FleetConfig::plan_cache`] is off.
    #[serde(default)]
    pub plan_cache_hits: usize,
    /// Plan-cache probes that fell through to a full solve.
    #[serde(default)]
    pub plan_cache_misses: usize,
}

impl FleetReport {
    /// Builds the report (aggregates + name index) from per-tenant
    /// outcomes in submission order.
    pub fn from_outcomes(tenants: Vec<TenantOutcome>) -> Self {
        let mut fleet_breakdown = CostBreakdown::default();
        let mut fleet_cost = 0.0;
        let mut makespan: f64 = 0.0;
        let mut completed = 0;
        let mut deadlines_met = 0;
        for o in &tenants {
            if let Some(exec) = &o.execution {
                // Aborted jobs carry a partial bill: real spend either way.
                fleet_cost += exec.total_cost;
                fleet_breakdown.absorb(&exec.cost_breakdown);
                if o.failure.is_none() {
                    completed += 1;
                    if exec.met_deadline == Some(true) {
                        deadlines_met += 1;
                    }
                }
            }
            if let Some(t) = o.finished_at_hours {
                makespan = makespan.max(t);
            }
        }
        let jobs_admitted = tenants.iter().filter(|o| o.admitted).count();
        let retries = tenants.iter().filter(|o| o.attempt > 0).count();
        let dead_lettered = tenants.iter().filter(|o| o.dead_lettered).count();
        let mut tenant_index = BTreeMap::new();
        for (i, t) in tenants.iter().enumerate() {
            tenant_index.entry(t.tenant.clone()).or_insert(i);
        }
        Self {
            tenants,
            tenant_index,
            fleet_cost,
            fleet_breakdown,
            makespan_hours: makespan,
            jobs_admitted,
            jobs_completed: completed,
            deadlines_met,
            retries,
            dead_lettered,
            breaker_open_hours: 0.0,
            plan_cache_hits: 0,
            plan_cache_misses: 0,
        }
    }

    /// The outcome for a tenant by name — an index lookup, not the old
    /// O(n) scan. Hand-built reports without an index still resolve via
    /// the scan fallback.
    pub fn tenant(&self, name: &str) -> Option<&TenantOutcome> {
        match self.tenant_index.get(name) {
            Some(&i) if self.tenants.get(i).is_some_and(|t| t.tenant == name) => {
                self.tenants.get(i)
            }
            _ => self.tenants.iter().find(|t| t.tenant == name),
        }
    }

    /// The tenants in a given outcome class, in submission order.
    pub fn tenants_by_outcome(&self, class: OutcomeClass) -> impl Iterator<Item = &TenantOutcome> {
        self.tenants
            .iter()
            .filter(move |t| t.outcome_class() == class)
    }
}

/// A typed fleet lifecycle event, delivered to [`FleetObserver`]s and the
/// [`Fleet::events`] log in deterministic clock order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FleetEvent {
    /// A job entered the session (not yet admitted; its arrival event is
    /// pending on the clock).
    Submitted {
        /// The submitted job.
        tenant: TenantId,
        /// Fleet hour of the submission itself (events are emitted in
        /// non-decreasing `at_hours` order).
        at_hours: f64,
        /// Effective hour the arrival event will fire (≥ `at_hours`).
        arrival_hours: f64,
        /// The full request, making the log entry self-describing:
        /// [`Fleet::replay`] re-drives the submission from this payload
        /// alone, no side-channel request list required.
        request: FleetJobRequest,
    },
    /// Admission planning succeeded; the job's execution process is live.
    Admitted {
        /// The admitted job.
        tenant: TenantId,
        /// Admission hour.
        at_hours: f64,
        /// The plan-cache key the admission was served from, when the
        /// fast path decided (`None` for full branch & bound solves and
        /// in shadow mode, which never *uses* the cache).
        cache_key: Option<PlanCacheKey>,
    },
    /// The plan the tenant was admitted under.
    Planned {
        /// The planned job.
        tenant: TenantId,
        /// Planning hour (same instant as admission).
        at_hours: f64,
        /// The plan's expected cost in USD.
        expected_cost: f64,
        /// The plan's expected completion, in hours after arrival.
        expected_completion_hours: f64,
    },
    /// Admission failed: no feasible plan under the residual capacity (or
    /// the deployment was invalid).
    Rejected {
        /// The rejected job.
        tenant: TenantId,
        /// Rejection hour.
        at_hours: f64,
        /// Why admission failed.
        reason: String,
    },
    /// The monitor re-planned the job in place and spliced the new node
    /// schedule into the live deployment.
    Replanned {
        /// The re-planned job.
        tenant: TenantId,
        /// Monitor-tick hour of the re-plan.
        at_hours: f64,
    },
    /// A revocation sweep terminated this job's cloud nodes (spot price
    /// above the job's bid).
    Revoked {
        /// The victim.
        tenant: TenantId,
        /// The out-bid hour.
        at_hours: f64,
        /// Nodes terminated by this sweep.
        nodes_killed: usize,
    },
    /// The execution re-raised its last cloud allocation to finish
    /// stragglers the schedule's ramp-down would have stranded.
    StragglerExtended {
        /// The extended job.
        tenant: TenantId,
        /// Hour of the extension.
        at_hours: f64,
    },
    /// The job (including its result download) completed.
    Completed {
        /// The finished job.
        tenant: TenantId,
        /// Completion hour on the fleet clock.
        at_hours: f64,
        /// Deadline verdict (`None` when no deadline was configured).
        met_deadline: Option<bool>,
    },
    /// A terminal job missed its configured deadline (emitted alongside
    /// [`Completed`](Self::Completed) or [`Failed`](Self::Failed)).
    DeadlineMissed {
        /// The late job.
        tenant: TenantId,
        /// Hour the verdict became final.
        at_hours: f64,
    },
    /// The client cancelled the job (before arrival, or mid-run with a
    /// partial bill).
    Cancelled {
        /// The cancelled job.
        tenant: TenantId,
        /// Cancellation hour.
        at_hours: f64,
    },
    /// The admitted job failed to finish (stuck, or over its hours cap).
    Failed {
        /// The failed job.
        tenant: TenantId,
        /// Hour of the abort.
        at_hours: f64,
        /// Why it failed.
        reason: String,
    },
    /// The fault plan injected a fault into a running job.
    FaultInjected {
        /// The victim.
        tenant: TenantId,
        /// The fault hour.
        at_hours: f64,
        /// What the fault did.
        kind: FaultKind,
        /// Cloud nodes terminated (node crashes only; zero for task
        /// failures).
        nodes_killed: usize,
        /// The fault's pre-drawn victim-selection salt (see
        /// [`crate::policy::FaultEvent::salt`]), so the log records the
        /// complete draw that picked this victim.
        salt: u64,
    },
    /// The retry policy re-submitted a failed (or late) tenant as a
    /// fresh arrival.
    Retried {
        /// The new attempt's tenant handle.
        tenant: TenantId,
        /// The root submission the attempt descends from.
        of: TenantId,
        /// Attempt number (1 = first retry).
        attempt: usize,
        /// Hour the retry was issued.
        at_hours: f64,
        /// Hour the retry's arrival will fire (issue hour + backoff).
        arrival_hours: f64,
    },
    /// A tenant exhausted its retry budget and landed in the
    /// dead-letter queue ([`Fleet::dead_letters`]).
    DeadLettered {
        /// The final attempt's tenant handle.
        tenant: TenantId,
        /// Hour the budget ran out.
        at_hours: f64,
        /// Attempts consumed, including the original run.
        attempts: usize,
        /// The final attempt's failure (or rejection) reason.
        reason: String,
    },
    /// The failure-rate gate crossed its pause threshold: new arrivals
    /// are refused until the rate recovers.
    AdmissionPaused {
        /// The crossing hour.
        at_hours: f64,
        /// Failure fraction of the window at the crossing.
        failure_fraction: f64,
    },
    /// The failure-rate gate recovered: arrivals are admitted again.
    AdmissionResumed {
        /// The recovery hour.
        at_hours: f64,
        /// Failure fraction of the window at the recovery.
        failure_fraction: f64,
    },
    /// The spot-market circuit breaker opened (or reopened after a
    /// failed probation): planning stops acquiring spot.
    BreakerOpened {
        /// The opening hour.
        at_hours: f64,
        /// Revocation strikes inside the sliding window.
        strikes: usize,
    },
    /// The breaker half-opened after its clean-hour streak: spot is
    /// bought again on probation.
    BreakerHalfOpen {
        /// The probation hour.
        at_hours: f64,
    },
    /// The breaker closed: the market is trusted again.
    BreakerClosed {
        /// The closing hour.
        at_hours: f64,
    },
    /// A tenant admitted while the breaker was open bought on-demand
    /// capacity instead of waiting out the spot market
    /// ([`FallbackTier::OnDemand`]).
    FallbackEngaged {
        /// The tenant paying the ceiling.
        tenant: TenantId,
        /// The admission hour.
        at_hours: f64,
    },
    /// A queued tenant left this session via [`Fleet::migrate_out`] — a
    /// sharded runtime moved it to another shard before its arrival
    /// fired. The submission is recorded as terminal here (rejection
    /// "migrated to another shard"); the receiving shard logs its own
    /// [`Submitted`](Self::Submitted) with the carried request.
    MigratedOut {
        /// The migrated tenant's handle *in this session*.
        tenant: TenantId,
        /// Hour of the migration (a rebalance barrier).
        at_hours: f64,
    },
    /// The monitor-tick grid was aligned with a fleet-level arrival
    /// observed outside this session ([`Fleet::align_monitor`]): a
    /// sharded runtime broadcasts every arrival so all shards tick on
    /// the same grid regardless of which shard the tenant landed on.
    MonitorAligned {
        /// Hour the alignment was applied (the submission hour).
        at_hours: f64,
        /// The foreign arrival's effective hour.
        arrival_hours: f64,
    },
}

impl FleetEvent {
    /// The tenant this event is about; `None` for fleet-wide events
    /// (admission gate and breaker transitions).
    pub fn tenant(&self) -> Option<TenantId> {
        match self {
            FleetEvent::Submitted { tenant, .. }
            | FleetEvent::Admitted { tenant, .. }
            | FleetEvent::Planned { tenant, .. }
            | FleetEvent::Rejected { tenant, .. }
            | FleetEvent::Replanned { tenant, .. }
            | FleetEvent::Revoked { tenant, .. }
            | FleetEvent::StragglerExtended { tenant, .. }
            | FleetEvent::Completed { tenant, .. }
            | FleetEvent::DeadlineMissed { tenant, .. }
            | FleetEvent::Cancelled { tenant, .. }
            | FleetEvent::Failed { tenant, .. }
            | FleetEvent::FaultInjected { tenant, .. }
            | FleetEvent::Retried { tenant, .. }
            | FleetEvent::DeadLettered { tenant, .. }
            | FleetEvent::FallbackEngaged { tenant, .. }
            | FleetEvent::MigratedOut { tenant, .. } => Some(*tenant),
            FleetEvent::AdmissionPaused { .. }
            | FleetEvent::AdmissionResumed { .. }
            | FleetEvent::BreakerOpened { .. }
            | FleetEvent::BreakerHalfOpen { .. }
            | FleetEvent::BreakerClosed { .. }
            | FleetEvent::MonitorAligned { .. } => None,
        }
    }

    /// The fleet-clock hour the event happened at.
    pub fn at_hours(&self) -> f64 {
        match self {
            FleetEvent::Submitted { at_hours, .. }
            | FleetEvent::Admitted { at_hours, .. }
            | FleetEvent::Planned { at_hours, .. }
            | FleetEvent::Rejected { at_hours, .. }
            | FleetEvent::Replanned { at_hours, .. }
            | FleetEvent::Revoked { at_hours, .. }
            | FleetEvent::StragglerExtended { at_hours, .. }
            | FleetEvent::Completed { at_hours, .. }
            | FleetEvent::DeadlineMissed { at_hours, .. }
            | FleetEvent::Cancelled { at_hours, .. }
            | FleetEvent::Failed { at_hours, .. }
            | FleetEvent::FaultInjected { at_hours, .. }
            | FleetEvent::Retried { at_hours, .. }
            | FleetEvent::DeadLettered { at_hours, .. }
            | FleetEvent::AdmissionPaused { at_hours, .. }
            | FleetEvent::AdmissionResumed { at_hours, .. }
            | FleetEvent::BreakerOpened { at_hours, .. }
            | FleetEvent::BreakerHalfOpen { at_hours, .. }
            | FleetEvent::BreakerClosed { at_hours, .. }
            | FleetEvent::FallbackEngaged { at_hours, .. }
            | FleetEvent::MigratedOut { at_hours, .. }
            | FleetEvent::MonitorAligned { at_hours, .. } => *at_hours,
        }
    }
}

/// A registered fleet-event sink. Events arrive in deterministic clock
/// order, exactly as they are appended to [`Fleet::events`].
///
/// Any `FnMut(&FleetEvent)` closure is an observer:
///
/// ```
/// use conductor_core::{FleetEvent, FleetObserver};
/// let mut seen = 0usize;
/// let mut obs = |_e: &FleetEvent| seen += 1;
/// FleetObserver::on_event(&mut obs, &FleetEvent::Cancelled {
///     tenant: conductor_core::TenantId(0),
///     at_hours: 0.0,
/// });
/// assert_eq!(seen, 1);
/// ```
pub trait FleetObserver {
    /// Called for every emitted event, in clock order.
    fn on_event(&mut self, event: &FleetEvent);
}

impl<F: FnMut(&FleetEvent)> FleetObserver for F {
    fn on_event(&mut self, event: &FleetEvent) {
        self(event)
    }
}

/// Lifecycle state of one tenant, for [`Fleet::status`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantState {
    /// Submitted; the arrival event has not fired yet.
    Queued,
    /// Arrival fired but admission failed (or the job was cancelled before
    /// arrival).
    Rejected,
    /// Cancelled by the client.
    Cancelled,
    /// Admitted and executing.
    Running,
    /// Ran to completion (report available in the outcome).
    Completed,
    /// Admitted but aborted mid-run.
    Failed,
}

/// A live snapshot of one tenant's job, assembled by [`Fleet::status`]
/// from the outcome record and (for running jobs) the execution process.
#[derive(Debug, Clone)]
pub struct TenantStatus {
    /// Tenant name.
    pub tenant: String,
    /// Lifecycle state at the snapshot hour.
    pub state: TenantState,
    /// Effective arrival hour on the fleet clock.
    pub arrival_hours: f64,
    /// The plan currently in force (admission plan; re-plans replace the
    /// node schedule inside the execution, not this record).
    pub plan: Option<ExecutionPlan>,
    /// Execution progress at the snapshot hour (running jobs only).
    pub progress: Option<ExecutionProgress>,
    /// Charges recorded so far (open rental sessions settle when they
    /// close); for terminal jobs, the final bill.
    pub bill_so_far: f64,
    /// Fleet-clock hours of monitor re-plans so far.
    pub replanned_at_hours: Vec<f64>,
    /// Fleet-clock hours of revocation hits so far.
    pub revoked_at_hours: Vec<f64>,
    /// Completion hour, once finished.
    pub finished_at_hours: Option<f64>,
    /// Rejection reason, when rejected.
    pub rejection: Option<String>,
    /// Failure reason, when failed (including client cancellation).
    pub failure: Option<String>,
}

/// Events on the fleet clock (internal wakeups; the public, typed stream
/// is [`FleetEvent`]). Serializable because a [`FleetSnapshot`] carries
/// the pending heap verbatim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum ClockEvent {
    /// Submission `i` arrives and asks for admission.
    Arrival(usize),
    /// Wakeup for an admitted job's execution process.
    Job(ProcessId),
    /// Revocation sweep: the spot price may have risen above some running
    /// job's bid at this hour.
    Revocation,
    /// Injected fault `i` of the configured
    /// [`FaultPlan`](crate::policy::FaultPlan) fires.
    Fault(usize),
    /// Hourly circuit-breaker probe of the trace hour just elapsed; only
    /// scheduled while the breaker is not closed.
    BreakerProbe,
    /// Periodic progress check over every running job; the payload is the
    /// chain generation (a tick from a superseded chain is ignored).
    MonitorTick(u64),
}

impl ClockEvent {
    /// Arrivals settle first at a tick, then job state, then the market
    /// revokes, then faults strike, then the breaker probes, then the
    /// monitor observes (so it never sees a half-applied hour).
    /// Revocations deliberately order *after* job wakeups at the same
    /// instant: a task that finishes exactly at the out-bid hour
    /// completed its hour and retires normally; only the survivors lose
    /// their nodes. Faults follow the same rule, and breaker probes
    /// order after both so a probe sees the strikes of its own hour.
    fn class(self) -> u8 {
        match self {
            ClockEvent::Arrival(_) => 0,
            ClockEvent::Job(_) => 1,
            ClockEvent::Revocation => 2,
            ClockEvent::Fault(_) => 3,
            ClockEvent::BreakerProbe => 4,
            ClockEvent::MonitorTick(_) => 9,
        }
    }
}

/// How a tenant reached a terminal state, for the failure-policy hook
/// (`Fleet::on_terminal`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TerminalKind {
    /// Completed within its deadline (or with no deadline configured).
    CompletedOnTime,
    /// Completed, but past the deadline.
    CompletedLate,
    /// Aborted mid-run: injected fault, over the hours cap, stuck, or
    /// stalled at the final drain.
    Failed,
    /// Refused at arrival (no feasible plan, or the admission gate was
    /// paused).
    Rejected,
}

/// A successful admission: the job's execution process, whether the
/// breaker's on-demand fallback tier was engaged, the plan-cache key the
/// plan was served from (fast path only), and the initial event schedule
/// to inject into the fleet clock.
type Admission = (
    ActiveJob,
    bool,
    Option<PlanCacheKey>,
    Vec<(f64, conductor_mapreduce::JobEvent)>,
);

/// One admitted, still-running job.
struct ActiveJob {
    request_idx: usize,
    start: f64,
    exec: JobExecution<'static>,
    spec: JobSpec,
    goal: Goal,
    /// The request's per-tenant bid override (`None` = the fleet bid), for
    /// revocation checks and re-plan forecasts.
    tenant_bid: Option<f64>,
    /// `(fleet_hour, cumulative expected map GB)` checkpoints the monitor
    /// compares real progress against; rebuilt on every re-plan.
    progress_model: Vec<(f64, f64)>,
    /// Set when a revocation killed nodes out from under this job; the
    /// next monitor tick re-plans it against the post-storm residual
    /// without waiting for the progress shortfall to accumulate.
    storm_hit: bool,
    /// Set when the job was admitted on the breaker's on-demand fallback
    /// tier: its sessions are priced on-demand and revocation sweeps
    /// skip it.
    fallback_on_demand: bool,
}

/// Cached, query-ready view of one active job's node schedule: every step
/// offset (for sample-point harvesting) plus the steps grouped per
/// instance type and stable-sorted by time. The stable sort keeps
/// schedule order among exactly-equal `from_hour`s, which is the element
/// `nodes_at`'s `max_by` would return — so a sweep over these lists
/// reproduces the full rescan bit for bit.
struct JobScheduleView {
    /// [`JobExecution::schedule_epoch`] the view was built at; a mismatch
    /// means the schedule mutated (splice, straggler extension,
    /// revocation shift) and the view must be rebuilt.
    epoch: u64,
    /// The job's fleet start hour (offsets below are relative to it).
    start: f64,
    /// Every step offset in schedule order, all instance types.
    offsets: Vec<f64>,
    /// Instance type → stable time-sorted `(from_hour, nodes)` steps.
    by_type: BTreeMap<String, Vec<(f64, usize)>>,
}

impl JobScheduleView {
    fn build(job: &ActiveJob) -> Self {
        let mut by_type: BTreeMap<String, Vec<(f64, usize)>> = BTreeMap::new();
        let mut offsets = Vec::with_capacity(job.exec.node_schedule().len());
        for step in job.exec.node_schedule() {
            offsets.push(step.from_hour);
            by_type
                .entry(step.instance_type.clone())
                .or_default()
                .push((step.from_hour, step.nodes));
        }
        for steps in by_type.values_mut() {
            // `sort_by` is stable: exact `from_hour` ties keep schedule
            // order, matching `max_by`'s last-of-equals.
            steps.sort_by(|a, b| a.0.total_cmp(&b.0));
        }
        JobScheduleView {
            epoch: job.exec.schedule_epoch(),
            start: job.start,
            offsets,
            by_type,
        }
    }
}

/// Incrementally maintained index over the active jobs' node commitments,
/// backing [`Fleet::residual_pool`]. Admission, re-planning, completion,
/// revocation and cancellation each either change the `active` key set or
/// bump a job's schedule epoch, so [`Self::sync`] catches every mutation
/// without the event sites knowing the index exists.
#[derive(Default)]
struct ResidualIndex {
    jobs: BTreeMap<ProcessId, JobScheduleView>,
}

impl ResidualIndex {
    /// Brings the cache in line with the live job table: drops entries for
    /// departed processes, (re)builds entries whose schedule epoch moved.
    fn sync(&mut self, active: &BTreeMap<ProcessId, ActiveJob>) {
        self.jobs.retain(|pid, _| active.contains_key(pid));
        for (pid, job) in active {
            let fresh = self
                .jobs
                .get(pid)
                .is_some_and(|v| v.epoch == job.exec.schedule_epoch() && v.start == job.start);
            if !fresh {
                self.jobs.insert(*pid, JobScheduleView::build(job));
            }
        }
    }

    /// The residual pool at `at`: per capped resource, the cap minus the
    /// peak committed node count over `at` and every strictly-future step
    /// time. One merged sweep per resource — each schedule step is
    /// examined O(1) times — instead of re-evaluating every job's whole
    /// schedule at every sample point.
    fn residual(&self, base: &ResourcePool, at: f64, exclude: Option<ProcessId>) -> ResourcePool {
        let mut pool = base.clone();
        // Sample points: `at` plus every future schedule step of any
        // included job, deduplicated within TIME_EPSILON (coincident
        // instants sample identical commitments).
        let mut samples: Vec<f64> = vec![at];
        for (pid, view) in &self.jobs {
            if Some(*pid) == exclude {
                continue;
            }
            for &off in &view.offsets {
                let abs = view.start + off;
                if abs > at + TIME_EPSILON {
                    samples.push(abs);
                }
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        samples.dedup_by(|next, kept| (*next - *kept).abs() <= TIME_EPSILON);

        for c in &mut pool.compute {
            let Some(cap) = c.max_nodes else {
                continue; // uncapped resources have no contention
            };
            let mut slots: Vec<(&JobScheduleView, &[(f64, usize)])> = Vec::new();
            for (pid, view) in &self.jobs {
                if Some(*pid) == exclude {
                    continue;
                }
                if let Some(steps) = view.by_type.get(&c.name) {
                    slots.push((view, steps));
                }
            }
            // Merge every step into one list ordered by approximate
            // absolute time. `start + from_hour` rounds, so due-ness is
            // re-checked below with the exact per-job comparison
            // `nodes_at` uses; the 2·TIME_EPSILON pop margin dominates
            // any rounding in the merge key, so no due step is missed.
            let mut events: Vec<(f64, usize, usize)> = Vec::new();
            for (si, (view, steps)) in slots.iter().enumerate() {
                for (k, (off, _)) in steps.iter().enumerate() {
                    events.push((view.start + off, si, k));
                }
            }
            events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));

            // `applied[si]` / `cur[si]`: index and node count of the last
            // step that fired for slot `si` (a later step supersedes an
            // earlier one, exactly like `nodes_at`'s max-by-time).
            let mut applied: Vec<usize> = vec![usize::MAX; slots.len()];
            let mut cur: Vec<usize> = vec![0; slots.len()];
            let mut committed: usize = 0;
            let mut peak: usize = 0;
            let mut next = 0usize;
            let mut deferred: Vec<(f64, usize, usize)> = Vec::new();
            for &p in &samples {
                // Re-examine steps deferred at an earlier sample, then
                // pull in newly reachable ones; a step only fires when
                // the exact `from_hour <= (p - start) + 1e-9` test that
                // `nodes_at` performs passes.
                let mut pending = std::mem::take(&mut deferred);
                while next < events.len() && events[next].0 <= p + 2.0 * TIME_EPSILON {
                    pending.push(events[next]);
                    next += 1;
                }
                for ev in pending {
                    let (_, si, k) = ev;
                    let (view, steps) = slots[si];
                    if steps[k].0 <= (p - view.start) + 1e-9 {
                        if applied[si] == usize::MAX || k > applied[si] {
                            committed = committed + steps[k].1 - cur[si];
                            cur[si] = steps[k].1;
                            applied[si] = k;
                        }
                    } else {
                        deferred.push(ev);
                    }
                }
                peak = peak.max(committed);
            }
            c.max_nodes = Some(cap.saturating_sub(peak));
        }
        pool
    }
}

/// Key of the admission plan cache: the planning horizon plus the exact
/// bit patterns of the job-spec fields that shape the model. Prices,
/// residual caps and bids are deliberately *not* part of the key — a
/// candidate entry is re-priced under the current forecast and certified
/// against the current model's root LP bound instead, so look-alike
/// arrivals share plans across market drift and capacity churn.
///
/// Public because cache-served admissions record their key on
/// [`FleetEvent::Admitted`], making the event log self-describing.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PlanCacheKey {
    /// Planning horizon in intervals.
    pub horizon: usize,
    /// The spec's reduce-task count.
    pub reduce_tasks: usize,
    /// Exact bit patterns of the model-shaping spec floats: `input_gb`,
    /// `split_mb`, `map_output_ratio`, `reduce_output_ratio`,
    /// `reference_throughput_gbph`.
    pub spec_bits: [u64; 5],
}

impl PlanCacheKey {
    fn new(spec: &JobSpec, horizon: usize) -> Self {
        Self {
            horizon,
            reduce_tasks: spec.reduce_tasks,
            spec_bits: [
                spec.input_gb.to_bits(),
                spec.split_mb.to_bits(),
                spec.map_output_ratio.to_bits(),
                spec.reduce_output_ratio.to_bits(),
                spec.reference_throughput_gbph.to_bits(),
            ],
        }
    }
}

/// One cached admission plan: the shape, the objective it solved to, and
/// the resolved per-interval price vector it solved under. The model's
/// objective is linear in prices with node counts as coefficients, so
/// `cost + Σ nodes·(p_new − p_old)·dt` is *exactly* the current model's
/// objective for this shape — no approximation in the re-pricing.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PlanCacheEntry {
    plan: ExecutionPlan,
    /// Objective the shape solved to under `prices`.
    cost: f64,
    /// `cost / root LP bound` of the solve that produced this entry — the
    /// integrality-plus-termination quality a *fresh* branch & bound
    /// achieved on this key. These models carry a large, key-specific
    /// integrality gap (the fluid relaxation rents fractional nodes), so
    /// absolute closeness to the root bound is the wrong bar; closeness
    /// relative to what fresh solves of the same key actually attain is
    /// the certifiable one.
    ratio: f64,
    /// Resolved per-interval price per compute type at solve time
    /// (forecast price, or the type's on-demand hourly price).
    prices: BTreeMap<String, Vec<f64>>,
    /// Peak per-interval node count per type — the feasibility screen
    /// against the current residual caps (the model bounds `nodes[c][t]`
    /// by the cap in every interval).
    peaks: BTreeMap<String, usize>,
}

/// How many shapes each key retains (oldest evicted first, so the pool
/// tracks the price regimes arrivals actually solve under).
const PLAN_CACHE_POOL: usize = 8;

/// How many recent fresh-solve quality ratios each key remembers for the
/// certification bar.
const PLAN_CACHE_RATIO_WINDOW: usize = 8;

#[derive(Debug, Clone, Serialize, Deserialize)]
struct PlanCache {
    entries: BTreeMap<PlanCacheKey, Vec<PlanCacheEntry>>,
    /// Rolling window of `cost / root bound` ratios fresh solves achieved
    /// per key. The *median* of this window is what a typical branch &
    /// bound delivers on this key — the bar a reused shape must meet.
    fresh_ratios: BTreeMap<PlanCacheKey, Vec<f64>>,
    /// Root bound of the probe that preceded the current admission's
    /// solve — consumed by the insert that follows a miss, so the entry
    /// can record its fresh-solve quality ratio.
    last_bound: Option<f64>,
    hits: usize,
    misses: usize,
    /// Shadow-mode counters (see [`FleetConfig::plan_cache_shadow`]):
    /// would-be hits compared against the fresh solve that actually
    /// decided, how many re-priced *worse* than the fresh cost by more
    /// than the solver's relative gap, and the worst relative excess.
    shadow_checked: usize,
    shadow_worse: usize,
    shadow_excess_max: f64,
    shadow_excess_sum: f64,
}

impl Default for PlanCache {
    fn default() -> Self {
        Self {
            entries: BTreeMap::new(),
            fresh_ratios: BTreeMap::new(),
            last_bound: None,
            hits: 0,
            misses: 0,
            shadow_checked: 0,
            shadow_worse: 0,
            // −∞ so a final negative maximum is visible: it means every
            // shadow-compared hit re-priced *cheaper* than its fresh solve.
            shadow_excess_max: f64::NEG_INFINITY,
            shadow_excess_sum: 0.0,
        }
    }
}

impl PlanCache {
    /// Median fresh-solve quality ratio observed for `key` (`None` until a
    /// fresh solve has been recorded).
    fn typical_ratio(&self, key: &PlanCacheKey) -> Option<f64> {
        let window = self.fresh_ratios.get(key)?;
        if window.is_empty() {
            return None;
        }
        let mut sorted = window.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Some(sorted[sorted.len() / 2])
    }
}

/// The per-interval price per compute type the model objective would use
/// under `forecast`: the forecast price when one exists for the type and
/// interval, else the type's on-demand hourly price (mirrors the model's
/// price resolution exactly).
fn resolved_prices(
    pool: &ResourcePool,
    forecast: &BTreeMap<String, Vec<f64>>,
    horizon: usize,
) -> BTreeMap<String, Vec<f64>> {
    let mut out = BTreeMap::new();
    for c in &pool.compute {
        let prices: Vec<f64> = (0..horizon)
            .map(|t| {
                forecast
                    .get(&c.name)
                    .and_then(|f| f.get(t))
                    .copied()
                    .unwrap_or(c.hourly_price)
            })
            .collect();
        out.insert(c.name.clone(), prices);
    }
    out
}

/// The entry's objective under today's prices (`None` if a node type in
/// the shape has no price row — cannot happen for entries built from the
/// same pool, but degrade to a miss rather than panic).
fn reprice_entry(entry: &PlanCacheEntry, prices_now: &BTreeMap<String, Vec<f64>>) -> Option<f64> {
    let dt = entry.plan.interval_hours;
    let mut cost = entry.cost;
    for (t, interval) in entry.plan.intervals.iter().enumerate() {
        for (ty, &n) in &interval.nodes {
            if n == 0 {
                continue;
            }
            let old = entry.prices.get(ty)?.get(t)?;
            let new = prices_now.get(ty)?.get(t)?;
            cost += n as f64 * (new - old) * dt;
        }
    }
    Some(cost)
}

/// Whether the shape fits the current residual capacity: every capped
/// compute type has room for the entry's peak allocation.
fn entry_fits(entry: &PlanCacheEntry, residual: &ResourcePool) -> bool {
    residual.compute.iter().all(|c| match c.max_nodes {
        Some(cap) => entry.peaks.get(&c.name).copied().unwrap_or(0) <= cap,
        None => true,
    })
}

/// A long-lived, incremental multi-tenant orchestration session — see the
/// [module docs](self) for the API tour and the determinism contract.
pub struct Fleet {
    catalog: Catalog,
    pool: ResourcePool,
    config: FleetConfig,

    sim: Simulator<ClockEvent>,
    registry: ProcessRegistry,
    active: BTreeMap<ProcessId, ActiveJob>,
    /// Submission `i`'s request, retained until its arrival fires.
    requests: Vec<FleetJobRequest>,
    outcomes: Vec<TenantOutcome>,
    /// Submission index → execution process, once admitted.
    tenant_pids: BTreeMap<usize, ProcessId>,
    cancelled: BTreeSet<usize>,
    /// Submitted arrivals whose event has not fired yet.
    arrivals_pending: usize,

    /// Earliest effective arrival ever submitted: the origin of the
    /// monitor-tick grid.
    monitor_anchor: Option<f64>,
    /// Generation of the live tick chain; a popped tick from an older
    /// generation was superseded and is ignored.
    monitor_gen: u64,
    /// Time of the currently scheduled tick, when the chain is live.
    monitor_next: f64,
    monitor_live: bool,
    /// `true` once any tick fired (the grid can no longer be re-anchored).
    monitor_fired: bool,

    /// Trace hours with a scheduled revocation sweep (dedup across the
    /// fleet bid and per-tenant bids).
    revocation_hours_scheduled: BTreeSet<usize>,

    /// Tenants that exhausted their retry budget, in dead-letter order.
    dead_letters: Vec<DeadLetter>,
    /// Runtime state of the admission gate, when configured.
    failure_window: Option<FailureWindow>,
    /// Runtime state of the spot-market circuit breaker, when configured
    /// alongside a market.
    breaker: Option<SpotBreaker>,
    /// `true` while a breaker-probe chain is scheduled (one at a time).
    probe_live: bool,

    /// Time of the last processed event batch (where stalled jobs are
    /// aborted when the heap drains).
    last_hour: f64,
    /// The fleet's logical "now": the max of every processed event time
    /// and every `step_until` bound.
    stepped_to: f64,

    events: Vec<FleetEvent>,
    observers: Vec<Box<dyn FleetObserver + Send>>,
    /// Write-ahead log tailing every emitted event (see
    /// [`attach_wal`](Self::attach_wal)); `None` when not tailing.
    wal: Option<WalWriter>,
    /// The write failure that detached the WAL, if one occurred.
    wal_error: Option<String>,
    /// Reusable batch buffer for `pop_due`.
    batch: Vec<ClockEvent>,
    /// Incremental view of active-job node commitments backing
    /// `residual_pool` (interior mutability: queries lazily refresh the
    /// cache but are logically reads).
    residual_index: RefCell<ResidualIndex>,
    /// Cross-solve skeleton/basis reuse for admission and re-plan solves:
    /// look-alike models drain through one factorization instead of each
    /// paying a cold two-phase fill.
    solve_ctx: SolveContext,
    /// Admission plan cache (inert unless [`FleetConfig::plan_cache`]).
    plan_cache: PlanCache,
    /// Separate context for shadow-mode probes, so validation probing
    /// never perturbs the basis chain of the real solves.
    shadow_ctx: SolveContext,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("now_hours", &self.stepped_to)
            .field("submitted", &self.outcomes.len())
            .field("active", &self.active.len())
            .field("arrivals_pending", &self.arrivals_pending)
            .field("events", &self.events.len())
            .finish()
    }
}

impl Fleet {
    /// Opens a session over a catalog, the fleet-wide resource pool and a
    /// validated [`FleetConfig`]. With a spot market configured, the
    /// trace's out-bid hours (at the fleet bid) are scheduled as
    /// revocation sweeps up front — first-class events on the shared
    /// clock, exactly as the batch driver always did.
    pub fn new(
        catalog: Catalog,
        pool: ResourcePool,
        config: FleetConfig,
    ) -> Result<Self, ConductorError> {
        pool.validate().map_err(ConductorError::InvalidInput)?;
        config.validate()?;
        let mut sim: Simulator<ClockEvent> = Simulator::new();
        let mut revocation_hours_scheduled = BTreeSet::new();
        // The trace-driven revocation schedule: one sweep per hour the spot
        // price sits above the fleet bid, shared by every tenant. These are
        // first-class events on the shared clock, not a post-hoc price
        // adjustment — a storm interrupts running executions mid-flight.
        if let Some(market) = &config.spot_market {
            let bid = config.spot_bid.unwrap_or(market.on_demand_price);
            for hour in market.revocation_hours(0, market.trace().len(), bid) {
                revocation_hours_scheduled.insert(hour);
                sim.schedule(
                    hour as f64,
                    ClockEvent::Revocation.class(),
                    ClockEvent::Revocation,
                );
            }
        }
        // The fault plan is materialized onto the clock up front, exactly
        // like the revocation schedule: seeded once, replayed bit for bit.
        if let Some(plan) = &config.policy.fault_plan {
            for (i, event) in plan.events.iter().enumerate() {
                sim.schedule(
                    event.at_hours,
                    ClockEvent::Fault(i).class(),
                    ClockEvent::Fault(i),
                );
            }
        }
        let failure_window = config.policy.failure_threshold.map(FailureWindow::new);
        let breaker = match (&config.spot_market, config.policy.circuit_breaker) {
            (Some(_), Some(breaker_config)) => Some(SpotBreaker::new(breaker_config)),
            _ => None, // without a market there is nothing to break
        };
        Ok(Self {
            catalog,
            pool,
            config,
            sim,
            registry: ProcessRegistry::new(),
            active: BTreeMap::new(),
            requests: Vec::new(),
            outcomes: Vec::new(),
            tenant_pids: BTreeMap::new(),
            cancelled: BTreeSet::new(),
            arrivals_pending: 0,
            monitor_anchor: None,
            monitor_gen: 0,
            monitor_next: 0.0,
            monitor_live: false,
            monitor_fired: false,
            revocation_hours_scheduled,
            dead_letters: Vec::new(),
            failure_window,
            breaker,
            probe_live: false,
            last_hour: 0.0,
            stepped_to: 0.0,
            events: Vec::new(),
            observers: Vec::new(),
            wal: None,
            wal_error: None,
            batch: Vec::new(),
            residual_index: RefCell::new(ResidualIndex::default()),
            solve_ctx: SolveContext::new(),
            plan_cache: PlanCache::default(),
            shadow_ctx: SolveContext::new(),
        })
    }

    /// The session configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The fleet-wide resource pool.
    pub fn pool(&self) -> &ResourcePool {
        &self.pool
    }

    /// The fleet's logical clock: the latest processed event time or
    /// `step_until` bound, whichever is later.
    pub fn now_hours(&self) -> f64 {
        self.stepped_to
    }

    /// Every [`FleetEvent`] emitted so far, in clock order.
    pub fn events(&self) -> &[FleetEvent] {
        &self.events
    }

    /// The events emitted at or after log position `from` — a poll-style
    /// subscription cursor (`let cur = fleet.events().len()` … step …
    /// `fleet.events_since(cur)`).
    pub fn events_since(&self, from: usize) -> &[FleetEvent] {
        &self.events[from.min(self.events.len())..]
    }

    /// Registers an observer; it receives every subsequent event in clock
    /// order. Closures work directly:
    /// `fleet.observe(Box::new(|e: &FleetEvent| println!("{e:?}")))`.
    /// Observers are `Send` so a whole session can move across threads
    /// (the sharded runtime steps shards on a scoped pool).
    pub fn observe(&mut self, observer: Box<dyn FleetObserver + Send>) {
        self.observers.push(observer);
    }

    /// Attaches a write-ahead log that *tails* the session: every
    /// [`FleetEvent`] emitted from this point on is appended (and
    /// flushed) as it happens, rather than post-hoc — so the log on disk
    /// is durable mid-run and a crash loses at most the entry being
    /// written (the torn tail [`crate::wal::WalReader::recover`]
    /// repairs). Events
    /// already emitted are *not* backfilled; to capture a complete log,
    /// attach before stepping or pre-write `events()` with
    /// [`WalWriter::log_all`] first.
    ///
    /// A write failure detaches the log (the session keeps running) and
    /// is surfaced via [`wal_error`](Self::wal_error).
    pub fn attach_wal(&mut self, wal: WalWriter) {
        self.wal = Some(wal);
        self.wal_error = None;
    }

    /// Detaches and returns the tailing WAL, if one is attached.
    pub fn detach_wal(&mut self) -> Option<WalWriter> {
        self.wal.take()
    }

    /// The write failure that detached the tailing WAL, if any.
    pub fn wal_error(&self) -> Option<&str> {
        self.wal_error.as_deref()
    }

    /// Submits a job to the session at any time — before stepping, or
    /// mid-run. The arrival hour is clamped to the current fleet hour
    /// (jobs cannot arrive in the simulated past); admission itself
    /// happens when the clock reaches the arrival, against the residual
    /// capacity *then*. Returns the tenant's handle.
    ///
    /// Fails with [`ConductorError::InvalidInput`] on non-finite or
    /// negative arrival hours or per-tenant bids — invalid values must
    /// never reach the event heap, where a NaN would silently corrupt its
    /// ordering.
    pub fn submit(&mut self, request: FleetJobRequest) -> Result<TenantId, ConductorError> {
        if !request.arrival_hours.is_finite() || request.arrival_hours < 0.0 {
            return Err(ConductorError::InvalidInput(format!(
                "tenant `{}` has invalid arrival hour {}",
                request.tenant, request.arrival_hours
            )));
        }
        if let Some(bid) = request.spot_bid {
            if !bid.is_finite() || bid < 0.0 {
                return Err(ConductorError::InvalidInput(format!(
                    "tenant `{}` has invalid spot bid {bid}",
                    request.tenant
                )));
            }
        }
        if let Some(retry) = &request.retry_override {
            retry.validate()?;
        }
        let idx = self.outcomes.len();
        let arrival = request.arrival_hours.max(self.stepped_to);
        self.outcomes
            .push(TenantOutcome::pending(request.tenant.clone(), arrival));
        // A per-tenant bid *below* the fleet bid has out-bid hours the
        // construction-time sweep schedule missed; add them (future hours
        // only — the current partial hour is already gated by the
        // session's own acquisition check). Fleet-bid submissions skip the
        // scan: their hours were all scheduled at construction.
        if let (Some(market), Some(bid)) = (&self.config.spot_market, request.spot_bid) {
            let from = self.stepped_to.ceil().max(0.0) as usize;
            for hour in market.revocation_hours(from, market.trace().len(), bid) {
                if self.revocation_hours_scheduled.insert(hour) {
                    self.sim.schedule(
                        hour as f64,
                        ClockEvent::Revocation.class(),
                        ClockEvent::Revocation,
                    );
                }
            }
        }
        self.requests.push(request.clone());
        self.sim.inject(
            arrival,
            ClockEvent::Arrival(idx).class(),
            ClockEvent::Arrival(idx),
        );
        self.arrivals_pending += 1;
        self.ensure_monitor_chain(arrival);
        let at = self.stepped_to;
        self.emit(FleetEvent::Submitted {
            tenant: TenantId(idx),
            at_hours: at,
            arrival_hours: arrival,
            request,
        });
        Ok(TenantId(idx))
    }

    /// Cancels a tenant's job. Before arrival, the submission is marked
    /// rejected ("cancelled before arrival"); mid-run, the execution is
    /// aborted at the current fleet hour and its *partial bill stays on
    /// the fleet bill* (the spend was real). Returns `Ok(true)` when the
    /// cancellation changed anything, `Ok(false)` for already-terminal
    /// tenants, and `InvalidInput` for unknown handles.
    pub fn cancel(&mut self, id: TenantId) -> Result<bool, ConductorError> {
        let idx = id.0;
        if idx >= self.outcomes.len() {
            return Err(ConductorError::InvalidInput(format!(
                "unknown tenant id {idx} (only {} submissions)",
                self.outcomes.len()
            )));
        }
        if self.cancelled.contains(&idx) {
            return Ok(false);
        }
        // Mid-run: abort the live execution, keep the partial bill.
        if let Some(pid) = self.tenant_pids.get(&idx).copied() {
            if let Some(job) = self.active.remove(&pid) {
                let now = self.stepped_to;
                let rel = (now - job.start).max(0.0);
                let o = &mut self.outcomes[idx];
                o.failure = Some(format!("cancelled by client at fleet hour {now:.2}"));
                o.execution = Some(job.exec.abort(rel));
                self.cancelled.insert(idx);
                self.emit(FleetEvent::Cancelled {
                    tenant: id,
                    at_hours: now,
                });
                return Ok(true);
            }
        }
        let o = &mut self.outcomes[idx];
        if o.admitted || o.execution.is_some() || o.rejection.is_some() {
            return Ok(false); // already terminal
        }
        o.rejection = Some("cancelled before arrival".into());
        self.cancelled.insert(idx);
        // The phantom arrival event stays in the heap (heaps don't support
        // removal) but no longer counts as pending work, so the monitor
        // chain can die instead of ticking until the cancelled hour;
        // `handle_arrival` skips its own decrement for cancelled entries.
        self.arrivals_pending -= 1;
        let at = self.stepped_to;
        self.emit(FleetEvent::Cancelled {
            tenant: id,
            at_hours: at,
        });
        Ok(true)
    }

    /// Removes a *queued* tenant (submitted, arrival not yet fired) from
    /// this session, returning its request with the arrival hour set to
    /// the exact hour the pending arrival would have fired — so a
    /// receiving shard that re-submits it at the current fleet hour
    /// schedules the identical arrival. The local submission is closed
    /// out like a pre-arrival cancellation (rejection "migrated to
    /// another shard", the phantom heap arrival fizzles) and logged as
    /// [`FleetEvent::MigratedOut`].
    ///
    /// Running, terminal or cancelled tenants cannot migrate — the
    /// sharded rebalancer moves queued work only. Fails with
    /// [`ConductorError::InvalidInput`] on unknown handles or
    /// non-queued tenants.
    pub fn migrate_out(&mut self, id: TenantId) -> Result<FleetJobRequest, ConductorError> {
        let idx = id.0;
        if idx >= self.outcomes.len() {
            return Err(ConductorError::InvalidInput(format!(
                "unknown tenant id {idx} (only {} submissions)",
                self.outcomes.len()
            )));
        }
        let queued = !self.cancelled.contains(&idx) && !self.tenant_pids.contains_key(&idx) && {
            let o = &self.outcomes[idx];
            !o.admitted && o.execution.is_none() && o.rejection.is_none()
        };
        if !queued {
            return Err(ConductorError::InvalidInput(format!(
                "tenant {idx} is not queued (running, terminal or cancelled); only queued \
                 jobs migrate"
            )));
        }
        let mut request = self.requests[idx].clone();
        // Carry the *scheduled* arrival, not the requested one: a mid-run
        // submission was clamped to its submission hour, and a retry's
        // arrival is its backoff hour. Re-submitting at the current fleet
        // hour (<= the pending arrival, up to the batch epsilon) then
        // reproduces the identical arrival event on the receiving shard.
        request.arrival_hours = self.outcomes[idx].arrival_hours;
        let o = &mut self.outcomes[idx];
        o.rejection = Some("migrated to another shard".into());
        self.cancelled.insert(idx);
        // Like a pre-arrival cancel: the phantom arrival event stays in
        // the heap but no longer counts as pending work; `handle_arrival`
        // skips cancelled entries.
        self.arrivals_pending -= 1;
        let at = self.stepped_to;
        self.emit(FleetEvent::MigratedOut {
            tenant: id,
            at_hours: at,
        });
        Ok(request)
    }

    /// Aligns the monitor-tick grid with an arrival observed *outside*
    /// this session. The sharded runtime broadcasts every submission's
    /// effective arrival to all shards, so each shard's grid anchors at
    /// the fleet-wide earliest arrival — exactly the anchor a single
    /// unsharded session would use — and monitor ticks fire at identical
    /// hours regardless of the partitioning. Logged as
    /// [`FleetEvent::MonitorAligned`] so the shard's event log remains a
    /// sufficient record for [`replay`](Self::replay).
    ///
    /// Fails with [`ConductorError::InvalidInput`] on non-finite or
    /// negative hours.
    pub fn align_monitor(&mut self, arrival_hours: f64) -> Result<(), ConductorError> {
        if !arrival_hours.is_finite() || arrival_hours < 0.0 {
            return Err(ConductorError::InvalidInput(format!(
                "invalid monitor alignment hour {arrival_hours}"
            )));
        }
        let arrival = arrival_hours.max(self.stepped_to);
        self.ensure_monitor_chain(arrival);
        let at = self.stepped_to;
        self.emit(FleetEvent::MonitorAligned {
            at_hours: at,
            arrival_hours,
        });
        Ok(())
    }

    /// Advances the fleet through every event strictly before `hours`,
    /// then sets the logical clock to `hours`. Events at exactly `hours`
    /// stay pending, so a submission at the bound still settles *before*
    /// same-instant wakeups, revocations and ticks (class order). Ignores
    /// non-finite or backwards bounds.
    pub fn step_until(&mut self, hours: f64) {
        if !hours.is_finite() {
            return;
        }
        while let Some(t) = self.sim.peek_time() {
            if t + TIME_EPSILON >= hours {
                break;
            }
            self.drain_one_batch();
        }
        if hours > self.stepped_to {
            self.stepped_to = hours;
        }
    }

    /// Drains the event heap completely. Any job still active afterwards
    /// is stuck (nothing running, nothing scheduled) and is aborted with
    /// its accrued spend kept on the fleet bill — exactly the batch
    /// driver's final-drain semantics. With a retry policy configured, a
    /// stalled abort may schedule fresh retry arrivals, so the drain
    /// loops until the heap is empty *and* nothing is stalled. The
    /// session stays usable: later submissions start new work.
    pub fn run_to_quiescence(&mut self) {
        loop {
            while self.drain_one_batch() {}
            self.abort_stalled_jobs();
            // Retries issued by the stalled aborts (or by nothing at all)
            // decide whether another round is needed.
            if self.sim.peek_time().is_none() {
                break;
            }
        }
    }

    /// Aborts every still-active job as stalled (nothing running, nothing
    /// scheduled), keeping its accrued spend on the fleet bill. This is
    /// the final-drain step of [`run_to_quiescence`](Self::run_to_quiescence),
    /// factored out so [`replay`](Self::replay) can reproduce a live
    /// session's stalled aborts when the log expects terminal events with
    /// an empty heap. Returns `true` when any job was aborted.
    fn abort_stalled_jobs(&mut self) -> bool {
        let stalled: Vec<ProcessId> = self.active.keys().copied().collect();
        let any = !stalled.is_empty();
        for pid in stalled {
            let job = self.active.remove(&pid).expect("stalled job present");
            let rel = (self.last_hour - job.start).max(0.0);
            let idx = job.request_idx;
            let reason = "job stalled: no further events pending".to_string();
            let o = &mut self.outcomes[idx];
            o.failure = Some(reason.clone());
            let report = job.exec.abort(rel);
            let missed = report.met_deadline == Some(false);
            o.execution = Some(report);
            let at = self.last_hour;
            self.emit(FleetEvent::Failed {
                tenant: TenantId(idx),
                at_hours: at,
                reason,
            });
            if missed {
                self.emit(FleetEvent::DeadlineMissed {
                    tenant: TenantId(idx),
                    at_hours: at,
                });
            }
            self.on_terminal(idx, at, TerminalKind::Failed);
        }
        any
    }

    /// Pops and processes the next batch of simultaneous events, if any.
    /// Returns `false` when the heap is empty. This is the finest public
    /// stepping granularity — exactly one event *batch* (all events within
    /// [`TIME_EPSILON`] of the earliest pending time), which is also the
    /// granularity at which [`checkpoint`](Self::checkpoint) boundaries
    /// are meaningful: a checkpoint taken between two batches resumes bit
    /// for bit, whereas no boundary exists inside a batch.
    pub fn step_one_batch(&mut self) -> bool {
        self.drain_one_batch()
    }

    /// How many events are pending on the fleet clock (arrivals, job
    /// wakeups, revocation sweeps, faults, breaker probes and monitor
    /// ticks — including superseded ticks that will pop as no-ops).
    pub fn pending_events(&self) -> usize {
        self.sim.len()
    }

    /// A live snapshot of one tenant: lifecycle state, plan, execution
    /// progress and the bill so far.
    pub fn status(&self, id: TenantId) -> Option<TenantStatus> {
        let o = self.outcomes.get(id.0)?;
        let running = self
            .tenant_pids
            .get(&id.0)
            .and_then(|pid| self.active.get(pid));
        let state = if self.cancelled.contains(&id.0) {
            TenantState::Cancelled
        } else if running.is_some() {
            TenantState::Running
        } else if !o.admitted {
            if o.rejection.is_some() {
                TenantState::Rejected
            } else {
                TenantState::Queued
            }
        } else if o.failure.is_some() {
            TenantState::Failed
        } else if o.execution.is_some() {
            TenantState::Completed
        } else {
            TenantState::Running
        };
        let (progress, bill_so_far) = match running {
            Some(job) => {
                let rel = (self.stepped_to - job.start).max(0.0);
                // Quote the bill a stop *right now* would settle at (open
                // sessions included at their round-up charge), so a
                // cancellation's final bill never jumps away from the
                // last live quote.
                (Some(job.exec.progress(rel)), job.exec.cost_so_far_at(rel))
            }
            None => (
                None,
                o.execution.as_ref().map(|e| e.total_cost).unwrap_or(0.0),
            ),
        };
        Some(TenantStatus {
            tenant: o.tenant.clone(),
            state,
            arrival_hours: o.arrival_hours,
            plan: o.plan.clone(),
            progress,
            bill_so_far,
            replanned_at_hours: o.replanned_at_hours.clone(),
            revoked_at_hours: o.revoked_at_hours.clone(),
            finished_at_hours: o.finished_at_hours,
            rejection: o.rejection.clone(),
            failure: o.failure.clone(),
        })
    }

    /// The fleet bill right now: every terminal tenant's bill plus the
    /// charges running jobs have accrued so far (open rental sessions at
    /// the round-up charge a stop at this instant would settle them at,
    /// consistent with [`status`](Self::status) and with the final bill
    /// a [`cancel`](Self::cancel) produces).
    pub fn fleet_bill(&self) -> f64 {
        let terminal: f64 = self
            .outcomes
            .iter()
            .filter_map(|o| o.execution.as_ref())
            .map(|e| e.total_cost)
            .sum();
        let running: f64 = self
            .active
            .values()
            .map(|j| j.exec.cost_so_far_at((self.stepped_to - j.start).max(0.0)))
            .sum();
        terminal + running
    }

    /// The dead-letter queue: every tenant whose final attempt exhausted
    /// the retry budget, in dead-letter order.
    pub fn dead_letters(&self) -> &[DeadLetter] {
        &self.dead_letters
    }

    /// Submitted arrivals whose event has not fired yet — the sharded
    /// rebalancer's queue-depth metric.
    pub(crate) fn queue_depth(&self) -> usize {
        self.arrivals_pending
    }

    /// Local indices of queued *original* submissions (arrival pending,
    /// attempt zero, not cancelled), in submission order — the sharded
    /// rebalancer's migration candidates. Retry waits never migrate:
    /// their backoff arrival belongs to the shard that owns the chain.
    pub(crate) fn queued_candidates(&self) -> Vec<usize> {
        self.outcomes
            .iter()
            .enumerate()
            .filter(|(i, o)| {
                !self.cancelled.contains(i)
                    && !self.tenant_pids.contains_key(i)
                    && !o.admitted
                    && o.execution.is_none()
                    && o.rejection.is_none()
                    && o.attempt == 0
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Total residual capped compute nodes at fleet hour `at` — the
    /// sharded rebalancer's slack metric (uncapped resources contribute
    /// nothing; they are never the bottleneck).
    pub(crate) fn residual_capped_nodes(&self, at: f64) -> usize {
        self.residual_pool(at, None)
            .compute
            .iter()
            .filter_map(|c| c.max_nodes)
            .sum()
    }

    /// The raw per-tenant outcomes, for the sharded runtime's merged
    /// report (indexing matches [`TenantId`]s issued by this session).
    pub(crate) fn outcomes(&self) -> &[TenantOutcome] {
        &self.outcomes
    }

    /// The latest pending event hour on this session's clock, if any —
    /// the horizon the sharded barrier driver must step past before the
    /// shard can be quiescent.
    pub(crate) fn horizon_hours(&self) -> Option<f64> {
        self.sim.max_time()
    }

    /// `true` while the failure-rate gate is refusing new admissions.
    pub fn admission_paused(&self) -> bool {
        self.failure_window.as_ref().is_some_and(|w| w.is_paused())
    }

    /// The spot-market circuit breaker's state, when one is configured
    /// (requires both a market and a breaker config).
    pub fn breaker_state(&self) -> Option<BreakerState> {
        self.breaker.as_ref().map(|b| b.state())
    }

    /// The per-tenant outcomes and fleet roll-up as of now. After
    /// [`run_to_quiescence`](Self::run_to_quiescence) this is the final
    /// report; mid-run it is a snapshot (running tenants appear admitted
    /// with no execution record yet).
    pub fn report(&self) -> FleetReport {
        let mut report = FleetReport::from_outcomes(self.outcomes.clone());
        if let Some(breaker) = &self.breaker {
            report.breaker_open_hours = breaker.open_hours(self.stepped_to);
        }
        report.plan_cache_hits = self.plan_cache.hits;
        report.plan_cache_misses = self.plan_cache.misses;
        report
    }

    /// Shadow-mode validation counters:
    /// `(compared, worse, max_excess, mean_excess)` — would-be cache hits
    /// compared against the fresh solve that actually decided the
    /// admission, how many re-priced worse than the fresh cost by more
    /// than the solver's relative gap, and the worst / mean relative
    /// excess observed (negative excess means the hit was cheaper than
    /// the solve it would replace). All zero unless
    /// [`FleetConfig::plan_cache_shadow`] is set.
    pub fn plan_cache_shadow_stats(&self) -> (usize, usize, f64, f64) {
        let mean = if self.plan_cache.shadow_checked > 0 {
            self.plan_cache.shadow_excess_sum / self.plan_cache.shadow_checked as f64
        } else {
            0.0
        };
        (
            self.plan_cache.shadow_checked,
            self.plan_cache.shadow_worse,
            self.plan_cache.shadow_excess_max,
            mean,
        )
    }

    // ---- the event loop -------------------------------------------------

    /// Pops and processes one batch of simultaneous events. Returns
    /// `false` when the heap is empty.
    fn drain_one_batch(&mut self) -> bool {
        let mut batch = std::mem::take(&mut self.batch);
        let Some(now) = self.sim.pop_due(&mut batch) else {
            self.batch = batch;
            return false;
        };
        let mut any_real = false;
        let mut woken: BTreeSet<ProcessId> = BTreeSet::new();
        for event in batch.drain(..) {
            match event {
                ClockEvent::Arrival(i) => {
                    any_real = true;
                    self.handle_arrival(i, now);
                }
                ClockEvent::Job(pid) => {
                    any_real = true;
                    if woken.insert(pid) {
                        self.wake_job(pid, now);
                    }
                }
                ClockEvent::Revocation => {
                    any_real = true;
                    self.handle_revocation(now);
                }
                ClockEvent::Fault(i) => {
                    any_real = true;
                    self.handle_fault(i, now);
                }
                ClockEvent::BreakerProbe => {
                    any_real = true;
                    self.handle_breaker_probe(now);
                }
                ClockEvent::MonitorTick(gen) => {
                    if gen != self.monitor_gen {
                        continue; // superseded chain; a no-event
                    }
                    any_real = true;
                    self.handle_monitor_tick(now);
                }
            }
        }
        if any_real {
            self.last_hour = now;
            if now > self.stepped_to {
                self.stepped_to = now;
            }
        }
        self.batch = batch;
        true
    }

    /// Starts — or revives — the monitor-tick chain for a submission with
    /// effective arrival `arrival`. Tick times live on the iterated grid
    /// anchored at the earliest arrival, which is what keeps the
    /// incremental driver's tick times bit-identical to the batch
    /// driver's `t += period` chain.
    fn ensure_monitor_chain(&mut self, arrival: f64) {
        let period = self.config.monitor_period_hours;
        match self.monitor_anchor {
            None => self.monitor_anchor = Some(arrival),
            // Until the first tick fires the grid can still be re-anchored
            // by an earlier arrival (matching the batch driver's
            // min-over-all-arrivals anchor).
            Some(a) if arrival < a && !self.monitor_fired => self.monitor_anchor = Some(arrival),
            _ => {}
        }
        let anchor = self.monitor_anchor.expect("anchor just set");
        if self.monitor_live {
            let candidate = anchor + period;
            if !self.monitor_fired && candidate + TIME_EPSILON < self.monitor_next {
                self.monitor_gen += 1;
                self.monitor_next = candidate;
                self.sim.schedule(
                    candidate,
                    ClockEvent::MonitorTick(self.monitor_gen).class(),
                    ClockEvent::MonitorTick(self.monitor_gen),
                );
            }
        } else {
            // Iterate (never multiply) so revived chains reproduce the
            // batch driver's floating-point tick values exactly.
            let mut t = anchor + period;
            while t <= self.stepped_to + TIME_EPSILON {
                t += period;
            }
            self.monitor_gen += 1;
            self.monitor_next = t;
            self.monitor_live = true;
            self.sim.schedule(
                t,
                ClockEvent::MonitorTick(self.monitor_gen).class(),
                ClockEvent::MonitorTick(self.monitor_gen),
            );
        }
    }

    /// Delivers an event to the tailing WAL (when attached), the log and
    /// every observer. A WAL write failure detaches the log and records
    /// the error ([`wal_error`](Self::wal_error)); the session continues.
    fn emit(&mut self, event: FleetEvent) {
        if let Some(wal) = self.wal.as_mut() {
            if let Err(e) = wal.log(&event) {
                self.wal_error = Some(e.to_string());
                self.wal = None;
            }
        }
        for obs in &mut self.observers {
            obs.on_event(&event);
        }
        self.events.push(event);
    }

    // ---- handlers -------------------------------------------------------

    /// Submission `i`'s arrival: plan against the residual capacity and
    /// register the execution process on success.
    fn handle_arrival(&mut self, i: usize, now: f64) {
        if self.cancelled.contains(&i) {
            // A pre-arrival cancel already removed this entry from
            // `arrivals_pending` and recorded the rejection; the phantom
            // event is a no-op.
            return;
        }
        self.arrivals_pending -= 1;
        // The admission gate: while the recent failure rate is above the
        // pause threshold, arrivals are refused outright (fail fast, no
        // planning). The refusals are not recorded in the window — only
        // execution outcomes move the gate.
        if let Some(window) = &self.failure_window {
            if window.is_paused() {
                let reason = format!(
                    "admission paused: {:.0}% of the last {} terminal outcomes failed",
                    window.failure_fraction() * 100.0,
                    window.config().window
                );
                self.outcomes[i].rejection = Some(reason.clone());
                self.emit(FleetEvent::Rejected {
                    tenant: TenantId(i),
                    at_hours: now,
                    reason,
                });
                self.on_terminal(i, now, TerminalKind::Rejected);
                return;
            }
        }
        if let Some((job, fallback, cache_key, initial)) = self.admit(i, now) {
            let pid = self.registry.register();
            for (t, _) in initial {
                self.sim
                    .schedule(now + t, ClockEvent::Job(pid).class(), ClockEvent::Job(pid));
            }
            self.tenant_pids.insert(i, pid);
            self.active.insert(pid, job);
            self.emit(FleetEvent::Admitted {
                tenant: TenantId(i),
                at_hours: now,
                cache_key,
            });
            let (expected_cost, expected_completion_hours) = self.outcomes[i]
                .plan
                .as_ref()
                .map(|p| (p.expected_cost, p.expected_completion_hours))
                .unwrap_or((0.0, 0.0));
            self.emit(FleetEvent::Planned {
                tenant: TenantId(i),
                at_hours: now,
                expected_cost,
                expected_completion_hours,
            });
            if fallback {
                self.emit(FleetEvent::FallbackEngaged {
                    tenant: TenantId(i),
                    at_hours: now,
                });
            }
        } else {
            let reason = self.outcomes[i]
                .rejection
                .clone()
                .unwrap_or_else(|| "admission failed".into());
            self.emit(FleetEvent::Rejected {
                tenant: TenantId(i),
                at_hours: now,
                reason,
            });
            self.on_terminal(i, now, TerminalKind::Rejected);
        }
    }

    /// Plans one arrival against the residual capacity and, on success,
    /// builds its execution process. Returns `None` (after recording the
    /// rejection) when no feasible plan exists; the middle flag reports
    /// whether the breaker's on-demand fallback tier was engaged.
    fn admit(&mut self, request_idx: usize, now: f64) -> Option<Admission> {
        let request = self.requests[request_idx].clone();
        let residual = self.residual_pool(now, None);
        if let Err(reason) = residual.validate() {
            self.outcomes[request_idx].rejection = Some(format!("no residual capacity: {reason}"));
            return None;
        }
        let planner =
            Planner::new(residual.clone()).with_solve_options(self.config.solve_options.clone());
        let config = ModelConfig {
            price_forecast: self.price_forecast(
                now,
                request.goal.horizon_hours(),
                request.spot_bid,
            ),
            ..ModelConfig::default()
        };
        // The fast path: a cached sibling plan that fits the residual and
        // re-prices within the certified gap of this admission's root LP
        // bound skips branch & bound entirely. In shadow mode the probe
        // still runs (through its own solve context) but only for
        // comparison — the full solve below keeps deciding.
        let shadow = self.config.plan_cache_shadow;
        let probe = match (self.config.plan_cache || shadow, request.goal) {
            (true, Goal::MinimizeCost { deadline_hours }) => {
                self.try_plan_cache(&planner, &request.spec, deadline_hours, &config, &residual)
            }
            _ => None,
        };
        let cached = if shadow { None } else { probe.clone() };
        let (plan, planning, cache_key) = match cached {
            Some((plan, planning, key)) => (plan, planning, Some(key)),
            None => {
                match planner.plan_with_config_ctx(
                    &request.spec,
                    request.goal,
                    &config,
                    Some(&mut self.solve_ctx),
                ) {
                    Ok(result) => {
                        if let Goal::MinimizeCost { deadline_hours } = request.goal {
                            if self.config.plan_cache || shadow {
                                if shadow {
                                    if let Some((shadow_plan, _, _)) = &probe {
                                        let fresh = result.0.expected_cost;
                                        if fresh.is_finite() && fresh.abs() > f64::EPSILON {
                                            let excess =
                                                (shadow_plan.expected_cost - fresh) / fresh;
                                            let cache = &mut self.plan_cache;
                                            cache.shadow_checked += 1;
                                            if excess > self.config.solve_options.relative_gap {
                                                cache.shadow_worse += 1;
                                            }
                                            cache.shadow_excess_max =
                                                cache.shadow_excess_max.max(excess);
                                            cache.shadow_excess_sum += excess;
                                        }
                                    }
                                }
                                self.plan_cache_insert(
                                    &request.spec,
                                    deadline_hours,
                                    &result.0,
                                    &config,
                                    &residual,
                                );
                            }
                        }
                        (result.0, result.1, None)
                    }
                    Err(e) => {
                        self.outcomes[request_idx].rejection =
                            Some(format!("admission planning failed: {e}"));
                        return None;
                    }
                }
            }
        };

        let options = plan.to_deployment_options(
            request.tenant.clone(),
            self.pool.uplink_gbph,
            request.goal.deadline_hours(),
            &ExecutionPlan::default_location_map(),
        );
        let scheduler = scheduler_for_plan(&plan, &self.pool);
        // While the breaker is open, the on-demand fallback tier pays the
        // ceiling for real instead of buying (revocable) spot: the
        // deadline is kept at the price of the discount. Without the
        // fallback tier the session still buys spot — at ceiling-priced
        // forecasts, it simply plans as if the discount were gone.
        let fallback = self
            .breaker
            .as_ref()
            .is_some_and(|b| b.is_engaged() && b.config().fallback == FallbackTier::OnDemand);
        let pricing = match &self.config.spot_market {
            Some(_) if fallback => SessionPricing::OnDemand,
            Some(market) => SessionPricing::Spot {
                market: market.clone(),
                start_offset_hours: now,
                bid: request
                    .spot_bid
                    .unwrap_or_else(|| self.effective_bid(market)),
            },
            None => SessionPricing::OnDemand,
        };
        let exec = match JobExecution::new(
            &self.catalog,
            &request.spec,
            options,
            Box::new(scheduler),
            pricing,
        ) {
            Ok(exec) => exec,
            Err(e) => {
                self.outcomes[request_idx].rejection = Some(format!("deployment rejected: {e}"));
                return None;
            }
        };

        let outcome = &mut self.outcomes[request_idx];
        outcome.admitted = true;
        outcome.plan = Some(plan.clone());
        outcome.planning = Some(planning);
        let progress_model = progress_checkpoints(now, 0.0, &plan);
        let initial = exec.initial_events();
        Some((
            ActiveJob {
                request_idx,
                start: now,
                exec,
                spec: request.spec.clone(),
                goal: request.goal,
                tenant_bid: request.spot_bid,
                progress_model,
                storm_hit: false,
                fallback_on_demand: fallback,
            },
            fallback,
            cache_key,
            initial,
        ))
    }

    /// Probes the plan cache for a certified sibling plan. A hit must
    /// pass two screens against *this* admission's state: the shape's
    /// peak allocations fit the current residual caps, and its re-priced
    /// objective is within the solver's relative gap of the fresh model's
    /// root LP bound — a certificate of near-optimality that the cold
    /// path's node-cap terminations do not even carry. Among qualifying
    /// entries the cheapest re-priced shape wins. The root relaxation is
    /// solved through the shared context either way, so a miss's full
    /// solve warm-starts from it — except in shadow mode, which probes
    /// through a separate context so the real solve sequence (and hence
    /// the session trajectory) stays bitwise identical to cache-off.
    fn try_plan_cache(
        &mut self,
        planner: &Planner,
        spec: &JobSpec,
        deadline_hours: f64,
        config: &ModelConfig,
        residual: &ResourcePool,
    ) -> Option<(ExecutionPlan, PlanningReport, PlanCacheKey)> {
        let horizon = (deadline_hours / planner.interval_hours).ceil().max(1.0) as usize;
        self.plan_cache.last_bound = None;
        let ctx = if self.config.plan_cache_shadow {
            &mut self.shadow_ctx
        } else {
            &mut self.solve_ctx
        };
        let root = match planner.root_bound_with_ctx(spec, deadline_hours, config, ctx) {
            Ok(root) => root,
            Err(_) => {
                // An infeasible/failed relaxation: fall through to the full
                // solve, which surfaces the identical error to the caller.
                self.plan_cache.misses += 1;
                return None;
            }
        };
        self.plan_cache.last_bound = Some(root.bound);
        let key = PlanCacheKey::new(spec, horizon);
        let prices_now = resolved_prices(residual, &config.price_forecast, horizon);
        let gap = self.config.solve_options.relative_gap;
        let mut best: Option<(f64, usize)> = None;
        if let (Some(pool), Some(typical)) = (
            self.plan_cache.entries.get(&key),
            self.plan_cache.typical_ratio(&key),
        ) {
            // The certification bar: what a *typical* fresh branch &
            // bound delivers on this key (median cost-to-bound ratio of
            // the recent fresh solves), scaled by today's root bound. A
            // reused shape must re-price at or below that — i.e. be
            // equal-or-better than the solve it replaces — with the
            // solver's relative gap as the indifference band.
            let bar = typical * (1.0 + gap) * root.bound;
            for (i, entry) in pool.iter().enumerate() {
                if !entry_fits(entry, residual) {
                    continue;
                }
                let Some(repriced) = reprice_entry(entry, &prices_now) else {
                    continue;
                };
                if repriced <= bar && best.is_none_or(|(cost, _)| repriced < cost) {
                    best = Some((repriced, i));
                }
            }
        }
        let Some((repriced, i)) = best else {
            self.plan_cache.misses += 1;
            return None;
        };
        self.plan_cache.hits += 1;
        let mut plan = self.plan_cache.entries[&key][i].plan.clone();
        plan.expected_cost = repriced;
        let planning = PlanningReport {
            model_vars: root.model_vars,
            model_constraints: root.model_constraints,
            model_build_time: root.model_build_time,
            solve_time: root.solve_time,
            simplex_iterations: 0,
            nodes_explored: 0,
            warm_start_hits: 0,
            warm_start_misses: 0,
            basis_factorizations: 0,
            basis_refactorizations: 0,
            bound_flips: 0,
            ft_updates: 0,
        };
        Some((plan, planning, key))
    }

    /// Records a freshly solved admission plan in the cache (oldest shape
    /// evicted once a key holds [`PLAN_CACHE_POOL`] entries).
    fn plan_cache_insert(
        &mut self,
        spec: &JobSpec,
        deadline_hours: f64,
        plan: &ExecutionPlan,
        config: &ModelConfig,
        residual: &ResourcePool,
    ) {
        let horizon = if plan.interval_hours > 0.0 {
            (deadline_hours / plan.interval_hours).ceil().max(1.0) as usize
        } else {
            return;
        };
        // Without a root bound from this admission's probe the entry's
        // quality ratio is unknowable, and an unknowable entry could
        // neither certify nor serve as the bar — skip it.
        let Some(bound) = self.plan_cache.last_bound.take() else {
            return;
        };
        if !bound.is_finite() || bound <= 0.0 || !plan.expected_cost.is_finite() {
            return;
        }
        let key = PlanCacheKey::new(spec, horizon);
        let prices = resolved_prices(residual, &config.price_forecast, horizon);
        let mut peaks: BTreeMap<String, usize> = BTreeMap::new();
        for interval in &plan.intervals {
            for (ty, &n) in &interval.nodes {
                let peak = peaks.entry(ty.clone()).or_insert(0);
                *peak = (*peak).max(n);
            }
        }
        let entry = PlanCacheEntry {
            plan: plan.clone(),
            cost: plan.expected_cost,
            ratio: plan.expected_cost / bound,
            prices,
            peaks,
        };
        let ratios = self.plan_cache.fresh_ratios.entry(key.clone()).or_default();
        ratios.push(entry.ratio);
        if ratios.len() > PLAN_CACHE_RATIO_WINDOW {
            ratios.remove(0);
        }
        let pool = self.plan_cache.entries.entry(key).or_default();
        pool.push(entry);
        if pool.len() > PLAN_CACHE_POOL {
            pool.remove(0);
        }
    }

    /// Advances one job's execution process at fleet hour `now`, handling
    /// completion, the max-hours cap and stuck detection.
    fn wake_job(&mut self, pid: ProcessId, now: f64) {
        let Some(job) = self.active.get_mut(&pid) else {
            return; // already finished, failed or cancelled
        };
        let rel = (now - job.start).max(0.0);
        if matches!(job.exec.phase(), JobPhase::Processing) && rel > job.exec.max_hours() {
            let job = self.active.remove(&pid).expect("job present");
            let idx = job.request_idx;
            let reason = format!(
                "did not finish within {} simulated hours ({} tasks done)",
                job.exec.max_hours(),
                job.exec.completed_tasks()
            );
            let o = &mut self.outcomes[idx];
            o.failure = Some(reason.clone());
            let report = job.exec.abort(rel);
            let missed = report.met_deadline == Some(false);
            o.execution = Some(report);
            self.emit(FleetEvent::Failed {
                tenant: TenantId(idx),
                at_hours: now,
                reason,
            });
            if missed {
                self.emit(FleetEvent::DeadlineMissed {
                    tenant: TenantId(idx),
                    at_hours: now,
                });
            }
            self.on_terminal(idx, now, TerminalKind::Failed);
            return;
        }
        let extensions_before = job.exec.straggler_extensions();
        let follow_ups = job.exec.on_wakeup(rel);
        for (t, _) in follow_ups {
            self.sim.schedule(
                job.start + t,
                ClockEvent::Job(pid).class(),
                ClockEvent::Job(pid),
            );
        }
        let job = self.active.get_mut(&pid).expect("job still present");
        if job.exec.straggler_extensions() > extensions_before {
            let idx = job.request_idx;
            self.emit(FleetEvent::StragglerExtended {
                tenant: TenantId(idx),
                at_hours: now,
            });
        }
        let job = self.active.get_mut(&pid).expect("job still present");
        if job.exec.is_done() {
            let job = self.active.remove(&pid).expect("job present");
            let idx = job.request_idx;
            let o = &mut self.outcomes[idx];
            let report = job.exec.into_report();
            let finished_at = job.start + report.completion_hours;
            o.finished_at_hours = Some(finished_at);
            let met_deadline = report.met_deadline;
            o.execution = Some(report);
            self.emit(FleetEvent::Completed {
                tenant: TenantId(idx),
                at_hours: finished_at,
                met_deadline,
            });
            if met_deadline == Some(false) {
                self.emit(FleetEvent::DeadlineMissed {
                    tenant: TenantId(idx),
                    at_hours: finished_at,
                });
            }
            let kind = if met_deadline == Some(false) {
                TerminalKind::CompletedLate
            } else {
                TerminalKind::CompletedOnTime
            };
            self.on_terminal(idx, finished_at, kind);
        } else if matches!(job.exec.phase(), JobPhase::Processing)
            && job.exec.next_event_hours(rel).is_none()
        {
            let job = self.active.remove(&pid).expect("job present");
            let idx = job.request_idx;
            let reason =
                format!("job stuck at hour {rel:.2}: nothing running and nothing scheduled");
            let o = &mut self.outcomes[idx];
            o.failure = Some(reason.clone());
            let report = job.exec.abort(rel);
            let missed = report.met_deadline == Some(false);
            o.execution = Some(report);
            self.emit(FleetEvent::Failed {
                tenant: TenantId(idx),
                at_hours: now,
                reason,
            });
            if missed {
                self.emit(FleetEvent::DeadlineMissed {
                    tenant: TenantId(idx),
                    at_hours: now,
                });
            }
            self.on_terminal(idx, now, TerminalKind::Failed);
        }
    }

    /// A revocation sweep at fleet hour `now`: every running job whose
    /// effective bid the spot price exceeds loses its cloud nodes.
    fn handle_revocation(&mut self, now: f64) {
        let Some(market) = &self.config.spot_market else {
            return;
        };
        let hour = (now + TIME_EPSILON).floor().max(0.0) as usize;
        let fleet_bid = self.effective_bid(market);
        let mut emitted: Vec<FleetEvent> = Vec::new();
        let mut struck = false;
        for (pid, job) in self.active.iter_mut() {
            // Fallback-tier jobs bought on-demand capacity: the spot
            // market cannot touch them (that is what the ceiling buys).
            if job.fallback_on_demand {
                continue;
            }
            // Per-tenant bids: a sweep only strikes jobs actually out-bid
            // at this hour. With no per-tenant overrides this check is
            // vacuously true (sweeps are scheduled exactly at the fleet
            // bid's out-bid hours), preserving the batch driver bit for
            // bit.
            let bid = job.tenant_bid.unwrap_or(fleet_bid);
            if !market.out_bid_at(hour, bid) {
                continue;
            }
            // A breaker strike is "a sweep out-bid a live job", whether
            // or not any cloud nodes were up at that instant — the
            // market proved hostile to running work either way.
            struck = true;
            let rel = (now - job.start).max(0.0);
            let (killed, wakeups) = job.exec.kill_cloud_nodes(rel);
            if killed == 0 {
                continue;
            }
            job.storm_hit = true;
            self.outcomes[job.request_idx].revoked_at_hours.push(now);
            emitted.push(FleetEvent::Revoked {
                tenant: TenantId(job.request_idx),
                at_hours: now,
                nodes_killed: killed,
            });
            for (t, _) in wakeups {
                self.sim.schedule(
                    job.start + t,
                    ClockEvent::Job(*pid).class(),
                    ClockEvent::Job(*pid),
                );
            }
            // Wake the victim immediately: it reconciles against the
            // out-bid market and schedules its own recovery-hour retry,
            // instead of sleeping on wakeups for tasks that no longer run.
            self.sim
                .schedule(now, ClockEvent::Job(*pid).class(), ClockEvent::Job(*pid));
        }
        for event in emitted {
            self.emit(event);
        }
        if struck {
            self.breaker_strike(now);
        }
    }

    /// Feeds one revocation strike to the circuit breaker and reacts to
    /// the transition: opening (or reopening) starts the hourly probe
    /// chain that will eventually walk it back to closed.
    fn breaker_strike(&mut self, now: f64) {
        let Some(breaker) = self.breaker.as_mut() else {
            return;
        };
        let transition = breaker.on_strike(now);
        let strikes = breaker.strikes_in_window();
        match transition {
            Some(BreakerTransition::Opened) | Some(BreakerTransition::Reopened) => {
                self.emit(FleetEvent::BreakerOpened {
                    at_hours: now,
                    strikes,
                });
                self.ensure_probe_chain(now);
            }
            _ => {}
        }
    }

    /// Schedules the next hourly breaker probe (at the next whole hour
    /// after `now`) unless a chain is already live.
    fn ensure_probe_chain(&mut self, now: f64) {
        if self.probe_live {
            return;
        }
        self.probe_live = true;
        let next = (now + TIME_EPSILON).floor() + 1.0;
        self.sim.schedule(
            next,
            ClockEvent::BreakerProbe.class(),
            ClockEvent::BreakerProbe,
        );
    }

    /// An hourly breaker probe: checks whether the trace hour just
    /// elapsed was clean at the fleet bid, advances the breaker state
    /// machine, and keeps the chain alive while the breaker is not
    /// closed and the market can still recover.
    fn handle_breaker_probe(&mut self, now: f64) {
        let (clean, hour, recoverable) = {
            let Some(market) = &self.config.spot_market else {
                self.probe_live = false;
                return;
            };
            let fleet_bid = self.effective_bid(market);
            let hour = (now + TIME_EPSILON).floor().max(0.0) as usize;
            let clean = hour > 0 && !market.out_bid_at(hour - 1, fleet_bid);
            // Past a trace that ends above the bid the market never
            // recovers: stop probing instead of chaining forever (the
            // breaker stays open for good, which is the right verdict).
            let recoverable = market.next_acceptance(hour, fleet_bid).is_some();
            (clean, hour, recoverable)
        };
        let Some(breaker) = self.breaker.as_mut() else {
            self.probe_live = false;
            return;
        };
        match breaker.on_probe(now, clean) {
            Some(BreakerTransition::HalfOpened) => {
                self.emit(FleetEvent::BreakerHalfOpen { at_hours: now });
            }
            Some(BreakerTransition::Closed) => {
                self.emit(FleetEvent::BreakerClosed { at_hours: now });
            }
            Some(BreakerTransition::Reopened) => {
                let strikes = self
                    .breaker
                    .as_ref()
                    .map(|b| b.strikes_in_window())
                    .unwrap_or(0);
                self.emit(FleetEvent::BreakerOpened {
                    at_hours: now,
                    strikes,
                });
            }
            _ => {}
        }
        let still_open = self
            .breaker
            .as_ref()
            .is_some_and(|b| b.state() != BreakerState::Closed);
        if still_open && recoverable {
            self.sim.schedule(
                (hour + 1) as f64,
                ClockEvent::BreakerProbe.class(),
                ClockEvent::BreakerProbe,
            );
        } else {
            self.probe_live = false;
        }
    }

    /// Injected fault `i` of the fault plan fires: pick the victim by the
    /// event's pre-drawn salt over the running jobs (process-id order,
    /// deterministic) and apply the fault. With nothing running the
    /// fault fizzles silently.
    fn handle_fault(&mut self, i: usize, now: f64) {
        let Some(event) = self
            .config
            .policy
            .fault_plan
            .as_ref()
            .and_then(|plan| plan.events.get(i))
            .copied()
        else {
            return;
        };
        if self.active.is_empty() {
            return;
        }
        let victim = (event.salt % self.active.len() as u64) as usize;
        let pid = *self
            .active
            .keys()
            .nth(victim)
            .expect("victim index within active set");
        match event.kind {
            FaultKind::TaskFailure => {
                let job = self.active.remove(&pid).expect("victim present");
                let rel = (now - job.start).max(0.0);
                let idx = job.request_idx;
                self.tenant_pids.remove(&idx);
                let reason = format!("injected fault: task failure at fleet hour {now:.2}");
                let o = &mut self.outcomes[idx];
                o.failure = Some(reason.clone());
                let report = job.exec.abort(rel);
                let missed = report.met_deadline == Some(false);
                o.execution = Some(report);
                self.emit(FleetEvent::FaultInjected {
                    tenant: TenantId(idx),
                    at_hours: now,
                    kind: event.kind,
                    nodes_killed: 0,
                    salt: event.salt,
                });
                self.emit(FleetEvent::Failed {
                    tenant: TenantId(idx),
                    at_hours: now,
                    reason,
                });
                if missed {
                    self.emit(FleetEvent::DeadlineMissed {
                        tenant: TenantId(idx),
                        at_hours: now,
                    });
                }
                self.on_terminal(idx, now, TerminalKind::Failed);
            }
            FaultKind::NodeCrash => {
                let job = self.active.get_mut(&pid).expect("victim present");
                let rel = (now - job.start).max(0.0);
                let (killed, wakeups) = job.exec.kill_cloud_nodes(rel);
                job.storm_hit = true;
                let idx = job.request_idx;
                let start = job.start;
                for (t, _) in wakeups {
                    self.sim.schedule(
                        start + t,
                        ClockEvent::Job(pid).class(),
                        ClockEvent::Job(pid),
                    );
                }
                // Wake the victim immediately, like a revocation: it
                // reconciles and schedules its own recovery.
                self.sim
                    .schedule(now, ClockEvent::Job(pid).class(), ClockEvent::Job(pid));
                self.emit(FleetEvent::FaultInjected {
                    tenant: TenantId(idx),
                    at_hours: now,
                    kind: event.kind,
                    nodes_killed: killed,
                    salt: event.salt,
                });
            }
        }
    }

    /// A monitor tick: check every running job, then keep the chain alive
    /// while anything can still happen.
    fn handle_monitor_tick(&mut self, now: f64) {
        self.monitor_fired = true;
        self.monitor(now);
        if !self.active.is_empty() || self.arrivals_pending > 0 {
            let next = now + self.config.monitor_period_hours;
            self.monitor_next = next;
            self.sim.schedule(
                next,
                ClockEvent::MonitorTick(self.monitor_gen).class(),
                ClockEvent::MonitorTick(self.monitor_gen),
            );
        } else {
            self.monitor_live = false;
        }
    }

    /// The periodic monitor: compares every running job's observed map
    /// progress against its plan's projection and re-plans laggards in
    /// place, splicing the updated node schedule into the live deployment.
    fn monitor(&mut self, now: f64) {
        let pids: Vec<ProcessId> = self.active.keys().copied().collect();
        for pid in pids {
            let (rel, deadline, expected, progress, storm_hit) = {
                let job = self.active.get(&pid).expect("active job present");
                if !matches!(job.exec.phase(), JobPhase::Processing) {
                    continue;
                }
                let rel = now - job.start;
                if rel <= TIME_EPSILON {
                    continue;
                }
                let Some(deadline) = job.exec.options().deadline_hours else {
                    continue; // nothing to protect
                };
                let expected = expected_progress(&job.progress_model, now);
                (
                    rel,
                    deadline,
                    expected,
                    job.exec.progress(rel),
                    job.storm_hit,
                )
            };
            let on_track = expected <= 0.0
                || progress.map_done_gb + 1e-6 >= (1.0 - self.config.monitor_tolerance) * expected;
            // A storm-hit job re-plans even when its checkpoints still look
            // on track: the plan's future capacity just evaporated, and
            // waiting for the shortfall to show up wastes the hours the
            // deadline rescue needs.
            if on_track && !storm_hit {
                continue;
            }
            // Too late to act? Leave the schedule alone and let it ride.
            if deadline - rel <= self.config.replan_margin_hours + 1.0 {
                self.clear_storm_flag(pid);
                continue;
            }
            // Observed per-node throughput over the hours actually fielded.
            // A storm victim with no fielded hours yet keeps its flag and
            // retries at the next tick, once it has observed something.
            if progress.allocated_node_hours <= TIME_EPSILON {
                continue;
            }
            let observed_gbph = progress.map_done_gb / progress.allocated_node_hours;
            if observed_gbph <= 0.0 {
                continue;
            }
            self.clear_storm_flag(pid);
            self.replan_job(pid, now, rel, deadline, observed_gbph);
        }
    }

    /// Re-plans one lagging job from its observed state with the observed
    /// throughput, against the residual capacity the *other* jobs leave.
    fn replan_job(
        &mut self,
        pid: ProcessId,
        now: f64,
        rel: f64,
        deadline: f64,
        observed_gbph: f64,
    ) {
        let (spec, goal, tenant_bid, progress) = {
            let job = self.active.get(&pid).expect("active job present");
            (
                job.spec.clone(),
                job.goal,
                job.tenant_bid,
                job.exec.progress(rel),
            )
        };

        // Corrected capacities in reference-workload units (mirrors
        // `AdaptiveController::pool_with_throughput`).
        let reference_units = if spec.reference_throughput_gbph > 0.0 {
            observed_gbph * (REFERENCE_WORKLOAD_GBPH / spec.reference_throughput_gbph)
        } else {
            observed_gbph
        };
        let mut residual = self.residual_pool(now, Some(pid));
        for c in &mut residual.compute {
            c.capacity_gbph = reference_units;
        }
        if residual.validate().is_err() {
            return;
        }

        // Observed state, with the conservatism the fluid model needs.
        let mut initial = InitialState::default();
        let location_names = location_to_storage_names();
        for (loc, gb) in &progress.stored_gb {
            if let Some(name) = location_names.get(loc) {
                initial.stored_gb.insert(name.to_string(), *gb);
            }
        }
        let remaining = (spec.input_gb - progress.map_done_gb).max(0.0);
        initial.map_done_gb =
            (spec.input_gb - remaining * (1.0 + self.config.monitor_conservatism)).max(0.0);

        let remaining_goal = match goal {
            Goal::MinimizeCost { .. } => Goal::MinimizeCost {
                deadline_hours: (deadline - rel - self.config.replan_margin_hours).max(1.0),
            },
            Goal::MinimizeTime {
                budget_usd,
                max_hours,
            } => Goal::MinimizeTime {
                budget_usd,
                max_hours: (max_hours - rel - self.config.replan_margin_hours).max(1.0),
            },
        };
        let config = ModelConfig {
            initial,
            price_forecast: self.price_forecast(now, remaining_goal.horizon_hours(), tenant_bid),
            ..ModelConfig::default()
        };
        let planner = Planner::new(residual).with_solve_options(self.config.solve_options.clone());
        let Ok((updated, _)) =
            planner.plan_with_config_ctx(&spec, remaining_goal, &config, Some(&mut self.solve_ctx))
        else {
            return; // keep the current schedule; the next tick may retry
        };

        let job = self.active.get_mut(&pid).expect("active job present");
        let new_steps: Vec<NodeAllocation> = updated
            .node_schedule()
            .into_iter()
            .map(|mut step| {
                step.from_hour += rel;
                step
            })
            .collect();
        let wakeups = job.exec.splice_node_schedule(rel, rel, new_steps);
        for (t, _) in wakeups {
            self.sim.schedule(
                job.start + t,
                ClockEvent::Job(pid).class(),
                ClockEvent::Job(pid),
            );
        }
        // Wake the job at the splice point so an immediate scale-up at
        // `rel` takes effect without waiting for the next old event.
        self.sim
            .schedule(now, ClockEvent::Job(pid).class(), ClockEvent::Job(pid));
        job.progress_model = progress_checkpoints(now, progress.map_done_gb, &updated);
        let idx = job.request_idx;
        self.outcomes[idx].replanned_at_hours.push(now);
        self.emit(FleetEvent::Replanned {
            tenant: TenantId(idx),
            at_hours: now,
        });
    }

    /// The failure-policy hook, called at every terminal transition of an
    /// arrival-or-later tenant (client cancellations excluded — those
    /// are intent, not failure): records the outcome in the admission
    /// gate's window, then decides between retry, dead-letter and
    /// nothing.
    fn on_terminal(&mut self, idx: usize, now: f64, kind: TerminalKind) {
        // 1. The admission gate samples execution outcomes only:
        //    completions (on time = success, late = failure) and aborts.
        //    Rejections never ran, so they carry no signal about the
        //    fleet's health — and refusals while paused must not feed
        //    back into the gate that caused them.
        let sample = match kind {
            TerminalKind::CompletedOnTime => Some(false),
            TerminalKind::CompletedLate | TerminalKind::Failed => Some(true),
            TerminalKind::Rejected => None,
        };
        if let (Some(window), Some(failed)) = (self.failure_window.as_mut(), sample) {
            let change = window.record(failed);
            let fraction = window.failure_fraction();
            match change {
                Some(AdmissionChange::Paused) => self.emit(FleetEvent::AdmissionPaused {
                    at_hours: now,
                    failure_fraction: fraction,
                }),
                Some(AdmissionChange::Resumed) => self.emit(FleetEvent::AdmissionResumed {
                    at_hours: now,
                    failure_fraction: fraction,
                }),
                None => {}
            }
        }
        // 2. Retry / dead-letter disposition, under the tenant's own
        //    policy when the request carries an override.
        let Some(retry) = self.effective_retry(idx) else {
            return;
        };
        let attempt = self.outcomes[idx].attempt;
        match kind {
            TerminalKind::Failed => {
                if attempt < retry.max_retries {
                    self.schedule_retry(idx, now);
                } else {
                    let reason = self.outcomes[idx]
                        .failure
                        .clone()
                        .unwrap_or_else(|| "failed".into());
                    self.dead_letter(idx, now, reason);
                }
            }
            TerminalKind::CompletedLate => {
                // A late completion may retry (a fresh attempt can hit a
                // calmer market), but exhausting the budget does not
                // dead-letter: the work did finish.
                if retry.retry_deadline_missed && attempt < retry.max_retries {
                    self.schedule_retry(idx, now);
                }
            }
            TerminalKind::Rejected => {
                // Original arrivals refused at admission are terminal
                // rejections (admission control is not a fault); a
                // *retry* that bounces keeps burning its budget so the
                // chain always ends in success, rejection-as-terminal or
                // the dead-letter queue — never in limbo.
                if attempt > 0 {
                    if attempt < retry.max_retries {
                        self.schedule_retry(idx, now);
                    } else {
                        let reason = self.outcomes[idx]
                            .rejection
                            .clone()
                            .unwrap_or_else(|| "rejected".into());
                        self.dead_letter(idx, now, reason);
                    }
                }
            }
            TerminalKind::CompletedOnTime => {}
        }
    }

    /// The retry policy governing tenant `idx`: the request's override
    /// when present, else the fleet-wide policy.
    fn effective_retry(&self, idx: usize) -> Option<RetryPolicy> {
        self.requests[idx]
            .retry_override
            .or(self.config.policy.retry)
    }

    /// Re-submits tenant `idx`'s request as a fresh arrival after the
    /// deterministic backoff delay, as the next attempt of its root
    /// submission.
    fn schedule_retry(&mut self, idx: usize, now: f64) {
        let retry = self.effective_retry(idx).expect("caller checked retry");
        let attempt = self.outcomes[idx].attempt + 1;
        let root = self.outcomes[idx].retry_of.unwrap_or(idx);
        let arrival = now + retry.delay_hours(attempt);
        let request = self.requests[idx].clone();
        let new_idx = self.outcomes.len();
        let mut pending = TenantOutcome::pending(request.tenant.clone(), arrival);
        pending.retry_of = Some(root);
        pending.attempt = attempt;
        self.outcomes.push(pending);
        // Any per-tenant-bid sweep hours were already scheduled by the
        // root submission (submit scans to the trace end), so the clone
        // only needs its arrival event.
        self.requests.push(request);
        self.sim.inject(
            arrival,
            ClockEvent::Arrival(new_idx).class(),
            ClockEvent::Arrival(new_idx),
        );
        self.arrivals_pending += 1;
        self.ensure_monitor_chain(arrival);
        self.emit(FleetEvent::Retried {
            tenant: TenantId(new_idx),
            of: TenantId(root),
            attempt,
            at_hours: now,
            arrival_hours: arrival,
        });
    }

    /// Records tenant `idx` as dead-lettered: the final attempt of a
    /// submission whose retry budget ran out.
    fn dead_letter(&mut self, idx: usize, now: f64, reason: String) {
        let o = &mut self.outcomes[idx];
        o.dead_lettered = true;
        let attempts = o.attempt + 1;
        let root = o.retry_of.unwrap_or(idx);
        self.dead_letters.push(DeadLetter {
            tenant: TenantId(idx),
            original: TenantId(root),
            tenant_name: o.tenant.clone(),
            attempts,
            at_hours: now,
            reason: reason.clone(),
        });
        self.emit(FleetEvent::DeadLettered {
            tenant: TenantId(idx),
            at_hours: now,
            attempts,
            reason,
        });
    }

    /// Clears a job's storm flag once the monitor has acted on (or given
    /// up on) the revocation.
    fn clear_storm_flag(&mut self, pid: ProcessId) {
        if let Some(job) = self.active.get_mut(&pid) {
            job.storm_hit = false;
        }
    }

    /// The capacity left over at fleet hour `at` once every active job's
    /// future node commitments are subtracted, excluding `exclude` (used
    /// when re-planning that job: its own schedule is about to be
    /// replaced).
    fn residual_pool(&self, at: f64, exclude: Option<ProcessId>) -> ResourcePool {
        let pool = {
            let mut index = self.residual_index.borrow_mut();
            index.sync(&self.active);
            index.residual(&self.pool, at, exclude)
        };
        #[cfg(debug_assertions)]
        {
            let check = self.residual_pool_recompute(at, exclude);
            debug_assert_eq!(
                pool.compute.iter().map(|c| c.max_nodes).collect::<Vec<_>>(),
                check
                    .compute
                    .iter()
                    .map(|c| c.max_nodes)
                    .collect::<Vec<_>>(),
                "incremental residual index diverged from full recompute at t={at}"
            );
        }
        pool
    }

    /// The original full resample: clone the pool, collect every sample
    /// point, and re-evaluate every job's schedule at each one. Retained
    /// as the debug-build cross-check oracle for the incremental index
    /// (and its unit tests below exercise both paths).
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    fn residual_pool_recompute(&self, at: f64, exclude: Option<ProcessId>) -> ResourcePool {
        let mut pool = self.pool.clone();
        // Sample the fleet commitment at `at` and at every future schedule
        // step of any running job; the peak over those samples is what a
        // new plan can never have.
        let mut sample_points: Vec<f64> = vec![at];
        for (pid, job) in &self.active {
            if Some(*pid) == exclude {
                continue;
            }
            for step in job.exec.node_schedule() {
                let abs = job.start + step.from_hour;
                if abs > at + TIME_EPSILON {
                    sample_points.push(abs);
                }
            }
        }
        // Near-coincident step times (two jobs whose schedules land within
        // float noise of each other) sample identical commitments; keep one
        // representative so the peak scan does bounded work per distinct
        // instant.
        sample_points.sort_by(|a, b| a.total_cmp(b));
        sample_points.dedup_by(|next, kept| (*next - *kept).abs() <= TIME_EPSILON);
        for c in &mut pool.compute {
            let Some(cap) = c.max_nodes else {
                continue; // uncapped resources have no contention
            };
            let mut peak = 0usize;
            for &p in &sample_points {
                let mut committed = 0usize;
                for (pid, job) in &self.active {
                    if Some(*pid) == exclude {
                        continue;
                    }
                    committed += nodes_at(job.exec.node_schedule(), &c.name, p - job.start);
                }
                peak = peak.max(committed);
            }
            c.max_nodes = Some(cap.saturating_sub(peak));
        }
        pool
    }

    /// The fleet's maximum bid per spot instance-hour: the configured
    /// override, or the market's on-demand price (the rational ceiling).
    fn effective_bid(&self, market: &SpotMarket) -> f64 {
        self.config.spot_bid.unwrap_or(market.on_demand_price)
    }

    /// Per-interval price expectations from the shared spot market (empty
    /// when the fleet buys on-demand). A per-tenant bid below the market's
    /// spikes makes the out-bid hours *unavailable* to that tenant; the
    /// fluid model cannot express unavailability, so those hours are
    /// forecast at the on-demand ceiling — the price of the fallback that
    /// would actually keep the plan's node-hours.
    fn price_forecast(
        &self,
        now: f64,
        horizon: usize,
        tenant_bid: Option<f64>,
    ) -> BTreeMap<String, Vec<f64>> {
        let mut forecast = BTreeMap::new();
        if let Some(market) = &self.config.spot_market {
            // Epsilon-nudged like every other hour-bucket conversion in
            // this file: a clock sitting just below an hour boundary
            // (e.g. 5.999999999 after accumulated float steps) must
            // forecast from hour 6, not re-read the expiring hour 5
            // price for the whole horizon window.
            let start = (now + TIME_EPSILON).floor().max(0.0) as usize;
            let mut prices = market.price_forecast(start, horizon);
            // An open breaker prices every remote hour at the on-demand
            // ceiling: the fleet has stopped trusting the trace, so plans
            // must pencil in the price of the capacity they would
            // actually get (on-demand fallback, or ceiling-priced spot).
            if self.breaker.as_ref().is_some_and(|b| b.is_engaged()) {
                for price in prices.iter_mut() {
                    *price = market.on_demand_price;
                }
            } else if let Some(bid) = tenant_bid {
                for (offset, price) in prices.iter_mut().enumerate() {
                    if market.out_bid_at(start + offset, bid) {
                        *price = market.on_demand_price;
                    }
                }
            }
            for c in &self.pool.compute {
                if !c.is_local {
                    forecast.insert(c.name.clone(), prices.clone());
                }
            }
        }
        forecast
    }

    // ---- checkpoint / restore / replay ----------------------------------

    /// A complete serializable image of the paused session: logical clock,
    /// the pending event heap verbatim, every tenant's execution state,
    /// billing, policy state (gate, breaker, dead letters), the admission
    /// plan cache, the event log, and the exact solver-context bytes —
    /// everything [`restore`](Self::restore) needs to continue bit for
    /// bit. The catalog, pool and config are *not* captured (they are
    /// session inputs; `restore` takes them as arguments), and neither
    /// are observers (processes, not data).
    ///
    /// Checkpoints are meaningful at event-batch boundaries, which is
    /// everywhere the public API can observe: `submit`, `cancel`,
    /// `step_until`, [`step_one_batch`](Self::step_one_batch) and
    /// `run_to_quiescence` all return with the current batch fully
    /// applied.
    pub fn checkpoint(&self) -> FleetSnapshot {
        debug_assert!(self.batch.is_empty(), "checkpoint inside an event batch");
        FleetSnapshot {
            clock_hours: self.sim.now(),
            next_seq: self.sim.next_seq(),
            heap: self
                .sim
                .snapshot_entries()
                .into_iter()
                .map(|e| HeapEntrySnapshot {
                    at: e.at,
                    class: e.class,
                    seq: e.seq,
                    event: e.event,
                })
                .collect(),
            registry: self.registry.clone(),
            active: self
                .active
                .iter()
                .map(|(pid, job)| ActiveJobSnapshot {
                    pid: *pid,
                    request_idx: job.request_idx,
                    start: job.start,
                    exec: job.exec.snapshot(),
                    spec: job.spec.clone(),
                    goal: job.goal,
                    tenant_bid: job.tenant_bid,
                    progress_model: job.progress_model.clone(),
                    storm_hit: job.storm_hit,
                    fallback_on_demand: job.fallback_on_demand,
                })
                .collect(),
            requests: self.requests.clone(),
            outcomes: self.outcomes.clone(),
            tenant_pids: self.tenant_pids.clone(),
            cancelled: self.cancelled.clone(),
            arrivals_pending: self.arrivals_pending,
            monitor_anchor: self.monitor_anchor,
            monitor_gen: self.monitor_gen,
            monitor_next: self.monitor_next,
            monitor_live: self.monitor_live,
            monitor_fired: self.monitor_fired,
            revocation_hours_scheduled: self.revocation_hours_scheduled.clone(),
            dead_letters: self.dead_letters.clone(),
            failure_window: self.failure_window.clone(),
            breaker: self.breaker.clone(),
            probe_live: self.probe_live,
            last_hour: self.last_hour,
            stepped_to: self.stepped_to,
            events: self.events.clone(),
            solve_ctx: self.solve_ctx.export_state(),
            shadow_ctx: self.shadow_ctx.export_state(),
            plan_cache: self.plan_cache.clone(),
        }
    }

    /// Reopens a checkpointed session. The catalog, pool and config must
    /// be the ones the session was opened with — they are inputs, not
    /// state — and the snapshot supplies everything else: the restored
    /// fleet continues *bit for bit* where the checkpointed one stood
    /// (same events, same floats, same report).
    ///
    /// Construction-time schedules (revocation sweeps, fault events) are
    /// deliberately *not* re-derived here: the pending instances live in
    /// the snapshot's heap, and the already-fired ones must not fire
    /// again. Observers are not restored (re-register after restoring);
    /// the residual index is rebuilt lazily on first use.
    ///
    /// Fails with [`ConductorError::InvalidInput`] on an invalid pool or
    /// config, on non-finite snapshot floats (a NaN must never reach the
    /// event heap), or on corrupt solver-context blobs.
    pub fn restore(
        catalog: Catalog,
        pool: ResourcePool,
        config: FleetConfig,
        snapshot: &FleetSnapshot,
    ) -> Result<Self, ConductorError> {
        pool.validate().map_err(ConductorError::InvalidInput)?;
        config.validate()?;
        snapshot.validate()?;
        let solve_ctx = SolveContext::import_state(&snapshot.solve_ctx).map_err(|e| {
            ConductorError::InvalidInput(format!("corrupt solver-context blob: {e:?}"))
        })?;
        let shadow_ctx = SolveContext::import_state(&snapshot.shadow_ctx).map_err(|e| {
            ConductorError::InvalidInput(format!("corrupt shadow-context blob: {e:?}"))
        })?;
        let entries: Vec<ScheduledEvent<ClockEvent>> = snapshot
            .heap
            .iter()
            .map(|h| ScheduledEvent {
                at: h.at,
                class: h.class,
                seq: h.seq,
                event: h.event,
            })
            .collect();
        let sim = Simulator::restore(snapshot.clock_hours, entries, snapshot.next_seq);
        let mut active = BTreeMap::new();
        for j in &snapshot.active {
            active.insert(
                j.pid,
                ActiveJob {
                    request_idx: j.request_idx,
                    start: j.start,
                    exec: j.exec.restore(),
                    spec: j.spec.clone(),
                    goal: j.goal,
                    tenant_bid: j.tenant_bid,
                    progress_model: j.progress_model.clone(),
                    storm_hit: j.storm_hit,
                    fallback_on_demand: j.fallback_on_demand,
                },
            );
        }
        Ok(Self {
            catalog,
            pool,
            config,
            sim,
            registry: snapshot.registry.clone(),
            active,
            requests: snapshot.requests.clone(),
            outcomes: snapshot.outcomes.clone(),
            tenant_pids: snapshot.tenant_pids.clone(),
            cancelled: snapshot.cancelled.clone(),
            arrivals_pending: snapshot.arrivals_pending,
            monitor_anchor: snapshot.monitor_anchor,
            monitor_gen: snapshot.monitor_gen,
            monitor_next: snapshot.monitor_next,
            monitor_live: snapshot.monitor_live,
            monitor_fired: snapshot.monitor_fired,
            revocation_hours_scheduled: snapshot.revocation_hours_scheduled.clone(),
            dead_letters: snapshot.dead_letters.clone(),
            failure_window: snapshot.failure_window.clone(),
            breaker: snapshot.breaker.clone(),
            probe_live: snapshot.probe_live,
            last_hour: snapshot.last_hour,
            stepped_to: snapshot.stepped_to,
            events: snapshot.events.clone(),
            observers: Vec::new(),
            wal: None,
            wal_error: None,
            batch: Vec::new(),
            residual_index: RefCell::new(ResidualIndex::default()),
            solve_ctx,
            plan_cache: snapshot.plan_cache.clone(),
            shadow_ctx,
        })
    }

    /// Reconstructs a session by re-driving a persisted event log from
    /// scratch — the log is the source of truth, not a description of
    /// one. `Submitted` and `Cancelled` entries carry enough payload to
    /// re-issue the client call that produced them ([`FleetEvent::Submitted`]
    /// embeds the full request); every other entry is *expected output*,
    /// regenerated by stepping the clock and verified element-wise
    /// against the log as it appears. A mismatch — wrong event, wrong
    /// hour, wrong payload — aborts with [`ConductorError::InvalidInput`]
    /// naming the diverging position.
    ///
    /// The contract covers sessions driven through the public API at
    /// batch granularity (`step_until` to each submission hour, `submit`,
    /// `cancel`, `run_to_quiescence`): replay re-drives client calls at
    /// the hour the log records and lets the event loop do the rest.
    /// Returns the reconstructed fleet (heap state included) positioned
    /// exactly after the last log entry; trailing events the log did not
    /// capture (a torn WAL tail) are simply regenerated by continuing the
    /// session.
    pub fn replay(
        catalog: Catalog,
        pool: ResourcePool,
        config: FleetConfig,
        log: &[FleetEvent],
    ) -> Result<Self, ConductorError> {
        let mut fleet = Fleet::new(catalog, pool, config)?;
        while fleet.events.len() < log.len() {
            let pos = fleet.events.len();
            match &log[pos] {
                FleetEvent::Submitted {
                    at_hours, request, ..
                } => {
                    fleet.step_until(*at_hours);
                    fleet.submit(request.clone())?;
                }
                FleetEvent::Cancelled { tenant, at_hours } => {
                    fleet.step_until(*at_hours);
                    fleet.cancel(*tenant)?;
                }
                FleetEvent::MigratedOut { tenant, at_hours } => {
                    fleet.step_until(*at_hours);
                    fleet.migrate_out(*tenant)?;
                }
                FleetEvent::MonitorAligned {
                    at_hours,
                    arrival_hours,
                } => {
                    fleet.step_until(*at_hours);
                    fleet.align_monitor(*arrival_hours)?;
                }
                expected => {
                    // An internal event: drive the clock until the loop
                    // emits something. Batches that emit nothing (e.g.
                    // superseded monitor ticks) are drained silently; an
                    // empty heap with jobs still active is the live
                    // session's final-drain stall point.
                    if !fleet.drain_one_batch() && !fleet.abort_stalled_jobs() {
                        return Err(ConductorError::InvalidInput(format!(
                            "replay diverged at log position {pos}: log expects \
                             {expected:?} but the session is quiescent"
                        )));
                    }
                }
            }
            let upto = fleet.events.len().min(log.len());
            for (k, expected) in log.iter().enumerate().take(upto).skip(pos) {
                if fleet.events[k] != *expected {
                    return Err(ConductorError::InvalidInput(format!(
                        "replay diverged at log position {k}: log has {expected:?}, \
                         session produced {:?}",
                        fleet.events[k]
                    )));
                }
            }
        }
        Ok(fleet)
    }
}

/// One pending entry of the fleet clock's event heap, exactly as the
/// simulator reports it (pop order: time, then class, then insertion
/// sequence). A non-generic mirror of `ScheduledEvent<ClockEvent>` so the
/// snapshot can derive serde.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct HeapEntrySnapshot {
    at: f64,
    class: u8,
    seq: u64,
    event: ClockEvent,
}

/// One active job's serializable image: its process id plus everything
/// [`ActiveJob`] holds, with the execution captured as an
/// [`ExecutionSnapshot`].
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ActiveJobSnapshot {
    pid: ProcessId,
    request_idx: usize,
    start: f64,
    exec: ExecutionSnapshot,
    spec: JobSpec,
    goal: Goal,
    tenant_bid: Option<f64>,
    progress_model: Vec<(f64, f64)>,
    storm_hit: bool,
    fallback_on_demand: bool,
}

/// A serializable image of a paused [`Fleet`] session, produced by
/// [`Fleet::checkpoint`] and consumed by [`Fleet::restore`]. Opaque by
/// design — the only supported operations are the JSON codec
/// ([`to_json`](Self::to_json) / [`from_json`](Self::from_json)) and
/// `restore`; the fields track `Fleet`'s internals and are not a stable
/// public schema.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetSnapshot {
    clock_hours: f64,
    next_seq: u64,
    heap: Vec<HeapEntrySnapshot>,
    registry: ProcessRegistry,
    active: Vec<ActiveJobSnapshot>,
    requests: Vec<FleetJobRequest>,
    outcomes: Vec<TenantOutcome>,
    tenant_pids: BTreeMap<usize, ProcessId>,
    cancelled: BTreeSet<usize>,
    arrivals_pending: usize,
    monitor_anchor: Option<f64>,
    monitor_gen: u64,
    monitor_next: f64,
    monitor_live: bool,
    monitor_fired: bool,
    revocation_hours_scheduled: BTreeSet<usize>,
    dead_letters: Vec<DeadLetter>,
    failure_window: Option<FailureWindow>,
    breaker: Option<SpotBreaker>,
    probe_live: bool,
    last_hour: f64,
    stepped_to: f64,
    events: Vec<FleetEvent>,
    solve_ctx: String,
    shadow_ctx: String,
    plan_cache: PlanCache,
}

impl FleetSnapshot {
    /// Serializes the snapshot to a JSON string. The codec is exact:
    /// floats render shortest-round-trip, u64s beyond 2^53 go through
    /// strings, so `from_json(to_json(s))` reproduces `s` bit for bit.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("fleet snapshot serializes")
    }

    /// Deserializes a snapshot from [`to_json`](Self::to_json) output.
    ///
    /// Fails with [`ConductorError::InvalidInput`] on malformed JSON or
    /// on non-finite floats in positions that feed the event heap or the
    /// fleet clock — the same guard [`Fleet::submit`] applies at the
    /// front door, mirrored here so a tampered checkpoint cannot smuggle
    /// a NaN past it.
    pub fn from_json(text: &str) -> Result<Self, ConductorError> {
        let snapshot: FleetSnapshot = serde_json::from_str(text)
            .map_err(|e| ConductorError::InvalidInput(format!("fleet snapshot JSON: {e}")))?;
        snapshot.validate()?;
        Ok(snapshot)
    }

    /// The clock/heap finiteness guards shared by [`Self::from_json`] and
    /// [`Fleet::restore`].
    fn validate(&self) -> Result<(), ConductorError> {
        let finite = |name: &str, v: f64| -> Result<(), ConductorError> {
            if v.is_finite() {
                Ok(())
            } else {
                Err(ConductorError::InvalidInput(format!(
                    "fleet snapshot: non-finite {name} {v}"
                )))
            }
        };
        finite("clock hour", self.clock_hours)?;
        finite("last batch hour", self.last_hour)?;
        finite("stepped-to hour", self.stepped_to)?;
        finite("monitor tick hour", self.monitor_next)?;
        if let Some(anchor) = self.monitor_anchor {
            finite("monitor anchor", anchor)?;
        }
        for entry in &self.heap {
            finite("heap event hour", entry.at)?;
        }
        for request in &self.requests {
            finite("request arrival hour", request.arrival_hours)?;
            if let Some(bid) = request.spot_bid {
                finite("request spot bid", bid)?;
            }
        }
        for job in &self.active {
            finite("job start hour", job.start)?;
        }
        Ok(())
    }
}

/// `(fleet_hour, cumulative expected map GB)` checkpoints implied by a
/// plan starting at `start` with `done_gb` of the input already processed.
fn progress_checkpoints(start: f64, done_gb: f64, plan: &ExecutionPlan) -> Vec<(f64, f64)> {
    let mut out = Vec::with_capacity(plan.intervals.len());
    let mut cum = done_gb;
    for (k, interval) in plan.intervals.iter().enumerate() {
        cum += interval.map_gb;
        out.push((start + (k as f64 + 1.0) * plan.interval_hours, cum));
    }
    out
}

/// Expected cumulative map progress at fleet hour `now` (the last fully
/// elapsed checkpoint; zero before the first).
fn expected_progress(checkpoints: &[(f64, f64)], now: f64) -> f64 {
    checkpoints
        .iter()
        .take_while(|(h, _)| *h <= now + TIME_EPSILON)
        .last()
        .map(|(_, gb)| *gb)
        .unwrap_or(0.0)
}

/// Inverse of [`ExecutionPlan::default_location_map`]: engine locations
/// back to pool storage-resource names, for building re-planning state.
fn location_to_storage_names() -> BTreeMap<conductor_mapreduce::DataLocation, &'static str> {
    use conductor_mapreduce::DataLocation;
    let mut m = BTreeMap::new();
    m.insert(DataLocation::S3, "S3");
    m.insert(DataLocation::InstanceDisk, "EC2-disk");
    m.insert(DataLocation::LocalDisk, "local-disk");
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::IntervalPlan;
    use conductor_mapreduce::Workload;
    use std::time::Duration;

    fn fast_config() -> FleetConfig {
        FleetConfig {
            solve_options: SolveOptions {
                relative_gap: 0.02,
                max_nodes: 2_000,
                time_limit: Duration::from_secs(30),
                ..Default::default()
            },
            ..FleetConfig::default()
        }
    }

    fn fleet(cap: usize) -> Fleet {
        let catalog = Catalog::aws_july_2011();
        let pool = ResourcePool::from_catalog(&catalog, 1.0)
            .with_compute_only(&["m1.large"])
            .with_compute_cap("m1.large", cap);
        Fleet::new(catalog, pool, fast_config()).unwrap()
    }

    fn request(tenant: &str, arrival: f64, deadline: f64) -> FleetJobRequest {
        FleetJobRequest::new(
            tenant,
            Workload::KMeans32Gb.spec(),
            Goal::MinimizeCost {
                deadline_hours: deadline,
            },
            arrival,
        )
    }

    #[test]
    fn residual_capacity_shrinks_under_load() {
        let mut f = fleet(20);
        let residual = f.residual_pool(0.0, None);
        assert_eq!(
            residual.compute_resource("m1.large").unwrap().max_nodes,
            Some(20)
        );
        // Admit one job and check the leftover.
        f.submit(request("a", 0.0, 6.0)).unwrap();
        let (job, _, _, _) = f.admit(0, 0.0).expect("admission succeeds");
        let peak: usize = job
            .exec
            .node_schedule()
            .iter()
            .map(|s| s.nodes)
            .max()
            .unwrap_or(0);
        assert!(peak > 0);
        f.active.insert(ProcessId(0), job);
        let residual = f.residual_pool(0.0, None);
        assert_eq!(
            residual.compute_resource("m1.large").unwrap().max_nodes,
            Some(20 - peak)
        );
        // Excluding the job restores the full fleet cap.
        let residual = f.residual_pool(0.0, Some(ProcessId(0)));
        assert_eq!(
            residual.compute_resource("m1.large").unwrap().max_nodes,
            Some(20)
        );
    }

    #[test]
    fn progress_checkpoints_accumulate_and_sample() {
        let plan = ExecutionPlan {
            interval_hours: 1.0,
            intervals: vec![
                IntervalPlan {
                    map_gb: 4.0,
                    ..Default::default()
                },
                IntervalPlan {
                    map_gb: 6.0,
                    ..Default::default()
                },
            ],
            expected_cost: 0.0,
            expected_completion_hours: 2.0,
            proven_optimal: true,
        };
        let cps = progress_checkpoints(2.0, 1.0, &plan);
        assert_eq!(cps, vec![(3.0, 5.0), (4.0, 11.0)]);
        assert_eq!(expected_progress(&cps, 2.5), 0.0);
        assert_eq!(expected_progress(&cps, 3.0), 5.0);
        assert_eq!(expected_progress(&cps, 10.0), 11.0);
    }

    #[test]
    fn invalid_config_and_submissions_are_rejected() {
        let catalog = Catalog::aws_july_2011();
        let pool = ResourcePool::from_catalog(&catalog, 1.0).with_compute_only(&["m1.large"]);

        let bad = FleetConfig {
            monitor_tolerance: f64::NAN,
            ..fast_config()
        };
        assert!(matches!(
            Fleet::new(catalog.clone(), pool.clone(), bad),
            Err(ConductorError::InvalidInput(_))
        ));
        let bad = FleetConfig {
            monitor_period_hours: -1.0,
            ..fast_config()
        };
        assert!(matches!(
            Fleet::new(catalog.clone(), pool.clone(), bad),
            Err(ConductorError::InvalidInput(_))
        ));
        let bad = FleetConfig {
            spot_bid: Some(f64::NAN),
            ..fast_config()
        };
        assert!(matches!(
            Fleet::new(catalog.clone(), pool.clone(), bad),
            Err(ConductorError::InvalidInput(_))
        ));

        let mut f = Fleet::new(catalog, pool, fast_config()).unwrap();
        assert!(matches!(
            f.submit(request("nan", f64::NAN, 6.0)),
            Err(ConductorError::InvalidInput(_))
        ));
        assert!(matches!(
            f.submit(request("past", -1.0, 6.0)),
            Err(ConductorError::InvalidInput(_))
        ));
        assert!(matches!(
            f.submit(request("bid", 0.0, 6.0).with_spot_bid(-0.10)),
            Err(ConductorError::InvalidInput(_))
        ));
        assert!(matches!(
            f.cancel(TenantId(7)),
            Err(ConductorError::InvalidInput(_))
        ));
        assert!(f.events.is_empty(), "failed submissions emit nothing");
    }

    #[test]
    fn monitor_grid_revives_on_the_batch_chain() {
        // Anchor at 0.5, period 1.0: ticks at 1.5, 2.5, … — after the chain
        // goes quiet and the clock moves to 7.2, the revived chain must
        // land on 7.5, not 8.2.
        let mut f = fleet(10);
        f.monitor_anchor = Some(0.5);
        f.monitor_fired = true;
        f.monitor_live = false;
        f.stepped_to = 7.2;
        f.ensure_monitor_chain(7.2);
        assert!((f.monitor_next - 7.5).abs() < 1e-12, "{}", f.monitor_next);
        assert!(f.monitor_live);
    }

    #[test]
    fn report_index_and_outcome_filters() {
        let mut a = TenantOutcome::pending("a".into(), 0.0);
        a.admitted = true;
        a.execution = None;
        a.failure = Some("boom".into());
        let b = TenantOutcome::pending("b".into(), 1.0);
        let report = FleetReport::from_outcomes(vec![a, b.clone()]);
        assert_eq!(report.tenant("a").unwrap().arrival_hours, 0.0);
        assert_eq!(report.tenant("b").unwrap().arrival_hours, 1.0);
        assert!(report.tenant("missing").is_none());
        assert_eq!(report.tenants_by_outcome(OutcomeClass::Failed).count(), 1);
        assert_eq!(report.tenants_by_outcome(OutcomeClass::Rejected).count(), 1);
        assert_eq!(
            report.tenants_by_outcome(OutcomeClass::Completed).count(),
            0
        );
        // A hand-built report without an index still resolves by scan.
        let hand_built = FleetReport {
            tenant_index: BTreeMap::new(),
            ..report.clone()
        };
        assert_eq!(hand_built.tenant("b").unwrap().tenant, "b");
        // Duplicate names resolve to the first occurrence, like the old scan.
        let dup = FleetReport::from_outcomes(vec![
            TenantOutcome::pending("x".into(), 3.0),
            TenantOutcome::pending("x".into(), 9.0),
        ]);
        assert_eq!(dup.tenant("x").unwrap().arrival_hours, 3.0);
    }
}
