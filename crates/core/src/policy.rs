//! The failure-policy layer: what the fleet *does* about failure.
//!
//! Conductor's pitch is surviving a hostile cloud — spot revocations,
//! stragglers, mispredicted throughput — yet a tenant that fails or
//! misses its deadline would otherwise just land in an outcome bucket.
//! [`FailurePolicy`] turns those terminal events into policy decisions,
//! all of them on the deterministic event loop (no wall clock, no
//! entropy at run time), so a policied fleet replays bit for bit:
//!
//! - [`FaultPlan`] — seeded, pre-materialized fault injection (task
//!   failures and node crashes on the shared sim clock), so there is
//!   something to be robust *against*, reproducibly.
//! - [`RetryPolicy`] — per-tenant retry with exponential backoff and a
//!   jitter-free deterministic delay: a failed (or, optionally, late)
//!   tenant is re-submitted as a fresh arrival against the residual
//!   capacity of the retry hour.
//! - Dead-lettering — a tenant that exhausts its retry budget lands in
//!   the fleet's [dead-letter queue](crate::fleet::Fleet::dead_letters)
//!   as a [`DeadLetter`] record instead of silently vanishing.
//! - [`FailureThreshold`] / [`FailureWindow`] — fleet-level admission
//!   control: when more than `pause_above` of the last `window`
//!   terminal outcomes are failures, new arrivals are refused until the
//!   fraction sinks below `resume_below` (hysteresis, so the gate does
//!   not flap).
//! - [`CircuitBreakerConfig`] / [`SpotBreaker`] — a circuit breaker on
//!   the spot market: after `strike_threshold` revocation strikes
//!   within `window_hours`, planning stops acquiring spot (every remote
//!   hour is forecast at the on-demand ceiling) until the trace shows
//!   `success_threshold_hours` clean hours; the
//!   [`FallbackTier::OnDemand`] fallback pays the ceiling to keep the
//!   deadline instead of waiting out the market.
//!
//! The config shape (per-item failure action + breaker thresholds)
//! follows the `error_policy` blocks of production orchestrators; the
//! state machines live here, the wiring lives in [`crate::fleet`].

use crate::error::ConductorError;
use crate::fleet::TenantId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// What a single injected fault does to its victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The victim's execution is aborted outright (a lost coordinator, a
    /// poisoned work queue): the tenant fails at the fault hour and its
    /// partial bill stays on the fleet bill. Retry policy decides what
    /// happens next.
    TaskFailure,
    /// The victim's cloud nodes are terminated (a correlated hardware or
    /// AZ failure, indistinguishable on the victim's side from a spot
    /// revocation): the execution reconciles, the monitor re-plans.
    NodeCrash,
}

/// One scheduled fault on the fleet clock.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Fleet-clock hour the fault fires.
    pub at_hours: f64,
    /// What it does.
    pub kind: FaultKind,
    /// Deterministic victim-selection salt: the victim is the running
    /// job at index `salt % active_jobs` (in process-id order) when the
    /// fault fires. Pre-drawn at plan construction so run-time victim
    /// choice costs no entropy.
    pub salt: u64,
}

/// A seeded, pre-materialized schedule of fault injections.
///
/// Like the revocation sweeps, the whole plan is drawn up front from one
/// seed and becomes first-class events on the shared clock — two fleets
/// built from the same seed inject byte-identical fault sequences.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The scheduled faults, sorted by `(at_hours, salt)`.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Draws `task_failures` task-failure and `node_crashes` node-crash
    /// events uniformly over `[0, horizon_hours)` from `seed`, sorted by
    /// time (ties broken by the pre-drawn salt, never by map iteration
    /// order). A non-positive horizon yields an empty plan.
    pub fn seeded(
        seed: u64,
        horizon_hours: f64,
        task_failures: usize,
        node_crashes: usize,
    ) -> Self {
        if !horizon_hours.is_finite() || horizon_hours <= 0.0 {
            return Self::default();
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut events = Vec::with_capacity(task_failures + node_crashes);
        for _ in 0..task_failures {
            events.push(FaultEvent {
                at_hours: rng.gen_range(0.0..horizon_hours),
                kind: FaultKind::TaskFailure,
                salt: rng.gen(),
            });
        }
        for _ in 0..node_crashes {
            events.push(FaultEvent {
                at_hours: rng.gen_range(0.0..horizon_hours),
                kind: FaultKind::NodeCrash,
                salt: rng.gen(),
            });
        }
        events.sort_by(|a, b| {
            a.at_hours
                .total_cmp(&b.at_hours)
                .then_with(|| a.salt.cmp(&b.salt))
        });
        Self { events }
    }

    /// Checks the plan's event times once, so a NaN hour can never reach
    /// the event heap.
    pub fn validate(&self) -> Result<(), ConductorError> {
        for e in &self.events {
            if !e.at_hours.is_finite() || e.at_hours < 0.0 {
                return Err(ConductorError::InvalidInput(format!(
                    "fault plan contains invalid hour {}",
                    e.at_hours
                )));
            }
        }
        Ok(())
    }
}

/// Per-tenant retry with exponential backoff and deterministic,
/// jitter-free delays (jitter decorrelates real clients; a simulated
/// fleet wants reproducibility, and the shared clock already serializes
/// the re-arrivals).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Retry attempts granted beyond the original run. `0` sends every
    /// failure straight to the dead-letter queue.
    pub max_retries: usize,
    /// Delay before the first retry, in fleet hours.
    pub backoff_base_hours: f64,
    /// Multiplier applied per further attempt
    /// (`delay(n) = base * factor^(n-1)`). Must be ≥ 1.
    pub backoff_factor: f64,
    /// Whether a job that *completed* but missed its deadline is retried
    /// too (a fresh attempt may hit a calmer market). Exhausting the
    /// budget on late completions does not dead-letter — the work did
    /// finish.
    pub retry_deadline_missed: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 2,
            backoff_base_hours: 0.5,
            backoff_factor: 2.0,
            retry_deadline_missed: true,
        }
    }
}

impl RetryPolicy {
    /// The deterministic backoff delay before retry `attempt` (1-based):
    /// `base * factor^(attempt-1)`.
    pub fn delay_hours(&self, attempt: usize) -> f64 {
        self.backoff_base_hours * self.backoff_factor.powi(attempt.saturating_sub(1) as i32)
    }

    /// Checks the knobs once at fleet construction.
    pub fn validate(&self) -> Result<(), ConductorError> {
        if !self.backoff_base_hours.is_finite() || self.backoff_base_hours < 0.0 {
            return Err(ConductorError::InvalidInput(format!(
                "retry backoff base must be finite and non-negative, got {}",
                self.backoff_base_hours
            )));
        }
        if !self.backoff_factor.is_finite() || self.backoff_factor < 1.0 {
            return Err(ConductorError::InvalidInput(format!(
                "retry backoff factor must be finite and at least 1, got {}",
                self.backoff_factor
            )));
        }
        Ok(())
    }
}

/// A tenant that exhausted its retry budget: the fleet's dead-letter
/// queue entry, queryable via [`crate::fleet::Fleet::dead_letters`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeadLetter {
    /// The final (dead-lettered) attempt's tenant handle.
    pub tenant: TenantId,
    /// The root submission the attempts descend from.
    pub original: TenantId,
    /// Tenant name, for reports.
    pub tenant_name: String,
    /// Attempts consumed, including the original run.
    pub attempts: usize,
    /// Fleet-clock hour the budget ran out.
    pub at_hours: f64,
    /// The final attempt's failure (or rejection) reason.
    pub reason: String,
}

/// Fleet-level admission control over the recent failure rate, with
/// hysteresis so the gate does not flap at the threshold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureThreshold {
    /// Number of most-recent terminal outcomes considered.
    pub window: usize,
    /// Admission pauses when the failure fraction rises strictly above
    /// this.
    pub pause_above: f64,
    /// Admission resumes when the fraction sinks strictly below this
    /// (must be ≤ `pause_above`).
    pub resume_below: f64,
    /// Outcomes required before the gate may act at all (a single early
    /// failure is 100% of a tiny sample).
    pub min_samples: usize,
}

impl Default for FailureThreshold {
    fn default() -> Self {
        Self {
            window: 20,
            pause_above: 0.5,
            resume_below: 0.25,
            min_samples: 5,
        }
    }
}

impl FailureThreshold {
    /// Checks the knobs once at fleet construction.
    pub fn validate(&self) -> Result<(), ConductorError> {
        if self.window == 0 {
            return Err(ConductorError::InvalidInput(
                "failure threshold window must hold at least one outcome".into(),
            ));
        }
        if !self.pause_above.is_finite() || !(0.0..=1.0).contains(&self.pause_above) {
            return Err(ConductorError::InvalidInput(format!(
                "failure threshold pause fraction must be within [0, 1], got {}",
                self.pause_above
            )));
        }
        if !self.resume_below.is_finite()
            || self.resume_below < 0.0
            || self.resume_below > self.pause_above
        {
            return Err(ConductorError::InvalidInput(format!(
                "failure threshold resume fraction must be within [0, pause_above], got {}",
                self.resume_below
            )));
        }
        if self.min_samples == 0 || self.min_samples > self.window {
            return Err(ConductorError::InvalidInput(format!(
                "failure threshold min_samples must be within [1, window], got {}",
                self.min_samples
            )));
        }
        Ok(())
    }
}

/// The admission gate's edge transitions, as reported by
/// [`FailureWindow::record`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionChange {
    /// The failure fraction crossed above `pause_above`: stop admitting.
    Paused,
    /// The fraction sank below `resume_below`: admit again.
    Resumed,
}

/// Runtime state of the [`FailureThreshold`] gate: a sliding window of
/// the last-N terminal outcomes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FailureWindow {
    config: FailureThreshold,
    samples: VecDeque<bool>,
    paused: bool,
}

impl FailureWindow {
    /// An empty (admitting) window under `config`.
    pub fn new(config: FailureThreshold) -> Self {
        Self {
            config,
            samples: VecDeque::with_capacity(config.window),
            paused: false,
        }
    }

    /// Records one terminal outcome (`failed = true` for failures and
    /// missed deadlines) and returns the gate transition it caused, if
    /// any. Below `min_samples` the gate never acts.
    pub fn record(&mut self, failed: bool) -> Option<AdmissionChange> {
        self.samples.push_back(failed);
        while self.samples.len() > self.config.window {
            self.samples.pop_front();
        }
        if self.samples.len() < self.config.min_samples {
            return None;
        }
        let fraction = self.failure_fraction();
        if !self.paused && fraction > self.config.pause_above {
            self.paused = true;
            return Some(AdmissionChange::Paused);
        }
        if self.paused && fraction < self.config.resume_below {
            self.paused = false;
            return Some(AdmissionChange::Resumed);
        }
        None
    }

    /// Fraction of failures in the current window (zero when empty).
    pub fn failure_fraction(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().filter(|&&f| f).count() as f64 / self.samples.len() as f64
    }

    /// `true` while the gate refuses new admissions.
    pub fn is_paused(&self) -> bool {
        self.paused
    }

    /// The gate's configuration.
    pub fn config(&self) -> &FailureThreshold {
        &self.config
    }
}

/// Where a tenant's capacity comes from while the spot breaker is open.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FallbackTier {
    /// No fallback: admissions plan against ceiling-priced forecasts but
    /// still buy (ceiling-priced) spot — they wait the market out.
    None,
    /// Pay the on-demand ceiling for real: sessions admitted while the
    /// breaker is open are priced on-demand and are immune to
    /// revocation sweeps — the deadline is kept at the price of the
    /// spot discount.
    OnDemand,
}

/// Circuit breaker over the spot market's revocation behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CircuitBreakerConfig {
    /// Revocation strikes within `window_hours` that trip the breaker.
    pub strike_threshold: usize,
    /// Width of the sliding strike window, in fleet hours.
    pub window_hours: f64,
    /// Consecutive clean (not out-bid) trace hours required before the
    /// breaker half-opens, and one more before it closes.
    pub success_threshold_hours: usize,
    /// What admissions buy while the breaker is open.
    pub fallback: FallbackTier,
}

impl Default for CircuitBreakerConfig {
    fn default() -> Self {
        Self {
            strike_threshold: 3,
            window_hours: 6.0,
            success_threshold_hours: 3,
            fallback: FallbackTier::OnDemand,
        }
    }
}

impl CircuitBreakerConfig {
    /// Checks the knobs once at fleet construction.
    pub fn validate(&self) -> Result<(), ConductorError> {
        if self.strike_threshold == 0 {
            return Err(ConductorError::InvalidInput(
                "breaker strike threshold must be at least 1".into(),
            ));
        }
        if !self.window_hours.is_finite() || self.window_hours <= 0.0 {
            return Err(ConductorError::InvalidInput(format!(
                "breaker window must be a finite positive number of hours, got {}",
                self.window_hours
            )));
        }
        if self.success_threshold_hours == 0 {
            return Err(ConductorError::InvalidInput(
                "breaker success threshold must be at least 1 clean hour".into(),
            ));
        }
        Ok(())
    }
}

/// The breaker's state, in the classic three-state scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Normal operation: spot acquired and forecast at trace prices.
    Closed,
    /// Tripped: planning prices every remote hour at the on-demand
    /// ceiling; with [`FallbackTier::OnDemand`], admissions buy
    /// on-demand outright.
    Open,
    /// Probation after `success_threshold_hours` clean hours: spot is
    /// acquired again; one more clean hour closes the breaker, one
    /// strike reopens it.
    HalfOpen,
}

/// An edge transition of the [`SpotBreaker`], as reported by
/// [`on_strike`](SpotBreaker::on_strike) /
/// [`on_probe`](SpotBreaker::on_probe).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerTransition {
    /// Closed → Open: the strike threshold was reached.
    Opened,
    /// Open → HalfOpen: the clean-hour streak reached the success
    /// threshold.
    HalfOpened,
    /// HalfOpen → Closed: the probation hour was clean too.
    Closed,
    /// HalfOpen → Open: a strike (or dirty probe) during probation.
    Reopened,
}

/// Runtime state machine of the spot-market circuit breaker.
///
/// Strikes come from revocation sweeps that out-bid at least one running
/// job; probes come from the fleet's hourly breaker-probe events, which
/// check the trace hour just elapsed. Everything is driven by the
/// deterministic event loop — the breaker holds no clock of its own.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpotBreaker {
    config: CircuitBreakerConfig,
    state: BreakerState,
    /// Strike hours within the sliding window, oldest first.
    strikes: VecDeque<f64>,
    /// Consecutive clean probe hours while open.
    clean_streak: usize,
    /// Hour the breaker last opened, while it remains open.
    opened_at: Option<f64>,
    /// Open-state hours accumulated over closed episodes.
    open_hours_accum: f64,
}

impl SpotBreaker {
    /// A closed breaker under `config`.
    pub fn new(config: CircuitBreakerConfig) -> Self {
        Self {
            config,
            state: BreakerState::Closed,
            strikes: VecDeque::new(),
            clean_streak: 0,
            opened_at: None,
            open_hours_accum: 0.0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// The breaker's configuration.
    pub fn config(&self) -> &CircuitBreakerConfig {
        &self.config
    }

    /// `true` while planning must avoid the spot market (forecast at the
    /// ceiling, fallback tier engaged). Half-open probation buys spot
    /// again — that *is* the probe.
    pub fn is_engaged(&self) -> bool {
        self.state == BreakerState::Open
    }

    /// Strikes currently inside the sliding window.
    pub fn strikes_in_window(&self) -> usize {
        self.strikes.len()
    }

    /// Records a revocation strike at fleet hour `hour` and returns the
    /// transition it caused, if any.
    pub fn on_strike(&mut self, hour: f64) -> Option<BreakerTransition> {
        self.strikes.push_back(hour);
        let cutoff = hour - self.config.window_hours;
        while self.strikes.front().is_some_and(|&h| h < cutoff) {
            self.strikes.pop_front();
        }
        match self.state {
            BreakerState::Closed => {
                if self.strikes.len() >= self.config.strike_threshold {
                    self.state = BreakerState::Open;
                    self.opened_at = Some(hour);
                    self.clean_streak = 0;
                    Some(BreakerTransition::Opened)
                } else {
                    None
                }
            }
            BreakerState::Open => {
                // The market is still hostile: restart the clean streak.
                self.clean_streak = 0;
                None
            }
            BreakerState::HalfOpen => {
                self.state = BreakerState::Open;
                self.opened_at = Some(hour);
                self.clean_streak = 0;
                Some(BreakerTransition::Reopened)
            }
        }
    }

    /// Records one hourly probe of the trace (`clean = true` when the
    /// elapsed hour was not out-bid at the fleet's bid) and returns the
    /// transition it caused, if any. Probes while closed are no-ops.
    pub fn on_probe(&mut self, hour: f64, clean: bool) -> Option<BreakerTransition> {
        match (self.state, clean) {
            (BreakerState::Closed, _) => None,
            (BreakerState::Open, true) => {
                self.clean_streak += 1;
                if self.clean_streak >= self.config.success_threshold_hours {
                    if let Some(opened) = self.opened_at.take() {
                        self.open_hours_accum += (hour - opened).max(0.0);
                    }
                    self.state = BreakerState::HalfOpen;
                    Some(BreakerTransition::HalfOpened)
                } else {
                    None
                }
            }
            (BreakerState::Open, false) => {
                self.clean_streak = 0;
                None
            }
            (BreakerState::HalfOpen, true) => {
                self.state = BreakerState::Closed;
                self.strikes.clear();
                self.clean_streak = 0;
                Some(BreakerTransition::Closed)
            }
            (BreakerState::HalfOpen, false) => {
                self.state = BreakerState::Open;
                self.opened_at = Some(hour);
                self.clean_streak = 0;
                Some(BreakerTransition::Reopened)
            }
        }
    }

    /// Total fleet hours spent in the open state, counting a still-open
    /// episode up to `now`.
    pub fn open_hours(&self, now: f64) -> f64 {
        self.open_hours_accum
            + self
                .opened_at
                .map(|opened| (now - opened).max(0.0))
                .unwrap_or(0.0)
    }
}

/// The fleet's failure policy: every sub-policy is opt-in, and the
/// default (`FailurePolicy::default()`) is completely inert — a fleet
/// without a policy behaves bit-for-bit as before.
#[derive(Debug, Clone, Default)]
pub struct FailurePolicy {
    /// Seeded fault injection schedule.
    pub fault_plan: Option<FaultPlan>,
    /// Per-tenant retry with backoff; failures dead-letter when the
    /// budget runs out.
    pub retry: Option<RetryPolicy>,
    /// Fleet-level admission gate over the recent failure rate.
    pub failure_threshold: Option<FailureThreshold>,
    /// Circuit breaker on the spot market.
    pub circuit_breaker: Option<CircuitBreakerConfig>,
}

impl FailurePolicy {
    /// `true` when every sub-policy is disabled (the default).
    pub fn is_inert(&self) -> bool {
        self.fault_plan.is_none()
            && self.retry.is_none()
            && self.failure_threshold.is_none()
            && self.circuit_breaker.is_none()
    }

    /// Checks every enabled sub-policy once at fleet construction.
    pub fn validate(&self) -> Result<(), ConductorError> {
        if let Some(plan) = &self.fault_plan {
            plan.validate()?;
        }
        if let Some(retry) = &self.retry {
            retry.validate()?;
        }
        if let Some(threshold) = &self.failure_threshold {
            threshold.validate()?;
        }
        if let Some(breaker) = &self.circuit_breaker {
            breaker.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_delays_are_deterministic_and_exponential() {
        let retry = RetryPolicy {
            max_retries: 3,
            backoff_base_hours: 0.5,
            backoff_factor: 2.0,
            retry_deadline_missed: true,
        };
        assert!((retry.delay_hours(1) - 0.5).abs() < 1e-12);
        assert!((retry.delay_hours(2) - 1.0).abs() < 1e-12);
        assert!((retry.delay_hours(3) - 2.0).abs() < 1e-12);
        // Attempt 0 (never issued) degrades to the base, not a panic.
        assert!((retry.delay_hours(0) - 0.5).abs() < 1e-12);
        // Factor 1 = constant delay.
        let flat = RetryPolicy {
            backoff_factor: 1.0,
            ..retry
        };
        assert!((flat.delay_hours(4) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fault_plans_are_seeded_sorted_and_bounded() {
        let a = FaultPlan::seeded(42, 12.0, 5, 3);
        let b = FaultPlan::seeded(42, 12.0, 5, 3);
        assert_eq!(a, b, "same seed, same plan");
        assert_ne!(a, FaultPlan::seeded(43, 12.0, 5, 3));
        assert_eq!(a.events.len(), 8);
        assert_eq!(
            a.events
                .iter()
                .filter(|e| e.kind == FaultKind::TaskFailure)
                .count(),
            5
        );
        for w in a.events.windows(2) {
            assert!(w[0].at_hours <= w[1].at_hours, "plan must be time-sorted");
        }
        for e in &a.events {
            assert!((0.0..12.0).contains(&e.at_hours));
        }
        assert!(a.validate().is_ok());
        // Degenerate horizons yield empty plans instead of panicking.
        assert!(FaultPlan::seeded(1, 0.0, 4, 4).events.is_empty());
        assert!(FaultPlan::seeded(1, f64::NAN, 4, 4).events.is_empty());
    }

    #[test]
    fn invalid_policy_knobs_are_rejected() {
        let bad_retry = RetryPolicy {
            backoff_base_hours: f64::NAN,
            ..RetryPolicy::default()
        };
        assert!(bad_retry.validate().is_err());
        let bad_factor = RetryPolicy {
            backoff_factor: 0.5,
            ..RetryPolicy::default()
        };
        assert!(bad_factor.validate().is_err());
        let bad_threshold = FailureThreshold {
            resume_below: 0.9,
            pause_above: 0.5,
            ..FailureThreshold::default()
        };
        assert!(bad_threshold.validate().is_err());
        let bad_samples = FailureThreshold {
            min_samples: 50,
            window: 20,
            ..FailureThreshold::default()
        };
        assert!(bad_samples.validate().is_err());
        let bad_breaker = CircuitBreakerConfig {
            window_hours: f64::INFINITY,
            ..CircuitBreakerConfig::default()
        };
        assert!(bad_breaker.validate().is_err());
        let bad_plan = FaultPlan {
            events: vec![FaultEvent {
                at_hours: f64::NAN,
                kind: FaultKind::TaskFailure,
                salt: 0,
            }],
        };
        let policy = FailurePolicy {
            fault_plan: Some(bad_plan),
            ..FailurePolicy::default()
        };
        assert!(policy.validate().is_err());
        assert!(FailurePolicy::default().is_inert());
        assert!(FailurePolicy::default().validate().is_ok());
    }

    #[test]
    fn failure_window_pauses_and_resumes_with_hysteresis() {
        let mut gate = FailureWindow::new(FailureThreshold {
            window: 4,
            pause_above: 0.5,
            resume_below: 0.5,
            min_samples: 2,
        });
        // One early failure is 100% of one sample, but below min_samples
        // the gate must not act.
        assert_eq!(gate.record(true), None);
        assert!(!gate.is_paused());
        // 2/2 failed > 0.5: pause.
        assert_eq!(gate.record(true), Some(AdmissionChange::Paused));
        assert!(gate.is_paused());
        // 2/3 failed is still above the resume bound: no flap.
        assert_eq!(gate.record(false), None);
        assert!(gate.is_paused());
        // 2/4 failed is not *strictly below* 0.5 yet: still paused.
        assert_eq!(gate.record(false), None);
        // Window slides (oldest failure drops): 1/4 < 0.5 resumes.
        assert_eq!(gate.record(false), Some(AdmissionChange::Resumed));
        assert!(!gate.is_paused());
        assert!((gate.failure_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn breaker_opens_after_strikes_within_window_only() {
        let mut b = SpotBreaker::new(CircuitBreakerConfig {
            strike_threshold: 3,
            window_hours: 6.0,
            success_threshold_hours: 3,
            fallback: FallbackTier::OnDemand,
        });
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.on_strike(0.0), None);
        assert_eq!(b.on_strike(2.0), None);
        // The first strike has aged out of the 6-hour window by hour 8:
        // only two strikes remain, so the breaker stays closed.
        assert_eq!(b.on_strike(8.0), None);
        assert_eq!(b.state(), BreakerState::Closed);
        // A third strike inside the window trips it.
        assert_eq!(b.on_strike(9.0), None);
        assert_eq!(b.on_strike(10.0), Some(BreakerTransition::Opened));
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.is_engaged());
    }

    #[test]
    fn breaker_walks_open_half_open_closed() {
        let mut b = SpotBreaker::new(CircuitBreakerConfig {
            strike_threshold: 1,
            window_hours: 4.0,
            success_threshold_hours: 2,
            fallback: FallbackTier::OnDemand,
        });
        assert_eq!(b.on_strike(1.0), Some(BreakerTransition::Opened));
        // A dirty probe restarts the clean streak.
        assert_eq!(b.on_probe(2.0, false), None);
        assert_eq!(b.on_probe(3.0, true), None);
        assert_eq!(b.on_probe(4.0, true), Some(BreakerTransition::HalfOpened));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.is_engaged(), "half-open probation buys spot again");
        // Clean probation hour: closed, strikes forgotten.
        assert_eq!(b.on_probe(5.0, true), Some(BreakerTransition::Closed));
        assert_eq!(b.state(), BreakerState::Closed);
        // Open hours covered exactly the 1.0 → 4.0 episode.
        assert!((b.open_hours(10.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn breaker_reopens_on_probation_failure() {
        let mut b = SpotBreaker::new(CircuitBreakerConfig {
            strike_threshold: 1,
            window_hours: 4.0,
            success_threshold_hours: 1,
            fallback: FallbackTier::None,
        });
        assert_eq!(b.on_strike(0.0), Some(BreakerTransition::Opened));
        assert_eq!(b.on_probe(1.0, true), Some(BreakerTransition::HalfOpened));
        // A strike during probation reopens immediately.
        assert_eq!(b.on_strike(1.5), Some(BreakerTransition::Reopened));
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.on_probe(2.5, true), Some(BreakerTransition::HalfOpened));
        // So does a dirty probe.
        assert_eq!(b.on_probe(3.5, false), Some(BreakerTransition::Reopened));
        // Accumulated open time: (1.0-0.0) + (2.5-1.5), episode reopened
        // at 3.5 still running at 5.0.
        assert!((b.open_hours(5.0) - 3.5).abs() < 1e-12);
    }
}
