//! Runtime adaptation (§5.4): detect deviations from the model, re-plan from
//! the current state, and splice the updated plan into the deployment.
//!
//! The paper's Figure 12 experiment seeds the model with a wrong per-node
//! throughput (1.44 GB/h predicted vs 0.44 GB/h actual). After the first
//! interval the progress monitor notices the shortfall, Conductor rebuilds
//! the model with the *observed* throughput and the work actually remaining,
//! re-solves, and the updated plan allocates many more nodes so the deadline
//! is still met. [`AdaptiveController`] reproduces that loop on the simulated
//! cluster.

use crate::error::ConductorError;
use crate::goal::Goal;
use crate::model::{InitialState, ModelConfig};
use crate::plan::ExecutionPlan;
use crate::planner::Planner;
use crate::resources::ResourcePool;
use conductor_cloud::Catalog;
use conductor_mapreduce::cluster::NodeAllocation;
use conductor_mapreduce::engine::{Engine, ExecutionReport};
use conductor_mapreduce::JobSpec;
use serde::{Deserialize, Serialize};

/// The result of an adaptive run: both plans plus the execution that followed
/// the spliced schedule (the data behind Figure 12a and 12b).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaptationReport {
    /// The plan computed before execution started (based on the predicted
    /// throughput).
    pub initial_plan: ExecutionPlan,
    /// The plan computed at the re-planning point from the observed state.
    /// Identical to `initial_plan` when the monitor stayed quiet.
    pub updated_plan: ExecutionPlan,
    /// Hour at which the deviation was detected and the plan recomputed;
    /// `None` when observed progress matched the model's projection and no
    /// re-plan was triggered.
    pub replanned_at_hours: Option<f64>,
    /// Execution report of the full run under the spliced schedule.
    pub execution: ExecutionReport,
    /// Execution report of a run that keeps following the initial plan
    /// (the "would have missed the deadline" counterfactual).
    pub without_adaptation: ExecutionReport,
    /// Node-allocation schedule actually deployed (initial plan up to the
    /// re-planning point, updated plan afterwards).
    pub spliced_schedule: Vec<NodeAllocation>,
}

impl AdaptationReport {
    /// `true` when adaptation rescued the deadline that the un-adapted run
    /// missed.
    pub fn adaptation_rescued_deadline(&self) -> bool {
        self.execution.met_deadline == Some(true)
            && self.without_adaptation.met_deadline == Some(false)
    }

    /// `true` when the monitor detected a deviation and re-planned.
    pub fn replanned(&self) -> bool {
        self.replanned_at_hours.is_some()
    }
}

/// Drives the plan → monitor → re-plan loop.
#[derive(Debug, Clone)]
pub struct AdaptiveController {
    catalog: Catalog,
    pool: ResourcePool,
    solve_options: conductor_lp::SolveOptions,
    /// Safety margin subtracted from the remaining deadline when re-planning.
    ///
    /// The model is deliberately optimistic (fluid upload/processing, no task
    /// granularity), so a re-plan that exactly fills the remaining time
    /// finishes its node ramp-down too early and leaves the real engine a
    /// long single-node tail. Planning one interval short absorbs that
    /// optimism; it mirrors how the paper's controller keeps monitoring after
    /// each re-plan instead of trusting a single projection (§5.4).
    replan_margin_hours: f64,
    /// Fractional inflation applied to the *remaining* work the monitor
    /// reports at re-plan time (0.15 = plan for 15 % more work). Covers the
    /// node-hours the task-granular engine loses to data starvation and
    /// interval-boundary stragglers, which the fluid model cannot see.
    monitor_conservatism: f64,
    /// Relative shortfall of observed vs projected map progress below which
    /// the monitor stays quiet (no re-plan). Guards against false
    /// positives: a prediction that matches reality must not trigger the
    /// re-planning machinery.
    deviation_threshold: f64,
}

impl AdaptiveController {
    /// Creates an adaptive controller over a catalog and the resource pool
    /// the planner should use.
    pub fn new(catalog: Catalog, pool: ResourcePool) -> Self {
        Self {
            catalog,
            pool,
            solve_options: conductor_lp::SolveOptions {
                relative_gap: 0.02,
                max_nodes: 2_000,
                time_limit: std::time::Duration::from_secs(60),
                ..conductor_lp::SolveOptions::default()
            },
            replan_margin_hours: 1.0,
            monitor_conservatism: 0.15,
            deviation_threshold: 0.1,
        }
    }

    /// Replaces the solver options used for both planning passes.
    pub fn with_solve_options(mut self, options: conductor_lp::SolveOptions) -> Self {
        self.solve_options = options;
        self
    }

    /// Overrides the re-planning safety margin (see the
    /// `replan_margin_hours` field docs). Zero means trusting the model's
    /// projection exactly.
    pub fn with_replan_margin_hours(mut self, hours: f64) -> Self {
        self.replan_margin_hours = hours.max(0.0);
        self
    }

    /// Overrides the monitor's re-plan trigger: re-plan only when observed
    /// map progress falls short of the model's projection by more than this
    /// fraction (0.1 = 10 % behind).
    pub fn with_deviation_threshold(mut self, fraction: f64) -> Self {
        self.deviation_threshold = fraction.clamp(0.0, 1.0);
        self
    }

    /// Reproduces the §6.4 experiment: plan with `predicted_gbph` per node,
    /// execute against nodes that actually deliver `actual_gbph`, detect the
    /// shortfall after `replan_after_hours`, re-plan with the corrected
    /// throughput and the observed remaining work, and finish under the
    /// spliced schedule.
    pub fn run_with_misprediction(
        &self,
        spec: &JobSpec,
        goal: Goal,
        predicted_gbph: f64,
        actual_gbph: f64,
        replan_after_hours: f64,
    ) -> Result<AdaptationReport, ConductorError> {
        let deadline = goal.deadline_hours();

        // ---- 1. Plan with the (wrong) predicted throughput.
        let optimistic_pool = self.pool_with_throughput(spec, predicted_gbph);
        let optimistic_planner =
            Planner::new(optimistic_pool).with_solve_options(self.solve_options.clone());
        let (initial_plan, _) = optimistic_planner.plan(spec, goal)?;

        // ---- 2. Execute the initial plan against the real (slower) cluster;
        // this is also the "no adaptation" counterfactual.
        let actual_catalog = self.catalog_with_throughput(spec, actual_gbph);
        let actual_engine = Engine::new(actual_catalog);
        let initial_options = initial_plan.to_deployment_options(
            "initial-plan",
            self.pool.uplink_gbph,
            deadline,
            &ExecutionPlan::default_location_map(),
        );
        let scheduler = conductor_mapreduce::scheduler::LocalityScheduler;
        let without_adaptation = actual_engine.run(spec, &initial_options, &scheduler)?;

        // ---- 3. Monitor (§5.4): re-plan only on a real deviation. Two
        // checks, both against the measured throughput:
        //  (a) *behind now* — observed map progress at the re-planning
        //      point falls short of the model's own projection (the
        //      predicted throughput run through the identical fluid
        //      progress rule), and
        //  (b) *plan doomed* — the remaining schedule's processing
        //      capacity at the measured rate can no longer cover the input
        //      (the fig12 case: the shortfall is visible in task durations
        //      before any interval's progress checkpoint is missed).
        // A prediction that matches reality passes both, so the monitor
        // stays quiet and the expensive re-planning machinery never runs —
        // the false-positive guard.
        let observed_done =
            self.fluid_map_progress(spec, &initial_plan, actual_gbph, replan_after_hours);
        let projected_done =
            self.fluid_map_progress(spec, &initial_plan, predicted_gbph, replan_after_hours);
        let behind_now = observed_done + 1e-9 < projected_done * (1.0 - self.deviation_threshold);
        let planned_capacity_gb: f64 = initial_plan
            .intervals
            .iter()
            .map(|iv| {
                iv.nodes.values().sum::<usize>() as f64 * actual_gbph * initial_plan.interval_hours
            })
            .sum();
        let plan_doomed =
            planned_capacity_gb + 1e-9 < spec.input_gb * (1.0 - self.deviation_threshold);
        if !behind_now && !plan_doomed {
            return Ok(AdaptationReport {
                updated_plan: initial_plan.clone(),
                spliced_schedule: initial_options.node_schedule.clone(),
                initial_plan,
                replanned_at_hours: None,
                execution: without_adaptation.clone(),
                without_adaptation,
            });
        }
        let observed = self.observe_progress(spec, &initial_plan, actual_gbph, replan_after_hours);

        // ---- 4. Re-plan from the observed state with the corrected
        // throughput and the time remaining until the deadline.
        let realistic_pool = self.pool_with_throughput(spec, actual_gbph);
        let realistic_planner =
            Planner::new(realistic_pool).with_solve_options(self.solve_options.clone());
        let margin = self.replan_margin_hours;
        let remaining_goal = match goal {
            Goal::MinimizeCost { deadline_hours } => Goal::MinimizeCost {
                deadline_hours: (deadline_hours - replan_after_hours - margin).max(1.0),
            },
            Goal::MinimizeTime {
                budget_usd,
                max_hours,
            } => Goal::MinimizeTime {
                budget_usd,
                max_hours: (max_hours - replan_after_hours - margin).max(1.0),
            },
        };
        let config = ModelConfig {
            initial: observed,
            ..ModelConfig::default()
        };
        let (updated_plan, _) =
            realistic_planner.plan_with_config(spec, remaining_goal, &config)?;

        // ---- 5. Splice: initial plan's schedule for the elapsed interval,
        // updated plan afterwards, and run the whole job under it.
        let spliced_schedule = splice_schedules(&initial_plan, &updated_plan, replan_after_hours);
        let mut spliced_options = initial_options.clone();
        spliced_options.name = "adapted-plan".into();
        spliced_options.node_schedule = spliced_schedule.clone();
        let execution = actual_engine.run(spec, &spliced_options, &scheduler)?;

        Ok(AdaptationReport {
            initial_plan,
            updated_plan,
            replanned_at_hours: Some(replan_after_hours),
            execution,
            without_adaptation,
            spliced_schedule,
        })
    }

    /// Map GB a fluid execution of `plan` would have completed after
    /// `hours` at `gbph` per node, capped by what the uplink could feed —
    /// the progress rule both the monitor's observation and the model's
    /// projection run through, so identical rates produce identical
    /// numbers.
    fn fluid_map_progress(
        &self,
        spec: &JobSpec,
        plan: &ExecutionPlan,
        gbph: f64,
        hours: f64,
    ) -> f64 {
        let uploaded = (self.pool.uplink_gbph * hours).min(spec.input_gb);
        let mut processed: f64 = 0.0;
        for (t, interval) in plan.intervals.iter().enumerate() {
            let t_end = (t as f64 + 1.0) * plan.interval_hours;
            if t_end > hours + 1e-9 {
                break;
            }
            let nodes: usize = interval.nodes.values().sum();
            processed += nodes as f64 * gbph * plan.interval_hours;
        }
        processed.min(uploaded).min(spec.input_gb)
    }

    /// Progress the monitor would have observed after `hours` of following
    /// `plan` on nodes that actually deliver `actual_gbph`.
    fn observe_progress(
        &self,
        spec: &JobSpec,
        plan: &ExecutionPlan,
        actual_gbph: f64,
        hours: f64,
    ) -> InitialState {
        let mut state = InitialState::default();
        // Data uploaded so far: whatever the uplink could push, regardless of
        // the plan's optimism.
        let uploaded = (self.pool.uplink_gbph * hours).min(spec.input_gb);
        let mix = plan.storage_mix();
        for (storage, fraction) in mix {
            state.stored_gb.insert(storage, uploaded * fraction);
        }
        if state.stored_gb.is_empty() {
            state.stored_gb.insert("EC2-disk".to_string(), uploaded);
        }
        // Map progress: limited by both the allocated nodes' *actual*
        // throughput and the data that was available.
        state.map_done_gb = self.fluid_map_progress(spec, plan, actual_gbph, hours);
        // Conservative monitor: plan for slightly more remaining work than
        // the fluid progress model reports (see `monitor_conservatism`).
        let remaining = (spec.input_gb - state.map_done_gb).max(0.0);
        state.map_done_gb =
            (spec.input_gb - remaining * (1.0 + self.monitor_conservatism)).max(0.0);
        state
    }

    /// Pool whose nodes deliver `gbph` *for this spec's workload*. The model
    /// scales capacities by `spec.reference_throughput_gbph` relative to the
    /// reference workload (see `ComputeResource::capacity_for_spec`), so the
    /// observed rate is converted back into reference-workload units here —
    /// otherwise a non-reference workload would be scaled twice.
    fn pool_with_throughput(&self, spec: &JobSpec, gbph: f64) -> ResourcePool {
        let reference_units = if spec.reference_throughput_gbph > 0.0 {
            gbph * (crate::resources::REFERENCE_WORKLOAD_GBPH / spec.reference_throughput_gbph)
        } else {
            gbph
        };
        let mut pool = self.pool.clone();
        for c in &mut pool.compute {
            c.capacity_gbph = reference_units;
        }
        pool
    }

    /// Catalog whose instances deliver `gbph` *for this spec's workload*
    /// when simulated. The engine multiplies catalog throughputs by
    /// `spec.throughput_scale()`, so the observed rate is converted back
    /// into reference-workload units here (mirror of
    /// [`Self::pool_with_throughput`]).
    fn catalog_with_throughput(&self, spec: &JobSpec, gbph: f64) -> Catalog {
        let reference_units = gbph / spec.throughput_scale();
        let mut catalog = self.catalog.clone();
        for i in &mut catalog.instances {
            i.measured_throughput_gbph = reference_units;
        }
        catalog
    }
}

/// Keeps `initial`'s node schedule up to `switch_hours`, then follows
/// `updated` (whose interval 0 corresponds to `switch_hours`).
fn splice_schedules(
    initial: &ExecutionPlan,
    updated: &ExecutionPlan,
    switch_hours: f64,
) -> Vec<NodeAllocation> {
    let mut schedule: Vec<NodeAllocation> = initial
        .node_schedule()
        .into_iter()
        .filter(|a| a.from_hour < switch_hours - 1e-9)
        .collect();
    let mut updated_steps = updated.node_schedule();
    // A compute type the updated plan no longer uses emits no steps at all
    // (plans only record positive node counts); add an explicit zero step
    // at the switch point so its pre-splice allocation is released instead
    // of riding — and billing — to the end of the job.
    let kept_types: std::collections::BTreeSet<String> =
        schedule.iter().map(|a| a.instance_type.clone()).collect();
    for kept in kept_types {
        if !updated_steps.iter().any(|s| s.instance_type == kept) {
            updated_steps.push(NodeAllocation {
                from_hour: 0.0,
                instance_type: kept,
                nodes: 0,
            });
        }
    }
    for mut step in updated_steps {
        step.from_hour += switch_hours;
        schedule.push(step);
    }
    schedule.sort_by(|a, b| a.from_hour.partial_cmp(&b.from_hour).unwrap());
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use conductor_lp::SolveOptions;
    use conductor_mapreduce::Workload;
    use std::time::Duration;

    fn controller() -> AdaptiveController {
        let catalog = Catalog::aws_july_2011();
        let pool = ResourcePool::from_catalog(&catalog, 1.0).with_compute_only(&["m1.large"]);
        AdaptiveController::new(catalog, pool).with_solve_options(SolveOptions {
            relative_gap: 0.02,
            max_nodes: 2_000,
            time_limit: Duration::from_secs(30),
            ..Default::default()
        })
    }

    #[test]
    fn figure_12_misprediction_is_rescued_by_replanning() {
        // Predicted 1.44 GB/h, actual 0.44 GB/h, re-plan after one hour,
        // 7-hour deadline (the paper's Figure 12 spans ~7 hours).
        let report = controller()
            .run_with_misprediction(
                &Workload::KMeans32Gb.spec(),
                Goal::MinimizeCost {
                    deadline_hours: 7.0,
                },
                1.44,
                0.44,
                1.0,
            )
            .unwrap();
        // The optimistic plan allocates only a handful of nodes...
        let initial_peak = report.initial_plan.peak_nodes("m1.large");
        assert!(initial_peak <= 8, "initial peak {initial_peak}");
        // ...the updated plan allocates substantially more...
        let updated_peak = report.updated_plan.peak_nodes("m1.large");
        assert!(
            updated_peak >= initial_peak * 2,
            "updated peak {updated_peak}"
        );
        // ...and adaptation rescues the deadline the un-adapted run misses.
        assert_eq!(report.without_adaptation.met_deadline, Some(false));
        assert_eq!(report.execution.met_deadline, Some(true));
        assert!(report.adaptation_rescued_deadline());
        // All tasks finish in the adapted run.
        assert_eq!(
            report.execution.task_timeline.last().unwrap().1,
            report.execution.total_tasks
        );
    }

    #[test]
    fn accurate_prediction_keeps_the_monitor_quiet() {
        // False-positive guard: when the predicted throughput matches
        // reality there is no shortfall, so the monitor must not trigger a
        // re-plan — the report carries the initial plan unchanged and no
        // re-planning timestamp.
        let report = controller()
            .run_with_misprediction(
                &Workload::KMeans32Gb.spec(),
                Goal::MinimizeCost {
                    deadline_hours: 7.0,
                },
                0.44,
                0.44,
                1.0,
            )
            .unwrap();
        assert!(
            !report.replanned(),
            "monitor re-planned without a deviation"
        );
        assert_eq!(report.replanned_at_hours, None);
        assert_eq!(report.updated_plan, report.initial_plan);
        // The "adapted" execution is the unmodified run: same schedule,
        // same cost, same completion.
        assert_eq!(report.spliced_schedule, report.initial_plan.node_schedule());
        assert!((report.execution.total_cost - report.without_adaptation.total_cost).abs() < 1e-12);
        assert!(
            (report.execution.completion_hours - report.without_adaptation.completion_hours).abs()
                < 1e-12
        );
    }

    #[test]
    fn misprediction_report_records_the_replanning_hour() {
        let report = controller()
            .run_with_misprediction(
                &Workload::KMeans32Gb.spec(),
                Goal::MinimizeCost {
                    deadline_hours: 7.0,
                },
                1.44,
                0.44,
                1.0,
            )
            .unwrap();
        assert!(report.replanned());
        assert_eq!(report.replanned_at_hours, Some(1.0));
        assert_ne!(report.updated_plan, report.initial_plan);
    }

    #[test]
    fn splicing_keeps_early_steps_and_shifts_later_ones() {
        let initial = ExecutionPlan {
            interval_hours: 1.0,
            intervals: vec![],
            expected_cost: 0.0,
            expected_completion_hours: 0.0,
            proven_optimal: true,
        };
        let mut a = initial.clone();
        a.intervals = vec![
            crate::plan::IntervalPlan {
                nodes: [("m1.large".to_string(), 3)].into_iter().collect(),
                ..Default::default()
            },
            crate::plan::IntervalPlan {
                nodes: [("m1.large".to_string(), 5)].into_iter().collect(),
                ..Default::default()
            },
        ];
        let mut b = initial.clone();
        b.intervals = vec![crate::plan::IntervalPlan {
            nodes: [("m1.large".to_string(), 16)].into_iter().collect(),
            ..Default::default()
        }];
        let spliced = splice_schedules(&a, &b, 1.0);
        // Keeps the 3-node step at hour 0, drops the 5-node step at hour 1,
        // and the updated 16-node step lands at hour 1.
        assert!(spliced.iter().any(|s| s.from_hour == 0.0 && s.nodes == 3));
        assert!(spliced.iter().any(|s| s.from_hour == 1.0 && s.nodes == 16));
        assert!(!spliced.iter().any(|s| s.nodes == 5));
    }

    #[test]
    fn splicing_releases_compute_types_the_updated_plan_dropped() {
        // Plans only record positive node counts, so a type the re-plan
        // stops using emits no steps; the splice must synthesize a zero
        // step or its pre-splice allocation would bill until job end.
        let empty = ExecutionPlan {
            interval_hours: 1.0,
            intervals: vec![],
            expected_cost: 0.0,
            expected_completion_hours: 0.0,
            proven_optimal: true,
        };
        let mut initial = empty.clone();
        initial.intervals = vec![crate::plan::IntervalPlan {
            nodes: [("m1.large".to_string(), 4), ("local".to_string(), 5)]
                .into_iter()
                .collect(),
            ..Default::default()
        }];
        let mut updated = empty.clone();
        updated.intervals = vec![crate::plan::IntervalPlan {
            nodes: [("local".to_string(), 5)].into_iter().collect(),
            ..Default::default()
        }];
        let spliced = splice_schedules(&initial, &updated, 1.0);
        // The dropped m1.large type gets an explicit release at the switch.
        assert!(
            spliced
                .iter()
                .any(|s| s.instance_type == "m1.large" && s.from_hour == 1.0 && s.nodes == 0),
            "{spliced:?}"
        );
        // ...while the still-used local nodes carry on.
        assert!(spliced
            .iter()
            .any(|s| s.instance_type == "local" && s.from_hour == 1.0 && s.nodes == 5));
    }

    #[test]
    fn observed_progress_reflects_actual_throughput() {
        let ctl = controller();
        let spec = Workload::KMeans32Gb.spec();
        let plan = ExecutionPlan {
            interval_hours: 1.0,
            intervals: vec![crate::plan::IntervalPlan {
                nodes: [("m1.large".to_string(), 3)].into_iter().collect(),
                upload_gb: [("EC2-disk".to_string(), 6.7)].into_iter().collect(),
                ..Default::default()
            }],
            expected_cost: 1.0,
            expected_completion_hours: 1.0,
            proven_optimal: true,
        };
        let state = ctl.observe_progress(&spec, &plan, 0.44, 1.0);
        // 3 nodes at the real 0.44 GB/h processed ~1.3 GB, not 3 * 1.44.
        assert!(state.map_done_gb < 1.5, "map done {}", state.map_done_gb);
        let stored: f64 = state.stored_gb.values().sum();
        assert!(stored > 6.0 && stored < 7.5, "stored {stored}");
    }
}
