//! The dynamic-linear-program model generator (§4 of the paper).
//!
//! The execution of a MapReduce job is discretized into `T` intervals (one
//! hour each by default, matching EC2's billing granularity). For every
//! interval the model contains the actions that can be performed in it —
//! upload data to a storage service, keep data resident, migrate it, process
//! it on rented nodes, run the reduce phase, download the result — and the
//! constraints that tie them together: flow preservation (eqs. 1–2), compute
//! capacity (eq. 3), the "only uploaded data can be processed" prefix
//! constraint (eq. 4), the semi-continuous Map→Reduce barrier (§4.3), storage
//! capacity including the instance-disk/compute coupling (§4.6), the customer
//! uplink, and optional budget or storage-mix constraints. The objective is
//! the total monetary cost (eq. 5), or its spot-price expectation variant
//! (eq. 6) when a forecast is supplied (§4.7).

use crate::error::ConductorError;
use crate::resources::ResourcePool;
use conductor_lp::{ConstraintOp, LinExpr, Problem, Sense, VarId};
use conductor_mapreduce::JobSpec;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Work that has already happened before this model's horizon starts.
/// Used by the adaptation loop (§5.4) to re-plan from the current state; a
/// fresh job uses [`InitialState::default`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct InitialState {
    /// Data already resident per storage resource (GB).
    pub stored_gb: BTreeMap<String, f64>,
    /// Input data already processed by the map phase (GB).
    pub map_done_gb: f64,
    /// Intermediate data already processed by the reduce phase (GB).
    pub reduce_done_gb: f64,
    /// Output already downloaded (GB).
    pub downloaded_gb: f64,
}

/// Configuration of one model build.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Length of one planning interval in hours (1.0 in the paper).
    pub interval_hours: f64,
    /// Number of intervals `T` (the upper bound on completion, §4.3).
    pub horizon_intervals: usize,
    /// Whether to include inter-storage migration variables (§4.5).
    pub enable_migration: bool,
    /// Expected price per node-hour per compute resource per interval
    /// (spot-market expectations, eq. 6). Resources without an entry use
    /// their on-demand price.
    pub price_forecast: BTreeMap<String, Vec<f64>>,
    /// Force a fixed fraction of the input onto one storage resource
    /// (used by the Figure 8/9 storage-mix sweeps).
    pub fixed_storage_fraction: Option<(String, f64)>,
    /// Total-cost budget constraint in USD (used by minimize-time goals).
    pub budget_usd: Option<f64>,
    /// State carried over from an execution already in progress.
    pub initial: InitialState,
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self {
            interval_hours: 1.0,
            horizon_intervals: 6,
            enable_migration: false,
            price_forecast: BTreeMap::new(),
            fixed_storage_fraction: None,
            budget_usd: None,
            initial: InitialState::default(),
        }
    }
}

/// Handles to the decision variables of a built model, so the planner can
/// read the solution back out.
#[derive(Debug, Clone, Default)]
pub struct ModelVars {
    /// `upload[storage][t]`: GB uploaded into a storage resource in interval `t`.
    pub upload: BTreeMap<(String, usize), VarId>,
    /// `store[storage][t]`: GB resident on a storage resource at the end of `t`.
    pub store: BTreeMap<(String, usize), VarId>,
    /// `nodes[compute][t]`: instances rented in interval `t` (integer).
    pub nodes: BTreeMap<(String, usize), VarId>,
    /// `proc_map[compute][t]`: GB of input processed by the map phase.
    pub proc_map: BTreeMap<(String, usize), VarId>,
    /// `proc_reduce[compute][t]`: GB of intermediate data reduced.
    pub proc_reduce: BTreeMap<(String, usize), VarId>,
    /// `migrate[from][to][t]`: GB migrated between storage resources.
    pub migrate: BTreeMap<(String, String, usize), VarId>,
    /// `barrier[t]`: the semi-continuous Map→Reduce hand-off variable.
    pub barrier: Vec<VarId>,
    /// `download[t]`: GB of output downloaded to the customer in interval `t`.
    pub download: Vec<VarId>,
}

/// A fully built model: the LP problem plus the variable handles and the
/// context needed to interpret a solution.
#[derive(Debug, Clone)]
pub struct ModelInstance {
    /// The mixed-integer linear program.
    pub problem: Problem,
    /// Variable handles.
    pub vars: ModelVars,
    /// The configuration the model was built with.
    pub config: ModelConfig,
    /// Remaining input data the plan must upload/process (GB).
    pub remaining_input_gb: f64,
    /// Remaining intermediate data the plan must reduce (GB).
    pub remaining_shuffle_gb: f64,
    /// Remaining output data the plan must download (GB).
    pub remaining_output_gb: f64,
}

impl ModelInstance {
    /// Builds the dynamic LP for `spec` over `pool` under `config`.
    pub fn build(
        pool: &ResourcePool,
        spec: &JobSpec,
        config: &ModelConfig,
    ) -> Result<ModelInstance, ConductorError> {
        pool.validate().map_err(ConductorError::InvalidInput)?;
        if config.horizon_intervals == 0 {
            return Err(ConductorError::InvalidInput(
                "horizon must be at least one interval".into(),
            ));
        }
        if config.interval_hours <= 0.0 {
            return Err(ConductorError::InvalidInput(
                "interval length must be positive".into(),
            ));
        }

        let t_count = config.horizon_intervals;
        let dt = config.interval_hours;
        let init = &config.initial;

        let already_stored: f64 = init.stored_gb.values().sum();
        let remaining_input = (spec.input_gb - already_stored - 0.0).max(0.0);
        let remaining_map = (spec.input_gb - init.map_done_gb).max(0.0);
        let remaining_shuffle = (spec.shuffle_gb() - init.reduce_done_gb).max(0.0);
        let remaining_output = (spec.output_gb() - init.downloaded_gb).max(0.0);

        let mut p = Problem::new(format!("conductor-{}", spec.name), Sense::Minimize);
        let mut vars = ModelVars::default();
        let mut objective = LinExpr::new();

        // Data on instance disks is replicated across *live* instances, so
        // residency there is never free even when processing happens to keep
        // nodes around anyway: each GB-hour pins a replicated slice of a
        // rented node's disk. Charged at the cheapest cloud instance's
        // amortized per-GB-hour disk price times the replication factor
        // (§4.6; restores the paper's Figure 8 endpoint ordering, where
        // all-EC2 is the most expensive storage mix).
        let instance_disk_gb_hour = crate::resources::INSTANCE_DISK_REPLICATION
            * pool
                .compute
                .iter()
                .filter(|c| !c.is_local && c.disk_gb > 0.0)
                .map(|c| c.hourly_price / c.disk_gb)
                .fold(f64::INFINITY, f64::min);
        let instance_disk_gb_hour = if instance_disk_gb_hour.is_finite() {
            instance_disk_gb_hour
        } else {
            0.0
        };

        // ---- Variables.
        for s in &pool.storage {
            let residency_per_gb_hour = s.cost_per_gb_hour
                + if s.instance_disk {
                    instance_disk_gb_hour
                } else {
                    0.0
                };
            for t in 0..t_count {
                let u = p.add_var(format!("upload[{}][{t}]", s.name), 0.0, f64::INFINITY);
                vars.upload.insert((s.name.clone(), t), u);
                let st = p.add_var(format!("store[{}][{t}]", s.name), 0.0, f64::INFINITY);
                vars.store.insert((s.name.clone(), t), st);
                // Residency cost (eq. 5's storage term) and per-GB request costs.
                objective.add_term(st, residency_per_gb_hour * dt);
                // A negligible preference for uploading early breaks ties
                // between otherwise-equivalent schedules (faster solves,
                // more natural plans) without affecting real costs.
                objective.add_term(
                    u,
                    s.put_cost_per_gb + s.get_cost_per_gb + 1e-6 * (t + 1) as f64,
                );
                // Wide-area transfer into the cloud (zero for local storage).
                if !s.is_local {
                    objective.add_term(u, pool.transfer_in_per_gb);
                }
            }
        }
        for c in &pool.compute {
            let cap_nodes = c.max_nodes.map(|m| m as f64).unwrap_or(f64::INFINITY);
            for t in 0..t_count {
                let n = p.add_int_var(format!("nodes[{}][{t}]", c.name), 0.0, cap_nodes);
                vars.nodes.insert((c.name.clone(), t), n);
                let price = config
                    .price_forecast
                    .get(&c.name)
                    .and_then(|f| f.get(t))
                    .copied()
                    .unwrap_or(c.hourly_price);
                // The 1e-4·t term is a symmetry breaker: renting in interval 3
                // vs interval 4 costs the same in reality, and without a
                // preference the branch & bound search wanders across a huge
                // plateau of equivalent plans.
                objective.add_term(n, price * dt + 1e-4 * (t + 1) as f64);
                let pm = p.add_var(format!("procM[{}][{t}]", c.name), 0.0, f64::INFINITY);
                let pr = p.add_var(format!("procR[{}][{t}]", c.name), 0.0, f64::INFINITY);
                vars.proc_map.insert((c.name.clone(), t), pm);
                vars.proc_reduce.insert((c.name.clone(), t), pr);
            }
        }
        if config.enable_migration {
            for from in &pool.storage {
                for to in &pool.storage {
                    if from.name == to.name {
                        continue;
                    }
                    for t in 0..t_count {
                        let m = p.add_var(
                            format!("migrate[{}->{}][{t}]", from.name, to.name),
                            0.0,
                            f64::INFINITY,
                        );
                        vars.migrate
                            .insert((from.name.clone(), to.name.clone(), t), m);
                        // Migration is billed like a fresh write at the destination.
                        objective.add_term(m, to.put_cost_per_gb);
                    }
                }
            }
        }
        let needs_barrier = remaining_shuffle > 0.0 && init.map_done_gb < spec.input_gb;
        if needs_barrier {
            for t in 0..t_count {
                let b = p.add_semicontinuous_var(
                    format!("barrier[{t}]"),
                    remaining_shuffle,
                    remaining_shuffle,
                );
                vars.barrier.push(b);
            }
        }
        for t in 0..t_count {
            let d = p.add_var(format!("download[{t}]"), 0.0, f64::INFINITY);
            objective.add_term(d, pool.transfer_out_per_gb);
            vars.download.push(d);
        }

        // ---- Constraints.
        // Total upload moves exactly the not-yet-stored input into storage.
        p.add_constraint(
            "upload-total",
            pool.storage
                .iter()
                .flat_map(|s| (0..t_count).map(|t| (vars.upload[&(s.name.clone(), t)], 1.0)))
                .collect::<Vec<_>>(),
            ConstraintOp::Eq,
            remaining_input,
        );

        // Customer uplink limits per-interval uploads to cloud storage.
        for t in 0..t_count {
            let terms: Vec<(VarId, f64)> = pool
                .storage
                .iter()
                .filter(|s| !s.is_local)
                .map(|s| (vars.upload[&(s.name.clone(), t)], 1.0))
                .collect();
            if !terms.is_empty() {
                p.add_constraint(
                    format!("uplink[{t}]"),
                    terms,
                    ConstraintOp::Le,
                    pool.uplink_gbph * dt,
                );
            }
        }

        // Storage balance (eq. 2) plus migration flows (§4.5).
        for s in &pool.storage {
            for t in 0..t_count {
                let mut expr = LinExpr::from(vars.store[&(s.name.clone(), t)]);
                expr.add_term(vars.upload[&(s.name.clone(), t)], -1.0);
                if t > 0 {
                    expr.add_term(vars.store[&(s.name.clone(), t - 1)], -1.0);
                }
                if config.enable_migration {
                    for other in &pool.storage {
                        if other.name == s.name {
                            continue;
                        }
                        // Outgoing migration leaves this interval...
                        expr.add_term(vars.migrate[&(s.name.clone(), other.name.clone(), t)], 1.0);
                        // ...incoming migration arrives one interval later.
                        if t > 0 {
                            expr.add_term(
                                vars.migrate[&(other.name.clone(), s.name.clone(), t - 1)],
                                -1.0,
                            );
                        }
                    }
                }
                let initial_here = if t == 0 {
                    init.stored_gb.get(&s.name).copied().unwrap_or(0.0)
                } else {
                    0.0
                };
                p.add_constraint_expr(
                    format!("store-balance[{}][{t}]", s.name),
                    expr,
                    ConstraintOp::Eq,
                    initial_here,
                );
            }
        }

        // Storage capacity, including the instance-disk coupling of §4.6:
        // data on instance disks can only exist while instances are rented.
        for s in &pool.storage {
            for t in 0..t_count {
                let store_var = vars.store[&(s.name.clone(), t)];
                if s.instance_disk {
                    let mut expr = LinExpr::from(store_var);
                    for c in pool.compute.iter().filter(|c| !c.is_local) {
                        expr.add_term(vars.nodes[&(c.name.clone(), t)], -c.disk_gb);
                    }
                    p.add_constraint_expr(
                        format!("disk-capacity[{}][{t}]", s.name),
                        expr,
                        ConstraintOp::Le,
                        0.0,
                    );
                } else if let Some(cap) = s.capacity_gb {
                    p.add_constraint(
                        format!("capacity[{}][{t}]", s.name),
                        [(store_var, 1.0)],
                        ConstraintOp::Le,
                        cap,
                    );
                }
            }
        }

        // Compute capacity (eq. 3): map + reduce share the rented nodes.
        // Per-node throughput is the *workload's* measured rate scaled by
        // the instance's capability ratio (§4.2) — a fast-scan job moves
        // through a node many times faster than the reference k-means.
        for c in &pool.compute {
            let capacity = c.capacity_for_spec(spec.reference_throughput_gbph);
            for t in 0..t_count {
                p.add_constraint(
                    format!("compute-capacity[{}][{t}]", c.name),
                    [
                        (vars.proc_map[&(c.name.clone(), t)], 1.0),
                        (vars.proc_reduce[&(c.name.clone(), t)], 1.0),
                        (vars.nodes[&(c.name.clone(), t)], -capacity * dt),
                    ],
                    ConstraintOp::Le,
                    0.0,
                );
            }
        }

        // Prefix constraint (eq. 4): cumulative processing ≤ data stored in the cloud.
        for t in 0..t_count {
            let mut expr = LinExpr::new();
            for c in &pool.compute {
                for t2 in 0..=t {
                    expr.add_term(vars.proc_map[&(c.name.clone(), t2)], 1.0);
                }
            }
            for s in &pool.storage {
                expr.add_term(vars.store[&(s.name.clone(), t)], -1.0);
            }
            p.add_constraint_expr(
                format!("processed-needs-data[{t}]"),
                expr,
                ConstraintOp::Le,
                0.0,
            );
        }

        // The map phase must process all remaining input within the horizon.
        p.add_constraint(
            "map-total",
            pool.compute
                .iter()
                .flat_map(|c| (0..t_count).map(|t| (vars.proc_map[&(c.name.clone(), t)], 1.0)))
                .collect::<Vec<_>>(),
            ConstraintOp::Eq,
            remaining_map,
        );

        // Map→Reduce barrier (§4.3): the full intermediate output flows to the
        // reduce phase in a single interval, and only once the map phase has
        // produced all of it.
        if needs_barrier {
            let frac = remaining_shuffle / spec.input_gb.max(1e-9);
            for t in 0..t_count {
                let mut expr = LinExpr::from(vars.barrier[t]);
                for c in &pool.compute {
                    for t2 in 0..=t {
                        expr.add_term(vars.proc_map[&(c.name.clone(), t2)], -frac);
                    }
                }
                p.add_constraint_expr(
                    format!("barrier-needs-map[{t}]"),
                    expr,
                    ConstraintOp::Le,
                    frac * init.map_done_gb,
                );
            }
            p.add_constraint(
                "barrier-total",
                vars.barrier.iter().map(|&b| (b, 1.0)).collect::<Vec<_>>(),
                ConstraintOp::Eq,
                remaining_shuffle,
            );
            // Reduce work in the prefix ending at t is limited by barriers
            // that fired strictly before t.
            for t in 0..t_count {
                let mut expr = LinExpr::new();
                for c in &pool.compute {
                    for t2 in 0..=t {
                        expr.add_term(vars.proc_reduce[&(c.name.clone(), t2)], 1.0);
                    }
                }
                for t2 in 0..t {
                    expr.add_term(vars.barrier[t2], -1.0);
                }
                p.add_constraint_expr(
                    format!("reduce-after-barrier[{t}]"),
                    expr,
                    ConstraintOp::Le,
                    0.0,
                );
            }
        }

        // The reduce phase must finish all remaining intermediate data.
        p.add_constraint(
            "reduce-total",
            pool.compute
                .iter()
                .flat_map(|c| (0..t_count).map(|t| (vars.proc_reduce[&(c.name.clone(), t)], 1.0)))
                .collect::<Vec<_>>(),
            ConstraintOp::Eq,
            remaining_shuffle,
        );

        // Result download: bounded by the uplink, only data the reduce phase
        // has produced can leave, and everything must be home by T.
        let output_per_reduce = if remaining_shuffle > 0.0 {
            remaining_output / remaining_shuffle
        } else {
            0.0
        };
        for t in 0..t_count {
            p.add_constraint(
                format!("downlink[{t}]"),
                [(vars.download[t], 1.0)],
                ConstraintOp::Le,
                pool.uplink_gbph * dt,
            );
            let mut expr = LinExpr::new();
            for t2 in 0..=t {
                expr.add_term(vars.download[t2], 1.0);
            }
            if remaining_shuffle > 0.0 {
                for c in &pool.compute {
                    for t2 in 0..=t {
                        expr.add_term(vars.proc_reduce[&(c.name.clone(), t2)], -output_per_reduce);
                    }
                }
            }
            p.add_constraint_expr(
                format!("download-needs-output[{t}]"),
                expr,
                ConstraintOp::Le,
                0.0,
            );
        }
        p.add_constraint(
            "download-total",
            vars.download.iter().map(|&d| (d, 1.0)).collect::<Vec<_>>(),
            ConstraintOp::Eq,
            remaining_output,
        );

        // Optional: pin the storage mix (Figure 8/9 sweeps).
        if let Some((storage_name, fraction)) = &config.fixed_storage_fraction {
            if pool.storage_resource(storage_name).is_none() {
                return Err(ConductorError::InvalidInput(format!(
                    "fixed storage fraction references unknown storage `{storage_name}`"
                )));
            }
            p.add_constraint(
                "fixed-storage-mix",
                (0..t_count)
                    .map(|t| (vars.upload[&(storage_name.clone(), t)], 1.0))
                    .collect::<Vec<_>>(),
                ConstraintOp::Eq,
                fraction.clamp(0.0, 1.0) * remaining_input,
            );
        }

        // Optional: budget cap (minimize-time goals bisect over T with this).
        if let Some(budget) = config.budget_usd {
            p.add_constraint_expr("budget", objective.clone(), ConstraintOp::Le, budget);
        }

        p.set_objective_expr(objective);

        Ok(ModelInstance {
            problem: p,
            vars,
            config: config.clone(),
            remaining_input_gb: remaining_input,
            remaining_shuffle_gb: remaining_shuffle,
            remaining_output_gb: remaining_output,
        })
    }

    /// Number of decision variables in the generated LP.
    pub fn num_vars(&self) -> usize {
        self.problem.num_vars()
    }

    /// Number of constraints in the generated LP.
    pub fn num_constraints(&self) -> usize {
        self.problem.num_constraints()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conductor_cloud::Catalog;
    use conductor_mapreduce::Workload;

    fn pool() -> ResourcePool {
        ResourcePool::from_catalog(&Catalog::aws_july_2011(), 1.0).with_compute_only(&["m1.large"])
    }

    fn spec() -> JobSpec {
        Workload::KMeans32Gb.spec()
    }

    #[test]
    fn model_size_scales_with_horizon() {
        let small = ModelInstance::build(
            &pool(),
            &spec(),
            &ModelConfig {
                horizon_intervals: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let large = ModelInstance::build(
            &pool(),
            &spec(),
            &ModelConfig {
                horizon_intervals: 12,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(large.num_vars() > 2 * small.num_vars());
        assert!(large.num_constraints() > 2 * small.num_constraints());
    }

    #[test]
    fn migration_variables_are_optional() {
        let without = ModelInstance::build(&pool(), &spec(), &ModelConfig::default()).unwrap();
        let with = ModelInstance::build(
            &pool(),
            &spec(),
            &ModelConfig {
                enable_migration: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(with.num_vars() > without.num_vars());
        assert!(without.vars.migrate.is_empty());
        assert!(!with.vars.migrate.is_empty());
    }

    #[test]
    fn six_hour_model_is_solvable_and_covers_the_work() {
        let m = ModelInstance::build(&pool(), &spec(), &ModelConfig::default()).unwrap();
        let sol = m.problem.solve().unwrap();
        // All input uploaded.
        let uploaded: f64 = m.vars.upload.values().map(|&v| sol.value(v)).sum();
        assert!((uploaded - 32.0).abs() < 1e-4, "uploaded {uploaded}");
        // All input processed.
        let processed: f64 = m.vars.proc_map.values().map(|&v| sol.value(v)).sum();
        assert!((processed - 32.0).abs() < 1e-4);
        // Node-hours are at least the work divided by per-node capacity.
        let node_hours: f64 = m.vars.nodes.values().map(|&v| sol.value(v)).sum();
        assert!(node_hours >= 32.0 / 0.44 - 1e-6, "node-hours {node_hours}");
        // Cost is in the plausible range of Figure 5 (tens of dollars).
        assert!(
            sol.objective() > 20.0 && sol.objective() < 45.0,
            "cost {}",
            sol.objective()
        );
    }

    #[test]
    fn infeasible_deadline_is_reported() {
        // 32 GB cannot even be uploaded in 2 hours at 16 Mbit/s.
        let m = ModelInstance::build(
            &pool(),
            &spec(),
            &ModelConfig {
                horizon_intervals: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(m.problem.solve().is_err());
    }

    #[test]
    fn prefix_constraint_prevents_processing_before_upload() {
        let m = ModelInstance::build(&pool(), &spec(), &ModelConfig::default()).unwrap();
        let sol = m.problem.solve().unwrap();
        // In every prefix, processed ≤ uploaded.
        for t in 0..6 {
            let processed: f64 = m
                .vars
                .proc_map
                .iter()
                .filter(|((_, t2), _)| *t2 <= t)
                .map(|(_, &v)| sol.value(v))
                .sum();
            let stored: f64 = m
                .vars
                .store
                .iter()
                .filter(|((_, t2), _)| *t2 == t)
                .map(|(_, &v)| sol.value(v))
                .sum();
            assert!(
                processed <= stored + 1e-4,
                "t={t}: processed {processed} > stored {stored}"
            );
        }
    }

    #[test]
    fn reduce_happens_after_map_completes() {
        let m = ModelInstance::build(&pool(), &spec(), &ModelConfig::default()).unwrap();
        let sol = m.problem.solve().unwrap();
        // Find the interval where the barrier fires.
        let barrier_t = m
            .vars
            .barrier
            .iter()
            .position(|&b| sol.value(b) > 1e-6)
            .expect("barrier must fire somewhere");
        // No reduce work strictly before or during the barrier interval.
        let early_reduce: f64 = m
            .vars
            .proc_reduce
            .iter()
            .filter(|((_, t), _)| *t <= barrier_t)
            .map(|(_, &v)| sol.value(v))
            .sum();
        assert!(
            early_reduce < 1e-6,
            "reduce ran before the barrier: {early_reduce}"
        );
        // By the barrier interval the map phase has processed everything.
        let map_by_then: f64 = m
            .vars
            .proc_map
            .iter()
            .filter(|((_, t), _)| *t <= barrier_t)
            .map(|(_, &v)| sol.value(v))
            .sum();
        assert!(
            (map_by_then - 32.0).abs() < 1e-3,
            "map by barrier: {map_by_then}"
        );
    }

    #[test]
    fn local_cluster_is_used_before_paid_nodes_when_it_suffices() {
        // With a relaxed 24h horizon and a 5-node free local cluster that can
        // finish on time, the cheapest plan uses only local nodes.
        let pool = ResourcePool::from_catalog(&Catalog::aws_with_local_cluster(5), 1.0)
            .with_compute_only(&["m1.large", "local"]);
        let m = ModelInstance::build(
            &pool,
            &spec(),
            &ModelConfig {
                horizon_intervals: 24,
                ..Default::default()
            },
        )
        .unwrap();
        let sol = m.problem.solve().unwrap();
        let paid_node_hours: f64 = m
            .vars
            .nodes
            .iter()
            .filter(|((c, _), _)| c == "m1.large")
            .map(|(_, &v)| sol.value(v))
            .sum();
        let local_node_hours: f64 = m
            .vars
            .nodes
            .iter()
            .filter(|((c, _), _)| c == "local")
            .map(|(_, &v)| sol.value(v))
            .sum();
        assert!(local_node_hours > 0.0);
        assert!(
            paid_node_hours * 0.34 < 2.0,
            "plan spends {paid_node_hours} paid node-hours despite free capacity"
        );
    }

    #[test]
    fn fixed_storage_fraction_is_respected() {
        let m = ModelInstance::build(
            &pool(),
            &spec(),
            &ModelConfig {
                fixed_storage_fraction: Some(("S3".into(), 0.25)),
                ..Default::default()
            },
        )
        .unwrap();
        let sol = m.problem.solve().unwrap();
        let to_s3: f64 = m
            .vars
            .upload
            .iter()
            .filter(|((s, _), _)| s == "S3")
            .map(|(_, &v)| sol.value(v))
            .sum();
        assert!((to_s3 - 8.0).abs() < 1e-3, "S3 got {to_s3} GB");
        // Referencing an unknown storage is an input error.
        assert!(matches!(
            ModelInstance::build(
                &pool(),
                &spec(),
                &ModelConfig {
                    fixed_storage_fraction: Some(("glacier".into(), 0.5)),
                    ..Default::default()
                },
            ),
            Err(ConductorError::InvalidInput(_))
        ));
    }

    #[test]
    fn budget_constraint_can_make_the_model_infeasible() {
        let m = ModelInstance::build(
            &pool(),
            &spec(),
            &ModelConfig {
                budget_usd: Some(1.0),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(m.problem.solve().is_err());
    }

    #[test]
    fn initial_state_shrinks_the_remaining_work() {
        let mut initial = InitialState::default();
        initial.stored_gb.insert("EC2-disk".into(), 20.0);
        initial.map_done_gb = 10.0;
        let m = ModelInstance::build(
            &pool(),
            &spec(),
            &ModelConfig {
                initial,
                ..Default::default()
            },
        )
        .unwrap();
        assert!((m.remaining_input_gb - 12.0).abs() < 1e-9);
        let sol = m.problem.solve().unwrap();
        let processed: f64 = m.vars.proc_map.values().map(|&v| sol.value(v)).sum();
        assert!((processed - 22.0).abs() < 1e-3);
    }

    #[test]
    fn spot_forecast_changes_the_objective_price() {
        // A forecast of half the on-demand price should roughly halve the
        // compute share of the cost.
        let regular = ModelInstance::build(&pool(), &spec(), &ModelConfig::default()).unwrap();
        let regular_cost = regular.problem.solve().unwrap().objective();
        let mut forecast = BTreeMap::new();
        forecast.insert("m1.large".to_string(), vec![0.17; 6]);
        let spot = ModelInstance::build(
            &pool(),
            &spec(),
            &ModelConfig {
                price_forecast: forecast,
                ..Default::default()
            },
        )
        .unwrap();
        let spot_cost = spot.problem.solve().unwrap().objective();
        assert!(
            spot_cost < 0.62 * regular_cost,
            "spot {spot_cost} vs regular {regular_cost}"
        );
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(ModelInstance::build(
            &pool(),
            &spec(),
            &ModelConfig {
                horizon_intervals: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(ModelInstance::build(
            &pool(),
            &spec(),
            &ModelConfig {
                interval_hours: 0.0,
                ..Default::default()
            }
        )
        .is_err());
    }
}
