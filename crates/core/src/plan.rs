//! Execution plans: the solver's output translated into deployable actions.
//!
//! A plan lists, for every planning interval, how many nodes of each compute
//! resource to rent, how much data to upload into each storage resource, and
//! how much to migrate — exactly the decisions the job controller hands to
//! the storage service and the cluster allocator (§5.2). Plans also convert
//! directly into [`conductor_mapreduce::DeploymentOptions`] so they can be
//! executed on the simulated Hadoop cluster.

use crate::model::ModelInstance;
use conductor_lp::Solution;
use conductor_mapreduce::cluster::NodeAllocation;
use conductor_mapreduce::engine::{DataLocation, DeploymentOptions};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The planned actions of a single interval.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct IntervalPlan {
    /// Nodes to keep rented per compute resource.
    pub nodes: BTreeMap<String, usize>,
    /// GB to upload into each storage resource during this interval.
    pub upload_gb: BTreeMap<String, f64>,
    /// GB expected to be processed by the map phase.
    pub map_gb: f64,
    /// GB expected to be processed by the reduce phase.
    pub reduce_gb: f64,
    /// GB of output expected to be downloaded.
    pub download_gb: f64,
    /// GB to migrate between storage resources (`(from, to) -> GB`).
    pub migrations: BTreeMap<(String, String), f64>,
}

/// A complete execution plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionPlan {
    /// Length of one interval in hours.
    pub interval_hours: f64,
    /// Per-interval actions, index 0 = the first interval after planning.
    pub intervals: Vec<IntervalPlan>,
    /// The solver's estimate of the total monetary cost (USD).
    pub expected_cost: f64,
    /// The planner's estimate of the completion time in hours (the end of the
    /// last interval with any planned activity).
    pub expected_completion_hours: f64,
    /// Whether the solver proved the plan optimal (within its gap) or merely
    /// feasible within its time budget (§4.8).
    pub proven_optimal: bool,
}

impl ExecutionPlan {
    /// Extracts a plan from a solved model.
    pub fn from_solution(model: &ModelInstance, solution: &Solution) -> Self {
        let t_count = model.config.horizon_intervals;
        let dt = model.config.interval_hours;
        let round = |x: f64| if x.abs() < 1e-6 { 0.0 } else { x };

        let mut intervals = Vec::with_capacity(t_count);
        for t in 0..t_count {
            let mut plan = IntervalPlan::default();
            for ((name, t2), var) in &model.vars.nodes {
                if *t2 == t {
                    let n = solution.value(*var).round().max(0.0) as usize;
                    if n > 0 {
                        plan.nodes.insert(name.clone(), n);
                    }
                }
            }
            for ((name, t2), var) in &model.vars.upload {
                if *t2 == t {
                    let gb = round(solution.value(*var));
                    if gb > 0.0 {
                        plan.upload_gb.insert(name.clone(), gb);
                    }
                }
            }
            for ((_, t2), var) in &model.vars.proc_map {
                if *t2 == t {
                    plan.map_gb += round(solution.value(*var));
                }
            }
            for ((_, t2), var) in &model.vars.proc_reduce {
                if *t2 == t {
                    plan.reduce_gb += round(solution.value(*var));
                }
            }
            for ((from, to, t2), var) in &model.vars.migrate {
                if *t2 == t {
                    let gb = round(solution.value(*var));
                    if gb > 0.0 {
                        plan.migrations.insert((from.clone(), to.clone()), gb);
                    }
                }
            }
            plan.download_gb = round(solution.value(model.vars.download[t]));
            intervals.push(plan);
        }

        let last_active = intervals
            .iter()
            .rposition(|p| {
                p.map_gb > 0.0
                    || p.reduce_gb > 0.0
                    || p.download_gb > 0.0
                    || !p.upload_gb.is_empty()
                    || !p.nodes.is_empty()
            })
            .map(|i| i + 1)
            .unwrap_or(0);

        ExecutionPlan {
            interval_hours: dt,
            intervals,
            expected_cost: solution.objective(),
            expected_completion_hours: last_active as f64 * dt,
            proven_optimal: solution.status() == conductor_lp::SolveStatus::Optimal,
        }
    }

    /// Number of planning intervals.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// `true` when the plan has no intervals.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Maximum number of nodes of `compute` rented in any interval.
    pub fn peak_nodes(&self, compute: &str) -> usize {
        self.intervals
            .iter()
            .filter_map(|p| p.nodes.get(compute))
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Total node-hours rented per compute resource.
    pub fn node_hours(&self) -> BTreeMap<String, f64> {
        let mut out: BTreeMap<String, f64> = BTreeMap::new();
        for p in &self.intervals {
            for (name, &n) in &p.nodes {
                *out.entry(name.clone()).or_insert(0.0) += n as f64 * self.interval_hours;
            }
        }
        out
    }

    /// Fraction of the total upload destined for each storage resource.
    pub fn storage_mix(&self) -> BTreeMap<String, f64> {
        let mut totals: BTreeMap<String, f64> = BTreeMap::new();
        for p in &self.intervals {
            for (name, gb) in &p.upload_gb {
                *totals.entry(name.clone()).or_insert(0.0) += gb;
            }
        }
        let sum: f64 = totals.values().sum();
        if sum > 0.0 {
            for v in totals.values_mut() {
                *v /= sum;
            }
        }
        totals
    }

    /// The node-allocation schedule this plan implies (for the engine and for
    /// Figure 12's allocation timeline).
    pub fn node_schedule(&self) -> Vec<NodeAllocation> {
        let mut schedule = Vec::new();
        let computes: std::collections::BTreeSet<String> = self
            .intervals
            .iter()
            .flat_map(|p| p.nodes.keys().cloned())
            .collect();
        for compute in computes {
            let mut prev = usize::MAX;
            for (t, p) in self.intervals.iter().enumerate() {
                let n = p.nodes.get(&compute).copied().unwrap_or(0);
                if n != prev {
                    schedule.push(NodeAllocation {
                        from_hour: t as f64 * self.interval_hours,
                        instance_type: compute.clone(),
                        nodes: n,
                    });
                    prev = n;
                }
            }
        }
        schedule
    }

    /// Converts the plan into engine deployment options.
    ///
    /// `storage_to_location` maps the pool's storage-resource names onto the
    /// engine's [`DataLocation`]s (e.g. `"S3" -> S3`, `"EC2-disk" ->
    /// InstanceDisk`).
    pub fn to_deployment_options(
        &self,
        name: impl Into<String>,
        uplink_gbph: f64,
        deadline_hours: Option<f64>,
        storage_to_location: &BTreeMap<String, DataLocation>,
    ) -> DeploymentOptions {
        let mix = self.storage_mix();
        let mut upload_plan: Vec<(DataLocation, f64)> = Vec::new();
        for (storage, fraction) in &mix {
            if let Some(loc) = storage_to_location.get(storage) {
                if *fraction > 0.0 {
                    upload_plan.push((*loc, *fraction));
                }
            }
        }
        DeploymentOptions {
            node_schedule: self.node_schedule(),
            upload_plan,
            deadline_hours,
            ..DeploymentOptions::new(name, uplink_gbph)
        }
    }

    /// The default storage-name → engine-location mapping for the AWS catalog
    /// (plus the hybrid local cluster).
    pub fn default_location_map() -> BTreeMap<String, DataLocation> {
        let mut m = BTreeMap::new();
        m.insert("S3".to_string(), DataLocation::S3);
        m.insert("EC2-disk".to_string(), DataLocation::InstanceDisk);
        m.insert("local-disk".to_string(), DataLocation::LocalDisk);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ModelConfig, ModelInstance};
    use crate::resources::ResourcePool;
    use conductor_cloud::Catalog;
    use conductor_mapreduce::Workload;

    fn solved_plan() -> ExecutionPlan {
        let pool = ResourcePool::from_catalog(&Catalog::aws_july_2011(), 1.0)
            .with_compute_only(&["m1.large"]);
        let spec = Workload::KMeans32Gb.spec();
        let model = ModelInstance::build(&pool, &spec, &ModelConfig::default()).unwrap();
        let sol = model.problem.solve().unwrap();
        ExecutionPlan::from_solution(&model, &sol)
    }

    #[test]
    fn plan_covers_all_intervals_and_work() {
        let plan = solved_plan();
        assert_eq!(plan.len(), 6);
        let total_map: f64 = plan.intervals.iter().map(|p| p.map_gb).sum();
        assert!((total_map - 32.0).abs() < 1e-3);
        let total_upload: f64 = plan
            .intervals
            .iter()
            .flat_map(|p| p.upload_gb.values())
            .sum();
        assert!((total_upload - 32.0).abs() < 1e-3);
        assert!(plan.expected_cost > 0.0);
        assert!(plan.expected_completion_hours <= 6.0 + 1e-9);
    }

    #[test]
    fn node_hours_match_processing_requirement() {
        let plan = solved_plan();
        let hours = plan.node_hours();
        let large = hours.get("m1.large").copied().unwrap_or(0.0);
        // At 0.44 GB/h per node, 32 GB needs at least ~73 node-hours.
        assert!(large >= 32.0 / 0.44 - 1e-6, "node-hours {large}");
        assert!(plan.peak_nodes("m1.large") >= 13);
        assert_eq!(plan.peak_nodes("c1.xlarge"), 0);
    }

    #[test]
    fn storage_mix_fractions_sum_to_one() {
        let plan = solved_plan();
        let mix = plan.storage_mix();
        let sum: f64 = mix.values().sum();
        assert!((sum - 1.0).abs() < 1e-6, "mix {mix:?}");
    }

    #[test]
    fn node_schedule_is_a_step_function_in_time_order() {
        let plan = solved_plan();
        let schedule = plan.node_schedule();
        assert!(!schedule.is_empty());
        let mut prev = -1.0;
        for step in schedule.iter().filter(|s| s.instance_type == "m1.large") {
            assert!(step.from_hour > prev);
            prev = step.from_hour;
        }
    }

    #[test]
    fn deployment_options_reflect_the_plan() {
        let plan = solved_plan();
        let opts = plan.to_deployment_options(
            "conductor",
            6.7,
            Some(6.0),
            &ExecutionPlan::default_location_map(),
        );
        assert_eq!(opts.deadline_hours, Some(6.0));
        assert!(!opts.node_schedule.is_empty());
        let frac: f64 = opts.upload_plan.iter().map(|(_, f)| *f).sum();
        assert!((frac - 1.0).abs() < 1e-6);
    }

    #[test]
    fn empty_plan_behaves() {
        let plan = ExecutionPlan {
            interval_hours: 1.0,
            intervals: vec![],
            expected_cost: 0.0,
            expected_completion_hours: 0.0,
            proven_optimal: true,
        };
        assert!(plan.is_empty());
        assert_eq!(plan.peak_nodes("m1.large"), 0);
        assert!(plan.node_schedule().is_empty());
        assert!(plan.storage_mix().is_empty());
    }
}
