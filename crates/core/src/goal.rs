//! User-facing optimization goals (§2.2, §3).
//!
//! "Customers only specify goals, e.g., minimizing monetary cost or
//! completion time"; Conductor translates them into an objective and
//! constraints of the dynamic linear program.

use serde::{Deserialize, Serialize};

/// What the customer wants optimized.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Goal {
    /// Minimize monetary cost subject to finishing within `deadline_hours`.
    MinimizeCost {
        /// Completion deadline in hours.
        deadline_hours: f64,
    },
    /// Minimize completion time subject to spending at most `budget_usd`.
    MinimizeTime {
        /// Maximum spend in USD.
        budget_usd: f64,
        /// Upper bound on the completion time to consider (defines the search
        /// horizon; the planner never proposes plans longer than this).
        max_hours: f64,
    },
}

impl Goal {
    /// The planning horizon in whole hours implied by the goal.
    pub fn horizon_hours(&self) -> usize {
        match self {
            Goal::MinimizeCost { deadline_hours } => deadline_hours.ceil().max(1.0) as usize,
            Goal::MinimizeTime { max_hours, .. } => max_hours.ceil().max(1.0) as usize,
        }
    }

    /// The deadline, if this goal has one.
    pub fn deadline_hours(&self) -> Option<f64> {
        match self {
            Goal::MinimizeCost { deadline_hours } => Some(*deadline_hours),
            Goal::MinimizeTime { .. } => None,
        }
    }

    /// The budget, if this goal has one.
    pub fn budget_usd(&self) -> Option<f64> {
        match self {
            Goal::MinimizeCost { .. } => None,
            Goal::MinimizeTime { budget_usd, .. } => Some(*budget_usd),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizon_rounds_up() {
        assert_eq!(
            Goal::MinimizeCost {
                deadline_hours: 6.0
            }
            .horizon_hours(),
            6
        );
        assert_eq!(
            Goal::MinimizeCost {
                deadline_hours: 5.5
            }
            .horizon_hours(),
            6
        );
        assert_eq!(
            Goal::MinimizeTime {
                budget_usd: 40.0,
                max_hours: 12.0
            }
            .horizon_hours(),
            12
        );
        assert_eq!(
            Goal::MinimizeCost {
                deadline_hours: 0.0
            }
            .horizon_hours(),
            1
        );
    }

    #[test]
    fn accessors_expose_the_right_bound() {
        let cost = Goal::MinimizeCost {
            deadline_hours: 6.0,
        };
        assert_eq!(cost.deadline_hours(), Some(6.0));
        assert_eq!(cost.budget_usd(), None);
        let time = Goal::MinimizeTime {
            budget_usd: 40.0,
            max_hours: 10.0,
        };
        assert_eq!(time.deadline_hours(), None);
        assert_eq!(time.budget_usd(), Some(40.0));
    }
}
