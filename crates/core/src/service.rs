//! Fleet-level orchestration: the Conductor *service*.
//!
//! The paper frames Conductor as a service that orchestrates deployments
//! for many customers; [`ConductorService`] is that fleet view. It admits N
//! jobs with staggered arrivals onto one shared discrete-event clock
//! ([`conductor_sim::Simulator`]), plans each arrival against the
//! **residual** capacity left by the jobs already running, prices every
//! tenant against one shared [`SpotMarket`] and catalog, meters a
//! per-tenant [`conductor_cloud::BillingAccount`] (rolled up into a fleet
//! bill), and runs adaptation as periodic *monitor events* on the shared
//! clock — a tenant that falls behind its plan is re-planned in place and
//! its node schedule spliced mid-run, instead of restarting the world.
//!
//! # Residual-capacity admission
//!
//! Each tenant uploads over its own site uplink (tenants are distinct
//! customers), but compute capacity, the spot market and the price catalog
//! are shared — which is exactly where multi-tenant contention shows up.
//! At every arrival the service samples the committed node count of every
//! running job's schedule at each future step and subtracts the *peak*
//! from the fleet-wide `max_nodes` caps
//! ([`ResourcePool::with_compute_cap`]); the arrival is planned by
//! [`Planner`] against that leftover, and rejected (with the reason
//! recorded in [`TenantOutcome::rejection`]) when no feasible plan exists.
//! Re-planning a *running* job uses the same residual with the job itself
//! excluded, since its own schedule is about to be replaced.
//!
//! # The fleet event loop
//!
//! The service is itself a wakeup-handler driver (see
//! [`conductor_mapreduce::execution`] for the per-job half of the
//! protocol). Four event kinds share the clock, class-ordered so an
//! instant settles causes-first: tenant arrivals (admission), job wakeups
//! (delegated to [`JobExecution::on_wakeup`]), **spot revocations**, and
//! monitor ticks. Revocation events come straight from the shared price
//! trace ([`SpotMarket::revocation_hours`]): at every hour the price
//! exceeds the fleet bid ([`ConductorService::with_spot_bid`]), each
//! running job's cloud nodes are terminated via
//! [`JobExecution::kill_cloud_nodes`] — partial hours uncharged,
//! interrupted work returned to the runnable set — and the victim is
//! flagged so the next monitor tick re-plans it against the post-storm
//! residual without waiting for a progress shortfall to accumulate.

use crate::controller::scheduler_for_plan;
use crate::error::ConductorError;
use crate::goal::Goal;
use crate::model::{InitialState, ModelConfig};
use crate::plan::ExecutionPlan;
use crate::planner::{Planner, PlanningReport};
use crate::resources::{ResourcePool, REFERENCE_WORKLOAD_GBPH};
use conductor_cloud::{Catalog, CostBreakdown, SpotMarket};
use conductor_lp::SolveOptions;
use conductor_mapreduce::cluster::nodes_at;
use conductor_mapreduce::execution::{JobExecution, JobPhase, SessionPricing};
use conductor_mapreduce::{JobSpec, NodeAllocation};
use conductor_sim::{ProcessId, ProcessRegistry, Simulator, TIME_EPSILON};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// One tenant's job submission.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetJobRequest {
    /// Tenant name (used as the deployment label and in the fleet report).
    pub tenant: String,
    /// The computation to deploy.
    pub spec: JobSpec,
    /// The tenant's optimization goal.
    pub goal: Goal,
    /// Fleet-clock hour at which the job arrives.
    pub arrival_hours: f64,
}

impl FleetJobRequest {
    /// Creates a request.
    pub fn new(tenant: impl Into<String>, spec: JobSpec, goal: Goal, arrival_hours: f64) -> Self {
        Self {
            tenant: tenant.into(),
            spec,
            goal,
            arrival_hours,
        }
    }
}

/// What happened to one tenant's job.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TenantOutcome {
    /// Tenant name.
    pub tenant: String,
    /// Arrival hour on the fleet clock.
    pub arrival_hours: f64,
    /// `true` when the job was admitted (a plan existed under the residual
    /// capacity at arrival).
    pub admitted: bool,
    /// Why admission failed, when it did.
    pub rejection: Option<String>,
    /// The plan the job was admitted under.
    pub plan: Option<ExecutionPlan>,
    /// Planning effort at admission.
    pub planning: Option<PlanningReport>,
    /// The measured execution (tenant-relative hours; the tenant's bill is
    /// `execution.cost_breakdown`). `None` when the job was rejected at
    /// admission; for a job that failed mid-run (`failure` set) this holds
    /// the *partial* bill accrued up to the abort.
    pub execution: Option<conductor_mapreduce::ExecutionReport>,
    /// Why the admitted job failed to finish, when it did.
    pub failure: Option<String>,
    /// Fleet-clock hours at which the monitor re-planned this job.
    pub replanned_at_hours: Vec<f64>,
    /// Fleet-clock hours at which the spot market revoked nodes from this
    /// job (one entry per revocation event that killed at least one node).
    pub revoked_at_hours: Vec<f64>,
    /// Fleet-clock hour at which the job (including its result download)
    /// completed.
    pub finished_at_hours: Option<f64>,
}

/// The fleet-wide result of one service run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetReport {
    /// Per-tenant outcomes, in submission order.
    pub tenants: Vec<TenantOutcome>,
    /// Sum of all tenant bills (USD), including partial bills of jobs
    /// that failed mid-run.
    pub fleet_cost: f64,
    /// The provider-side roll-up of every tenant's cost breakdown.
    pub fleet_breakdown: CostBreakdown,
    /// Fleet-clock hour at which the last job completed.
    pub makespan_hours: f64,
    /// Jobs admitted.
    pub jobs_admitted: usize,
    /// Jobs that ran to completion.
    pub jobs_completed: usize,
    /// Completed jobs that met their deadline.
    pub deadlines_met: usize,
}

impl FleetReport {
    /// The outcome for a tenant by name.
    pub fn tenant(&self, name: &str) -> Option<&TenantOutcome> {
        self.tenants.iter().find(|t| t.tenant == name)
    }
}

/// Events on the fleet clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FleetEvent {
    /// Request `i` arrives and asks for admission.
    Arrival(usize),
    /// Wakeup for an admitted job's execution process.
    Job(ProcessId),
    /// The spot price rose above the fleet bid at this hour: every running
    /// spot session is terminated by the provider.
    Revocation,
    /// Periodic progress check over every running job.
    MonitorTick,
}

impl FleetEvent {
    /// Arrivals settle first at a tick, then job state, then the market
    /// revokes, then the monitor observes (so it never sees a half-applied
    /// hour). Revocations deliberately order *after* job wakeups at the
    /// same instant: a task that finishes exactly at the out-bid hour
    /// completed its hour and retires normally; only the survivors lose
    /// their nodes.
    fn class(self) -> u8 {
        match self {
            FleetEvent::Arrival(_) => 0,
            FleetEvent::Job(_) => 1,
            FleetEvent::Revocation => 2,
            FleetEvent::MonitorTick => 9,
        }
    }
}

/// One admitted, still-running job.
struct ActiveJob {
    request_idx: usize,
    start: f64,
    exec: JobExecution<'static>,
    spec: JobSpec,
    goal: Goal,
    /// `(fleet_hour, cumulative expected map GB)` checkpoints the monitor
    /// compares real progress against; rebuilt on every re-plan.
    progress_model: Vec<(f64, f64)>,
    /// Set when a revocation killed nodes out from under this job; the
    /// next monitor tick re-plans it against the post-storm residual
    /// without waiting for the progress shortfall to accumulate.
    storm_hit: bool,
}

/// The multi-tenant orchestration service.
#[derive(Debug, Clone)]
pub struct ConductorService {
    catalog: Catalog,
    pool: ResourcePool,
    solve_options: SolveOptions,
    spot_market: Option<SpotMarket>,
    /// Maximum bid per spot instance-hour; `None` bids the on-demand price
    /// (the rational ceiling). Sessions are terminated — and new requests
    /// refused — whenever the trace price rises strictly above this.
    spot_bid: Option<f64>,
    /// Hours between monitor ticks (1.0 = the paper's planning interval).
    monitor_period_hours: f64,
    /// Relative shortfall that triggers a re-plan: the monitor stays quiet
    /// while observed progress is at least `(1 - tolerance)` of the plan's
    /// projection. Covers the fluid model's structural optimism (task
    /// granularity, upload trailing) so a *correct* prediction never
    /// triggers a spurious re-plan.
    monitor_tolerance: f64,
    /// Safety margin subtracted from the remaining deadline when
    /// re-planning (see `AdaptiveController::replan_margin_hours`).
    replan_margin_hours: f64,
    /// Fractional inflation of the remaining work at re-plan time.
    monitor_conservatism: f64,
}

impl ConductorService {
    /// Creates a service over a catalog and the fleet-wide resource pool.
    ///
    /// The pool's `max_nodes` caps are the *fleet* allocation limits every
    /// tenant shares (use [`ResourcePool::with_compute_cap`] to set them);
    /// arrivals are planned against whatever the running jobs leave over.
    pub fn new(catalog: Catalog, pool: ResourcePool) -> Self {
        Self {
            catalog,
            pool,
            solve_options: SolveOptions {
                relative_gap: 0.02,
                max_nodes: 2_000,
                time_limit: std::time::Duration::from_secs(30),
                ..SolveOptions::default()
            },
            spot_market: None,
            spot_bid: None,
            monitor_period_hours: 1.0,
            monitor_tolerance: 0.25,
            replan_margin_hours: 1.0,
            monitor_conservatism: 0.15,
        }
    }

    /// Replaces the solver options used for admission and re-planning.
    pub fn with_solve_options(mut self, options: SolveOptions) -> Self {
        self.solve_options = options;
        self
    }

    /// Attaches a shared spot market: every tenant's rental sessions are
    /// priced at the market's hourly price (capped at on-demand), the
    /// planner sees the same prices as per-interval expectations (eq. 6),
    /// and every hour the trace price exceeds the fleet bid becomes a
    /// [revocation event](Self::with_spot_bid) that terminates the running
    /// spot sessions.
    pub fn with_spot_market(mut self, market: SpotMarket) -> Self {
        self.spot_market = Some(market);
        self
    }

    /// Overrides the fleet's maximum bid per spot instance-hour (default:
    /// the market's on-demand price, the most a rational tenant would
    /// pay). Lower bids buy cheaper hours at the price of more revocation
    /// storms: whenever the trace rises strictly above the bid, every
    /// running spot session is terminated (the partial hour uncharged) and
    /// new requests are refused until the price comes back down.
    pub fn with_spot_bid(mut self, bid: f64) -> Self {
        self.spot_bid = Some(bid.max(0.0));
        self
    }

    /// Overrides the monitor cadence and re-plan trigger tolerance.
    pub fn with_monitor(mut self, period_hours: f64, tolerance: f64) -> Self {
        self.monitor_period_hours = period_hours.max(0.25);
        self.monitor_tolerance = tolerance.clamp(0.0, 1.0);
        self
    }

    /// The fleet-wide resource pool.
    pub fn pool(&self) -> &ResourcePool {
        &self.pool
    }

    /// Admits and runs `requests` on one shared clock, returning the
    /// per-tenant outcomes and the fleet roll-up. Individual admission
    /// failures and job failures are reported per tenant, not as errors.
    pub fn run(&self, requests: &[FleetJobRequest]) -> Result<FleetReport, ConductorError> {
        self.pool.validate().map_err(ConductorError::InvalidInput)?;
        for r in requests {
            if !r.arrival_hours.is_finite() || r.arrival_hours < 0.0 {
                return Err(ConductorError::InvalidInput(format!(
                    "tenant `{}` has invalid arrival hour {}",
                    r.tenant, r.arrival_hours
                )));
            }
        }

        let mut sim: Simulator<FleetEvent> = Simulator::new();
        let mut registry = ProcessRegistry::new();
        let mut active: BTreeMap<ProcessId, ActiveJob> = BTreeMap::new();
        let mut outcomes: Vec<TenantOutcome> = requests
            .iter()
            .map(|r| TenantOutcome {
                tenant: r.tenant.clone(),
                arrival_hours: r.arrival_hours,
                admitted: false,
                rejection: None,
                plan: None,
                planning: None,
                execution: None,
                failure: None,
                replanned_at_hours: Vec::new(),
                revoked_at_hours: Vec::new(),
                finished_at_hours: None,
            })
            .collect();

        for (i, r) in requests.iter().enumerate() {
            sim.schedule(
                r.arrival_hours,
                FleetEvent::Arrival(i).class(),
                FleetEvent::Arrival(i),
            );
        }
        let mut arrivals_pending = requests.len();
        if let Some(first) = requests.iter().map(|r| r.arrival_hours).reduce(f64::min) {
            let tick = first + self.monitor_period_hours;
            sim.schedule(
                tick,
                FleetEvent::MonitorTick.class(),
                FleetEvent::MonitorTick,
            );
        }
        // The trace-driven revocation schedule: one event per hour the spot
        // price sits above the fleet bid, shared by every tenant. These are
        // first-class events on the shared clock, not a post-hoc price
        // adjustment — a storm interrupts running executions mid-flight.
        if let Some(market) = &self.spot_market {
            let bid = self.effective_bid(market);
            for hour in market.revocation_hours(0, market.trace().len(), bid) {
                sim.schedule(
                    hour as f64,
                    FleetEvent::Revocation.class(),
                    FleetEvent::Revocation,
                );
            }
        }

        let mut batch = Vec::new();
        let mut last_hour = 0.0f64;
        while let Some(now) = sim.pop_due(&mut batch) {
            last_hour = now;
            let mut woken: BTreeSet<ProcessId> = BTreeSet::new();
            for event in batch.drain(..) {
                match event {
                    FleetEvent::Arrival(i) => {
                        arrivals_pending -= 1;
                        if let Some((job, initial)) =
                            self.admit(i, &requests[i], now, &active, &mut outcomes[i])
                        {
                            let pid = registry.register();
                            for (t, _) in initial {
                                sim.schedule(
                                    now + t,
                                    FleetEvent::Job(pid).class(),
                                    FleetEvent::Job(pid),
                                );
                            }
                            active.insert(pid, job);
                        }
                    }
                    FleetEvent::Job(pid) => {
                        if !woken.insert(pid) {
                            continue; // already advanced at this instant
                        }
                        self.wake_job(pid, now, &mut sim, &mut active, &mut outcomes);
                    }
                    FleetEvent::Revocation => {
                        for (pid, job) in active.iter_mut() {
                            let rel = (now - job.start).max(0.0);
                            let (killed, wakeups) = job.exec.kill_cloud_nodes(rel);
                            if killed == 0 {
                                continue;
                            }
                            job.storm_hit = true;
                            outcomes[job.request_idx].revoked_at_hours.push(now);
                            for (t, _) in wakeups {
                                sim.schedule(
                                    job.start + t,
                                    FleetEvent::Job(*pid).class(),
                                    FleetEvent::Job(*pid),
                                );
                            }
                            // Wake the victim immediately: it reconciles
                            // against the out-bid market and schedules its
                            // own recovery-hour retry, instead of sleeping
                            // on wakeups for tasks that no longer run.
                            sim.schedule(now, FleetEvent::Job(*pid).class(), FleetEvent::Job(*pid));
                        }
                    }
                    FleetEvent::MonitorTick => {
                        self.monitor(now, &mut sim, &mut active, &mut outcomes);
                        if !active.is_empty() || arrivals_pending > 0 {
                            let next = now + self.monitor_period_hours;
                            sim.schedule(
                                next,
                                FleetEvent::MonitorTick.class(),
                                FleetEvent::MonitorTick,
                            );
                        }
                    }
                }
            }
        }

        // Any job still active when the heap drained is stuck; its accrued
        // spend still belongs on the fleet bill.
        for (_, job) in active {
            let rel = (last_hour - job.start).max(0.0);
            let o = &mut outcomes[job.request_idx];
            o.failure = Some("job stalled: no further events pending".into());
            o.execution = Some(job.exec.abort(rel));
        }

        let mut fleet_breakdown = CostBreakdown::default();
        let mut fleet_cost = 0.0;
        let mut makespan: f64 = 0.0;
        let mut completed = 0;
        let mut deadlines_met = 0;
        for o in &outcomes {
            if let Some(exec) = &o.execution {
                // Aborted jobs carry a partial bill: real spend either way.
                fleet_cost += exec.total_cost;
                fleet_breakdown.absorb(&exec.cost_breakdown);
                if o.failure.is_none() {
                    completed += 1;
                    if exec.met_deadline == Some(true) {
                        deadlines_met += 1;
                    }
                }
            }
            if let Some(t) = o.finished_at_hours {
                makespan = makespan.max(t);
            }
        }
        let jobs_admitted = outcomes.iter().filter(|o| o.admitted).count();
        Ok(FleetReport {
            tenants: outcomes,
            fleet_cost,
            fleet_breakdown,
            makespan_hours: makespan,
            jobs_admitted,
            jobs_completed: completed,
            deadlines_met,
        })
    }

    /// Plans one arrival against the residual capacity and, on success,
    /// builds its execution process. Returns `None` (after recording the
    /// rejection) when no feasible plan exists.
    #[allow(clippy::too_many_arguments)]
    fn admit(
        &self,
        request_idx: usize,
        request: &FleetJobRequest,
        now: f64,
        active: &BTreeMap<ProcessId, ActiveJob>,
        outcome: &mut TenantOutcome,
    ) -> Option<(ActiveJob, Vec<(f64, conductor_mapreduce::JobEvent)>)> {
        let residual = self.residual_pool(now, active, None);
        if let Err(reason) = residual.validate() {
            outcome.rejection = Some(format!("no residual capacity: {reason}"));
            return None;
        }
        let planner = Planner::new(residual.clone()).with_solve_options(self.solve_options.clone());
        let config = ModelConfig {
            price_forecast: self.price_forecast(now, request.goal.horizon_hours()),
            ..ModelConfig::default()
        };
        let (plan, planning) = match planner.plan_with_config(&request.spec, request.goal, &config)
        {
            Ok(result) => result,
            Err(e) => {
                outcome.rejection = Some(format!("admission planning failed: {e}"));
                return None;
            }
        };

        let options = plan.to_deployment_options(
            request.tenant.clone(),
            self.pool.uplink_gbph,
            request.goal.deadline_hours(),
            &ExecutionPlan::default_location_map(),
        );
        let scheduler = scheduler_for_plan(&plan, &self.pool);
        let pricing = match &self.spot_market {
            Some(market) => SessionPricing::Spot {
                market: market.clone(),
                start_offset_hours: now,
                bid: self.effective_bid(market),
            },
            None => SessionPricing::OnDemand,
        };
        let exec = match JobExecution::new(
            &self.catalog,
            &request.spec,
            options,
            Box::new(scheduler),
            pricing,
        ) {
            Ok(exec) => exec,
            Err(e) => {
                outcome.rejection = Some(format!("deployment rejected: {e}"));
                return None;
            }
        };

        outcome.admitted = true;
        outcome.plan = Some(plan.clone());
        outcome.planning = Some(planning);
        let progress_model = progress_checkpoints(now, 0.0, &plan);
        let initial = exec.initial_events();
        Some((
            ActiveJob {
                request_idx,
                start: now,
                exec,
                spec: request.spec.clone(),
                goal: request.goal,
                progress_model,
                storm_hit: false,
            },
            initial,
        ))
    }

    /// Advances one job's execution process at fleet hour `now`, handling
    /// completion, the max-hours cap and stuck detection.
    fn wake_job(
        &self,
        pid: ProcessId,
        now: f64,
        sim: &mut Simulator<FleetEvent>,
        active: &mut BTreeMap<ProcessId, ActiveJob>,
        outcomes: &mut [TenantOutcome],
    ) {
        let Some(job) = active.get_mut(&pid) else {
            return; // already finished or failed
        };
        let rel = (now - job.start).max(0.0);
        if matches!(job.exec.phase(), JobPhase::Processing) && rel > job.exec.max_hours() {
            let job = active.remove(&pid).expect("job present");
            let o = &mut outcomes[job.request_idx];
            o.failure = Some(format!(
                "did not finish within {} simulated hours ({} tasks done)",
                job.exec.max_hours(),
                job.exec.completed_tasks()
            ));
            o.execution = Some(job.exec.abort(rel));
            return;
        }
        let follow_ups = job.exec.on_wakeup(rel);
        for (t, _) in follow_ups {
            sim.schedule(
                job.start + t,
                FleetEvent::Job(pid).class(),
                FleetEvent::Job(pid),
            );
        }
        if job.exec.is_done() {
            let job = active.remove(&pid).expect("job present");
            let o = &mut outcomes[job.request_idx];
            let report = job.exec.into_report();
            o.finished_at_hours = Some(job.start + report.completion_hours);
            o.execution = Some(report);
        } else if matches!(job.exec.phase(), JobPhase::Processing)
            && job.exec.next_event_hours(rel).is_none()
        {
            let job = active.remove(&pid).expect("job present");
            let o = &mut outcomes[job.request_idx];
            o.failure = Some(format!(
                "job stuck at hour {rel:.2}: nothing running and nothing scheduled"
            ));
            o.execution = Some(job.exec.abort(rel));
        }
    }

    /// The periodic monitor: compares every running job's observed map
    /// progress against its plan's projection and re-plans laggards in
    /// place, splicing the updated node schedule into the live deployment.
    fn monitor(
        &self,
        now: f64,
        sim: &mut Simulator<FleetEvent>,
        active: &mut BTreeMap<ProcessId, ActiveJob>,
        outcomes: &mut [TenantOutcome],
    ) {
        let pids: Vec<ProcessId> = active.keys().copied().collect();
        for pid in pids {
            let (rel, deadline, expected, progress, storm_hit) = {
                let job = active.get(&pid).expect("active job present");
                if !matches!(job.exec.phase(), JobPhase::Processing) {
                    continue;
                }
                let rel = now - job.start;
                if rel <= TIME_EPSILON {
                    continue;
                }
                let Some(deadline) = job.exec.options().deadline_hours else {
                    continue; // nothing to protect
                };
                let expected = expected_progress(&job.progress_model, now);
                (
                    rel,
                    deadline,
                    expected,
                    job.exec.progress(rel),
                    job.storm_hit,
                )
            };
            let on_track = expected <= 0.0
                || progress.map_done_gb + 1e-6 >= (1.0 - self.monitor_tolerance) * expected;
            // A storm-hit job re-plans even when its checkpoints still look
            // on track: the plan's future capacity just evaporated, and
            // waiting for the shortfall to show up wastes the hours the
            // deadline rescue needs.
            if on_track && !storm_hit {
                continue;
            }
            // Too late to act? Leave the schedule alone and let it ride.
            if deadline - rel <= self.replan_margin_hours + 1.0 {
                clear_storm_flag(active, pid);
                continue;
            }
            // Observed per-node throughput over the hours actually fielded.
            // A storm victim with no fielded hours yet keeps its flag and
            // retries at the next tick, once it has observed something.
            if progress.allocated_node_hours <= TIME_EPSILON {
                continue;
            }
            let observed_gbph = progress.map_done_gb / progress.allocated_node_hours;
            if observed_gbph <= 0.0 {
                continue;
            }
            clear_storm_flag(active, pid);
            self.replan_job(
                pid,
                now,
                rel,
                deadline,
                observed_gbph,
                sim,
                active,
                outcomes,
            );
        }
    }

    /// Re-plans one lagging job from its observed state with the observed
    /// throughput, against the residual capacity the *other* jobs leave.
    #[allow(clippy::too_many_arguments)]
    fn replan_job(
        &self,
        pid: ProcessId,
        now: f64,
        rel: f64,
        deadline: f64,
        observed_gbph: f64,
        sim: &mut Simulator<FleetEvent>,
        active: &mut BTreeMap<ProcessId, ActiveJob>,
        outcomes: &mut [TenantOutcome],
    ) {
        let (spec, goal, progress) = {
            let job = active.get(&pid).expect("active job present");
            (job.spec.clone(), job.goal, job.exec.progress(rel))
        };

        // Corrected capacities in reference-workload units (mirrors
        // `AdaptiveController::pool_with_throughput`).
        let reference_units = if spec.reference_throughput_gbph > 0.0 {
            observed_gbph * (REFERENCE_WORKLOAD_GBPH / spec.reference_throughput_gbph)
        } else {
            observed_gbph
        };
        let mut residual = self.residual_pool(now, active, Some(pid));
        for c in &mut residual.compute {
            c.capacity_gbph = reference_units;
        }
        if residual.validate().is_err() {
            return;
        }

        // Observed state, with the conservatism the fluid model needs.
        let mut initial = InitialState::default();
        let location_names = location_to_storage_names();
        for (loc, gb) in &progress.stored_gb {
            if let Some(name) = location_names.get(loc) {
                initial.stored_gb.insert(name.to_string(), *gb);
            }
        }
        let remaining = (spec.input_gb - progress.map_done_gb).max(0.0);
        initial.map_done_gb =
            (spec.input_gb - remaining * (1.0 + self.monitor_conservatism)).max(0.0);

        let remaining_goal = match goal {
            Goal::MinimizeCost { .. } => Goal::MinimizeCost {
                deadline_hours: (deadline - rel - self.replan_margin_hours).max(1.0),
            },
            Goal::MinimizeTime {
                budget_usd,
                max_hours,
            } => Goal::MinimizeTime {
                budget_usd,
                max_hours: (max_hours - rel - self.replan_margin_hours).max(1.0),
            },
        };
        let config = ModelConfig {
            initial,
            price_forecast: self.price_forecast(now, remaining_goal.horizon_hours()),
            ..ModelConfig::default()
        };
        let planner = Planner::new(residual).with_solve_options(self.solve_options.clone());
        let Ok((updated, _)) = planner.plan_with_config(&spec, remaining_goal, &config) else {
            return; // keep the current schedule; the next tick may retry
        };

        let job = active.get_mut(&pid).expect("active job present");
        let new_steps: Vec<NodeAllocation> = updated
            .node_schedule()
            .into_iter()
            .map(|mut step| {
                step.from_hour += rel;
                step
            })
            .collect();
        let wakeups = job.exec.splice_node_schedule(rel, rel, new_steps);
        for (t, _) in wakeups {
            sim.schedule(
                job.start + t,
                FleetEvent::Job(pid).class(),
                FleetEvent::Job(pid),
            );
        }
        // Wake the job at the splice point so an immediate scale-up at
        // `rel` takes effect without waiting for the next old event.
        sim.schedule(now, FleetEvent::Job(pid).class(), FleetEvent::Job(pid));
        job.progress_model = progress_checkpoints(now, progress.map_done_gb, &updated);
        outcomes[job.request_idx].replanned_at_hours.push(now);
    }

    /// The capacity left over at fleet hour `at` once every active job's
    /// future node commitments are subtracted, excluding `exclude` (used
    /// when re-planning that job: its own schedule is about to be
    /// replaced).
    fn residual_pool(
        &self,
        at: f64,
        active: &BTreeMap<ProcessId, ActiveJob>,
        exclude: Option<ProcessId>,
    ) -> ResourcePool {
        let mut pool = self.pool.clone();
        // Sample the fleet commitment at `at` and at every future schedule
        // step of any running job; the peak over those samples is what a
        // new plan can never have.
        let mut sample_points: Vec<f64> = vec![at];
        for (pid, job) in active {
            if Some(*pid) == exclude {
                continue;
            }
            for step in job.exec.node_schedule() {
                let abs = job.start + step.from_hour;
                if abs > at + TIME_EPSILON {
                    sample_points.push(abs);
                }
            }
        }
        for c in &mut pool.compute {
            let Some(cap) = c.max_nodes else {
                continue; // uncapped resources have no contention
            };
            let mut peak = 0usize;
            for &p in &sample_points {
                let mut committed = 0usize;
                for (pid, job) in active {
                    if Some(*pid) == exclude {
                        continue;
                    }
                    committed += nodes_at(job.exec.node_schedule(), &c.name, p - job.start);
                }
                peak = peak.max(committed);
            }
            c.max_nodes = Some(cap.saturating_sub(peak));
        }
        pool
    }

    /// The fleet's maximum bid per spot instance-hour: the configured
    /// override, or the market's on-demand price (the rational ceiling).
    fn effective_bid(&self, market: &SpotMarket) -> f64 {
        self.spot_bid.unwrap_or(market.on_demand_price)
    }

    /// Per-interval price expectations from the shared spot market (empty
    /// when the fleet buys on-demand).
    fn price_forecast(&self, now: f64, horizon: usize) -> BTreeMap<String, Vec<f64>> {
        let mut forecast = BTreeMap::new();
        if let Some(market) = &self.spot_market {
            let start = now.floor().max(0.0) as usize;
            for c in &self.pool.compute {
                if !c.is_local {
                    forecast.insert(c.name.clone(), market.price_forecast(start, horizon));
                }
            }
        }
        forecast
    }
}

/// Clears a job's storm flag once the monitor has acted on (or given up
/// on) the revocation.
fn clear_storm_flag(active: &mut BTreeMap<ProcessId, ActiveJob>, pid: ProcessId) {
    if let Some(job) = active.get_mut(&pid) {
        job.storm_hit = false;
    }
}

/// `(fleet_hour, cumulative expected map GB)` checkpoints implied by a
/// plan starting at `start` with `done_gb` of the input already processed.
fn progress_checkpoints(start: f64, done_gb: f64, plan: &ExecutionPlan) -> Vec<(f64, f64)> {
    let mut out = Vec::with_capacity(plan.intervals.len());
    let mut cum = done_gb;
    for (k, interval) in plan.intervals.iter().enumerate() {
        cum += interval.map_gb;
        out.push((start + (k as f64 + 1.0) * plan.interval_hours, cum));
    }
    out
}

/// Expected cumulative map progress at fleet hour `now` (the last fully
/// elapsed checkpoint; zero before the first).
fn expected_progress(checkpoints: &[(f64, f64)], now: f64) -> f64 {
    checkpoints
        .iter()
        .take_while(|(h, _)| *h <= now + TIME_EPSILON)
        .last()
        .map(|(_, gb)| *gb)
        .unwrap_or(0.0)
}

/// Inverse of [`ExecutionPlan::default_location_map`]: engine locations
/// back to pool storage-resource names, for building re-planning state.
fn location_to_storage_names() -> BTreeMap<conductor_mapreduce::DataLocation, &'static str> {
    use conductor_mapreduce::DataLocation;
    let mut m = BTreeMap::new();
    m.insert(DataLocation::S3, "S3");
    m.insert(DataLocation::InstanceDisk, "EC2-disk");
    m.insert(DataLocation::LocalDisk, "local-disk");
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use conductor_cloud::SpotTrace;
    use conductor_mapreduce::Workload;
    use std::time::Duration;

    fn fast_options() -> SolveOptions {
        SolveOptions {
            relative_gap: 0.02,
            max_nodes: 2_000,
            time_limit: Duration::from_secs(30),
            ..Default::default()
        }
    }

    fn service(cap: usize) -> ConductorService {
        let catalog = Catalog::aws_july_2011();
        let pool = ResourcePool::from_catalog(&catalog, 1.0)
            .with_compute_only(&["m1.large"])
            .with_compute_cap("m1.large", cap);
        ConductorService::new(catalog, pool).with_solve_options(fast_options())
    }

    fn request(tenant: &str, arrival: f64, deadline: f64) -> FleetJobRequest {
        FleetJobRequest::new(
            tenant,
            Workload::KMeans32Gb.spec(),
            Goal::MinimizeCost {
                deadline_hours: deadline,
            },
            arrival,
        )
    }

    #[test]
    fn single_job_fleet_matches_job_controller() {
        // A one-tenant fleet with ample capacity behaves exactly like the
        // single-job controller pipeline: same planner inputs, same engine.
        let svc = service(200);
        let report = svc.run(&[request("solo", 0.0, 6.0)]).unwrap();
        assert_eq!(report.jobs_admitted, 1);
        assert_eq!(report.jobs_completed, 1);
        let solo = report.tenant("solo").unwrap();
        let exec = solo.execution.as_ref().unwrap();
        assert_eq!(exec.met_deadline, Some(true));
        assert!(
            solo.replanned_at_hours.is_empty(),
            "monitor should stay quiet"
        );

        let catalog = Catalog::aws_july_2011();
        let pool = ResourcePool::from_catalog(&catalog, 1.0).with_compute_only(&["m1.large"]);
        let ctl = crate::controller::JobController::new(
            catalog,
            Planner::new(pool).with_solve_options(fast_options()),
        )
        .unwrap();
        let outcome = ctl
            .run(
                &Workload::KMeans32Gb.spec(),
                Goal::MinimizeCost {
                    deadline_hours: 6.0,
                },
            )
            .unwrap();
        assert!((exec.total_cost - outcome.execution.total_cost).abs() < 1e-9);
        assert!((exec.completion_hours - outcome.execution.completion_hours).abs() < 1e-9);
    }

    #[test]
    fn residual_capacity_shrinks_under_load() {
        let svc = service(20);
        let mut active = BTreeMap::new();
        let residual = svc.residual_pool(0.0, &active, None);
        assert_eq!(
            residual.compute_resource("m1.large").unwrap().max_nodes,
            Some(20)
        );
        // Admit one job and check the leftover.
        let mut outcome = TenantOutcome {
            tenant: "a".into(),
            arrival_hours: 0.0,
            admitted: false,
            rejection: None,
            plan: None,
            planning: None,
            execution: None,
            failure: None,
            replanned_at_hours: Vec::new(),
            revoked_at_hours: Vec::new(),
            finished_at_hours: None,
        };
        let (job, _) = svc
            .admit(0, &request("a", 0.0, 6.0), 0.0, &active, &mut outcome)
            .expect("admission succeeds");
        let peak: usize = job
            .exec
            .node_schedule()
            .iter()
            .map(|s| s.nodes)
            .max()
            .unwrap_or(0);
        assert!(peak > 0);
        active.insert(ProcessId(0), job);
        let residual = svc.residual_pool(0.0, &active, None);
        assert_eq!(
            residual.compute_resource("m1.large").unwrap().max_nodes,
            Some(20 - peak)
        );
        // Excluding the job restores the full fleet cap.
        let residual = svc.residual_pool(0.0, &active, Some(ProcessId(0)));
        assert_eq!(
            residual.compute_resource("m1.large").unwrap().max_nodes,
            Some(20)
        );
    }

    #[test]
    fn oversubscribed_arrival_is_rejected_with_reason() {
        // Fleet cap so small the second arrival cannot plan at all.
        let svc = service(16);
        let report = svc
            .run(&[request("first", 0.0, 6.0), request("second", 0.5, 6.0)])
            .unwrap();
        let first = report.tenant("first").unwrap();
        assert!(first.admitted);
        let second = report.tenant("second").unwrap();
        assert!(!second.admitted);
        assert!(second
            .rejection
            .as_deref()
            .unwrap()
            .contains("planning failed"));
        // The fleet bill only covers the admitted tenant.
        assert!((report.fleet_cost - first.execution.as_ref().unwrap().total_cost).abs() < 1e-9);
    }

    #[test]
    fn shared_spot_market_lowers_every_tenants_bill() {
        let on_demand = service(100);
        let spot = service(100).with_spot_market(SpotMarket::new(
            SpotTrace::electricity_like(17, 24 * 10),
            0.34,
        ));
        let requests = [request("a", 0.0, 6.0), request("b", 1.0, 7.0)];
        let regular = on_demand.run(&requests).unwrap();
        let discounted = spot.run(&requests).unwrap();
        assert_eq!(discounted.jobs_completed, 2);
        for tenant in ["a", "b"] {
            let r = regular.tenant(tenant).unwrap().execution.as_ref().unwrap();
            let d = discounted
                .tenant(tenant)
                .unwrap()
                .execution
                .as_ref()
                .unwrap();
            assert!(
                d.total_cost < r.total_cost,
                "{tenant}: spot {} vs on-demand {}",
                d.total_cost,
                r.total_cost
            );
        }
        assert!(discounted.fleet_cost < regular.fleet_cost);
    }

    #[test]
    fn progress_checkpoints_accumulate_and_sample() {
        let plan = ExecutionPlan {
            interval_hours: 1.0,
            intervals: vec![
                crate::plan::IntervalPlan {
                    map_gb: 4.0,
                    ..Default::default()
                },
                crate::plan::IntervalPlan {
                    map_gb: 6.0,
                    ..Default::default()
                },
            ],
            expected_cost: 0.0,
            expected_completion_hours: 2.0,
            proven_optimal: true,
        };
        let cps = progress_checkpoints(2.0, 1.0, &plan);
        assert_eq!(cps, vec![(3.0, 5.0), (4.0, 11.0)]);
        assert_eq!(expected_progress(&cps, 2.5), 0.0);
        assert_eq!(expected_progress(&cps, 3.0), 5.0);
        assert_eq!(expected_progress(&cps, 10.0), 11.0);
    }
}
