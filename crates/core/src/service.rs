//! Fleet-level orchestration: the Conductor *service*, as a batch facade.
//!
//! The paper frames Conductor as a service that orchestrates deployments
//! for many customers. The machinery behind that — admission against
//! residual capacity, one shared [`SpotMarket`] and clock, per-tenant
//! billing, revocation storms, monitor-event re-planning — lives in the
//! incremental [`Fleet`] session API (see [`crate::fleet`]).
//! [`ConductorService`] is the closed-world wrapper
//! kept for batch workloads and backwards compatibility: configure once,
//! hand it the full request list, get the drained [`FleetReport`].
//!
//! `run` is *pinned bitwise identical* to the pre-redesign driver (and to
//! the incremental path): it opens a [`Fleet`],
//! submits every request up front, drains to quiescence and returns the
//! report — `tests/fleet_api.rs` asserts the equivalence on the
//! multi-job, revocation-storm and Poisson-churn suites.
//!
//! The `with_*` builders survive as a convenience layer over
//! [`FleetConfig`]; new code should construct a `FleetConfig` directly
//! (validated once at [`Fleet::new`](crate::fleet::Fleet::new) /
//! [`ConductorService::open`]) and drive the session incrementally.

use crate::error::ConductorError;
use crate::fleet::{Fleet, FleetConfig};
use crate::resources::ResourcePool;
use conductor_cloud::{Catalog, SpotMarket};
use conductor_lp::SolveOptions;

pub use crate::fleet::{FleetJobRequest, FleetReport, TenantOutcome};

/// The multi-tenant orchestration service: a configured fleet factory
/// whose [`run`](Self::run) executes one closed-world batch.
#[derive(Debug, Clone)]
pub struct ConductorService {
    catalog: Catalog,
    pool: ResourcePool,
    config: FleetConfig,
}

impl ConductorService {
    /// Creates a service over a catalog and the fleet-wide resource pool.
    ///
    /// The pool's `max_nodes` caps are the *fleet* allocation limits every
    /// tenant shares (use [`ResourcePool::with_compute_cap`] to set them);
    /// arrivals are planned against whatever the running jobs leave over.
    pub fn new(catalog: Catalog, pool: ResourcePool) -> Self {
        Self {
            catalog,
            pool,
            config: FleetConfig::default(),
        }
    }

    /// Replaces the solver options used for admission and re-planning.
    pub fn with_solve_options(mut self, options: SolveOptions) -> Self {
        self.config.solve_options = options;
        self
    }

    /// Attaches a shared spot market: every tenant's rental sessions are
    /// priced at the market's hourly price (capped at on-demand), the
    /// planner sees the same prices as per-interval expectations (eq. 6),
    /// and every hour the trace price exceeds the fleet bid becomes a
    /// [revocation event](Self::with_spot_bid) that terminates the running
    /// spot sessions.
    pub fn with_spot_market(mut self, market: SpotMarket) -> Self {
        self.config.spot_market = Some(market);
        self
    }

    /// Overrides the fleet's maximum bid per spot instance-hour (default:
    /// the market's on-demand price, the most a rational tenant would
    /// pay). Lower bids buy cheaper hours at the price of more revocation
    /// storms: whenever the trace rises strictly above the bid, every
    /// running spot session is terminated (the partial hour uncharged) and
    /// new requests are refused until the price comes back down.
    /// Individual tenants can override this per job via
    /// [`FleetJobRequest::with_spot_bid`].
    pub fn with_spot_bid(mut self, bid: f64) -> Self {
        self.config.spot_bid = Some(bid.max(0.0));
        self
    }

    /// Attaches a failure policy: seeded fault injection, per-tenant
    /// retry with exponential backoff and a dead-letter queue, an
    /// admission gate over a sliding window of outcomes, and a
    /// spot-market circuit breaker with on-demand fallback (see
    /// [`crate::policy`]). The default policy is inert; the knobs are
    /// validated when the fleet is opened.
    pub fn with_failure_policy(mut self, policy: crate::policy::FailurePolicy) -> Self {
        self.config.policy = policy;
        self
    }

    /// Enables the admission plan cache: look-alike arrivals reuse a
    /// sibling's plan shape when it fits the current residual capacity
    /// and its re-priced cost is certified against a fresh root LP
    /// relaxation bound, skipping the branch & bound solve entirely (see
    /// [`FleetConfig::plan_cache`]). Off by default.
    pub fn with_plan_cache(mut self, enable: bool) -> Self {
        self.config.plan_cache = enable;
        self
    }

    /// Enables plan-cache *shadow* validation: every admission probes the
    /// cache and records how the would-be hit compares against the full
    /// solve that actually decides, without ever using a cached plan (see
    /// [`FleetConfig::plan_cache_shadow`]). The trajectory stays bitwise
    /// identical to a cache-off run; query the comparison through
    /// [`Fleet::plan_cache_shadow_stats`](crate::fleet::Fleet::plan_cache_shadow_stats).
    pub fn with_plan_cache_shadow(mut self, enable: bool) -> Self {
        self.config.plan_cache_shadow = enable;
        self
    }

    /// Overrides the monitor cadence and re-plan trigger tolerance. The
    /// values are validated when the fleet is opened ([`Self::open`] /
    /// [`Self::run`]): the period must be finite and positive, the
    /// tolerance finite and within `[0, 1]` — NaN no longer reaches the
    /// event heap.
    pub fn with_monitor(mut self, period_hours: f64, tolerance: f64) -> Self {
        self.config.monitor_period_hours = period_hours;
        self.config.monitor_tolerance = tolerance;
        self
    }

    /// The fleet-wide resource pool.
    pub fn pool(&self) -> &ResourcePool {
        &self.pool
    }

    /// The session configuration the builders have accumulated.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The instance-type catalog. Together with [`pool`](Self::pool) and
    /// [`config`](Self::config), these are the three session inputs
    /// [`Fleet::restore`] and [`Fleet::replay`] take alongside a
    /// checkpoint or event log.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Reopens a checkpointed session with this service's catalog, pool
    /// and configuration — see [`Fleet::restore`].
    pub fn restore(&self, snapshot: &crate::fleet::FleetSnapshot) -> Result<Fleet, ConductorError> {
        Fleet::restore(
            self.catalog.clone(),
            self.pool.clone(),
            self.config.clone(),
            snapshot,
        )
    }

    /// Reconstructs a session from a persisted event log with this
    /// service's catalog, pool and configuration — see [`Fleet::replay`].
    pub fn replay(&self, log: &[crate::fleet::FleetEvent]) -> Result<Fleet, ConductorError> {
        Fleet::replay(
            self.catalog.clone(),
            self.pool.clone(),
            self.config.clone(),
            log,
        )
    }

    /// Opens an incremental [`Fleet`] session with this service's catalog,
    /// pool and configuration — the open-world API behind [`Self::run`]:
    /// submit at any time, step the clock, cancel, query live status,
    /// subscribe to the typed event stream.
    pub fn open(&self) -> Result<Fleet, ConductorError> {
        Fleet::new(self.catalog.clone(), self.pool.clone(), self.config.clone())
    }

    /// Opens a [`ShardedFleet`](crate::shards::ShardedFleet) over this
    /// service's catalog, pool and configuration: the pool is split into
    /// `config.shards` slices and one shard session opens per slice. See
    /// the [`crate::shards`] module for placement, transfer and
    /// determinism semantics.
    pub fn open_sharded(
        &self,
        config: crate::shards::ShardedFleetConfig,
    ) -> Result<crate::shards::ShardedFleet, ConductorError> {
        crate::shards::ShardedFleet::new(
            self.catalog.clone(),
            self.pool.clone(),
            self.config.clone(),
            config,
        )
    }

    /// Admits and runs `requests` on one shared clock, returning the
    /// per-tenant outcomes and the fleet roll-up. Individual admission
    /// failures and job failures are reported per tenant, not as errors.
    ///
    /// This is the submit-all-then-drain compatibility path over the
    /// incremental session; it reproduces the pre-redesign reports bit
    /// for bit.
    pub fn run(&self, requests: &[FleetJobRequest]) -> Result<FleetReport, ConductorError> {
        let mut fleet = self.open()?;
        for request in requests {
            fleet.submit(request.clone())?;
        }
        fleet.run_to_quiescence();
        Ok(fleet.report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::goal::Goal;
    use crate::planner::Planner;
    use conductor_cloud::SpotTrace;
    use conductor_mapreduce::Workload;
    use std::time::Duration;

    fn fast_options() -> SolveOptions {
        SolveOptions {
            relative_gap: 0.02,
            max_nodes: 2_000,
            time_limit: Duration::from_secs(30),
            ..Default::default()
        }
    }

    fn service(cap: usize) -> ConductorService {
        let catalog = Catalog::aws_july_2011();
        let pool = ResourcePool::from_catalog(&catalog, 1.0)
            .with_compute_only(&["m1.large"])
            .with_compute_cap("m1.large", cap);
        ConductorService::new(catalog, pool).with_solve_options(fast_options())
    }

    fn request(tenant: &str, arrival: f64, deadline: f64) -> FleetJobRequest {
        FleetJobRequest::new(
            tenant,
            Workload::KMeans32Gb.spec(),
            Goal::MinimizeCost {
                deadline_hours: deadline,
            },
            arrival,
        )
    }

    #[test]
    fn single_job_fleet_matches_job_controller() {
        // A one-tenant fleet with ample capacity behaves exactly like the
        // single-job controller pipeline: same planner inputs, same engine.
        let svc = service(200);
        let report = svc.run(&[request("solo", 0.0, 6.0)]).unwrap();
        assert_eq!(report.jobs_admitted, 1);
        assert_eq!(report.jobs_completed, 1);
        let solo = report.tenant("solo").unwrap();
        let exec = solo.execution.as_ref().unwrap();
        assert_eq!(exec.met_deadline, Some(true));
        assert!(
            solo.replanned_at_hours.is_empty(),
            "monitor should stay quiet"
        );

        let catalog = Catalog::aws_july_2011();
        let pool = ResourcePool::from_catalog(&catalog, 1.0).with_compute_only(&["m1.large"]);
        let ctl = crate::controller::JobController::new(
            catalog,
            Planner::new(pool).with_solve_options(fast_options()),
        )
        .unwrap();
        let outcome = ctl
            .run(
                &Workload::KMeans32Gb.spec(),
                Goal::MinimizeCost {
                    deadline_hours: 6.0,
                },
            )
            .unwrap();
        assert!((exec.total_cost - outcome.execution.total_cost).abs() < 1e-9);
        assert!((exec.completion_hours - outcome.execution.completion_hours).abs() < 1e-9);
    }

    #[test]
    fn oversubscribed_arrival_is_rejected_with_reason() {
        // Fleet cap so small the second arrival cannot plan at all.
        let svc = service(16);
        let report = svc
            .run(&[request("first", 0.0, 6.0), request("second", 0.5, 6.0)])
            .unwrap();
        let first = report.tenant("first").unwrap();
        assert!(first.admitted);
        let second = report.tenant("second").unwrap();
        assert!(!second.admitted);
        assert!(second
            .rejection
            .as_deref()
            .unwrap()
            .contains("planning failed"));
        // The fleet bill only covers the admitted tenant.
        assert!((report.fleet_cost - first.execution.as_ref().unwrap().total_cost).abs() < 1e-9);
    }

    #[test]
    fn shared_spot_market_lowers_every_tenants_bill() {
        let on_demand = service(100);
        let spot = service(100).with_spot_market(SpotMarket::new(
            SpotTrace::electricity_like(17, 24 * 10),
            0.34,
        ));
        let requests = [request("a", 0.0, 6.0), request("b", 1.0, 7.0)];
        let regular = on_demand.run(&requests).unwrap();
        let discounted = spot.run(&requests).unwrap();
        assert_eq!(discounted.jobs_completed, 2);
        for tenant in ["a", "b"] {
            let r = regular.tenant(tenant).unwrap().execution.as_ref().unwrap();
            let d = discounted
                .tenant(tenant)
                .unwrap()
                .execution
                .as_ref()
                .unwrap();
            assert!(
                d.total_cost < r.total_cost,
                "{tenant}: spot {} vs on-demand {}",
                d.total_cost,
                r.total_cost
            );
        }
        assert!(discounted.fleet_cost < regular.fleet_cost);
    }

    #[test]
    fn invalid_monitor_knobs_fail_at_open_not_silently() {
        let svc = service(50).with_monitor(f64::NAN, 0.25);
        assert!(matches!(
            svc.run(&[request("a", 0.0, 6.0)]),
            Err(ConductorError::InvalidInput(_))
        ));
        let svc = service(50).with_monitor(1.0, f64::NAN);
        assert!(matches!(svc.open(), Err(ConductorError::InvalidInput(_))));
        let svc = service(50).with_monitor(-2.0, 0.25);
        assert!(matches!(svc.open(), Err(ConductorError::InvalidInput(_))));
        // An invalid arrival hour is refused before anything runs.
        let svc = service(50);
        assert!(matches!(
            svc.run(&[request("nan", f64::NAN, 6.0)]),
            Err(ConductorError::InvalidInput(_))
        ));
    }
}
