//! Spot-market bidding: predictors and the deployment simulation of §6.5
//! (Figure 14).
//!
//! Conductor extends its model with per-interval price expectations (eq. 6).
//! The paper evaluates a family of simple predictors — `-opt` (oracle),
//! `-p0` (the current price persists), `-pX` (bid the maximum of the past X
//! days) — over two price histories, and reports the average and maximum job
//! cost and its standard deviation across many start times.

use conductor_cloud::{SpotMarket, SpotTrace};
use serde::{Deserialize, Serialize};

/// A spot-price predictor / bidding strategy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BidPredictor {
    /// Do not use the spot market at all; rent regular on-demand instances.
    Regular,
    /// Oracle: knows the future prices exactly (`-opt` in the paper).
    Optimal,
    /// Assume the current spot price will not change (`-p0`).
    Current,
    /// Bid the maximum spot price observed over the previous `days` days
    /// (`-p5`, `-p13`).
    MaxOfPastDays {
        /// Number of days of history to consider.
        days: u32,
    },
}

impl BidPredictor {
    /// Short label used in reports ("regular", "opt", "p0", "p5", ...).
    pub fn label(&self) -> String {
        match self {
            BidPredictor::Regular => "regular".to_string(),
            BidPredictor::Optimal => "opt".to_string(),
            BidPredictor::Current => "p0".to_string(),
            BidPredictor::MaxOfPastDays { days } => format!("p{days}"),
        }
    }

    /// The bid this predictor would place at hour `t` of `trace` for a job
    /// that still needs `remaining_hours` of work. Returns `None` for
    /// [`BidPredictor::Regular`] (no spot request at all).
    pub fn bid(&self, trace: &SpotTrace, t: usize, remaining_hours: usize) -> Option<f64> {
        match self {
            BidPredictor::Regular => None,
            BidPredictor::Optimal => {
                // Oracle: bid exactly the maximum price over the hours the job
                // will occupy, so it is never interrupted and never overpays.
                let future = trace.window(t, remaining_hours.max(1));
                future.into_iter().fold(None, |acc: Option<f64>, p| {
                    Some(acc.map_or(p, |a: f64| a.max(p)))
                })
            }
            BidPredictor::Current => Some(trace.price_at(t)),
            BidPredictor::MaxOfPastDays { days } => trace
                .max_over_previous(t, (*days as usize) * 24)
                .or(Some(trace.price_at(t))),
        }
    }
}

/// Aggregate cost statistics of one `(trace, predictor)` scenario across many
/// start times — one group of bars in Figure 14.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpotScenarioResult {
    /// Scenario label, e.g. `"aws-p0"` or `"el-opt"`.
    pub label: String,
    /// Mean job cost across start times (USD).
    pub average_cost: f64,
    /// Worst-case job cost across start times (USD).
    pub max_cost: f64,
    /// Standard deviation of the job cost.
    pub std_dev: f64,
    /// Fraction of runs in which at least one instance was out-bid and work
    /// had to wait for prices to fall again.
    pub interruption_rate: f64,
}

/// Simulates deploying a fixed amount of node-hours on the spot market with a
/// given predictor, across many window start times.
#[derive(Debug, Clone)]
pub struct SpotDeploymentSimulator {
    market: SpotMarket,
    /// Node-hours of work one job needs (e.g. 16 nodes × 5 h = 80).
    pub node_hours: usize,
    /// Nodes rented concurrently.
    pub concurrency: usize,
    /// Latest acceptable completion, in hours after the job's start.
    pub deadline_hours: usize,
}

impl SpotDeploymentSimulator {
    /// Creates a simulator over `market` for a job needing `node_hours` of
    /// work on `concurrency` nodes within `deadline_hours`.
    pub fn new(
        market: SpotMarket,
        node_hours: usize,
        concurrency: usize,
        deadline_hours: usize,
    ) -> Self {
        Self {
            market,
            node_hours,
            concurrency,
            deadline_hours,
        }
    }

    /// Cost of one job started at `start` using `predictor`.
    ///
    /// Each hour the job still has work left, the predictor proposes a bid;
    /// if the bid clears the current price, `concurrency` nodes run for that
    /// hour at the spot price; otherwise the job waits (hoping for cheaper
    /// prices) unless waiting would bust the deadline, in which case it falls
    /// back to on-demand instances for the remaining work.
    pub fn run_once(&self, start: usize, predictor: BidPredictor) -> (f64, bool) {
        let hours_needed = self.node_hours.div_ceil(self.concurrency.max(1));
        if predictor == BidPredictor::Regular {
            return (self.market.on_demand_price * self.node_hours as f64, false);
        }
        let mut cost = 0.0;
        let mut done = 0usize;
        let mut interrupted = false;
        for h in 0..self.deadline_hours {
            if done >= hours_needed {
                break;
            }
            let t = start + h;
            let remaining = hours_needed - done;
            let hours_left_before_deadline = self.deadline_hours - h;
            // If we cannot afford to wait any longer, run on-demand.
            if hours_left_before_deadline <= remaining {
                cost += self.market.on_demand_price * self.concurrency as f64;
                done += 1;
                continue;
            }
            let bid = predictor
                .bid(self.market.trace(), t, remaining)
                .unwrap_or(self.market.on_demand_price);
            let price = self.market.price_at(t);
            if bid >= price {
                cost += price * self.concurrency as f64;
                done += 1;
            } else {
                interrupted = true;
            }
        }
        (cost, interrupted)
    }

    /// Runs the scenario for every start time in `starts` and aggregates the
    /// statistics reported in Figure 14.
    pub fn run_scenario(
        &self,
        label: &str,
        predictor: BidPredictor,
        starts: &[usize],
    ) -> SpotScenarioResult {
        let mut costs = Vec::with_capacity(starts.len());
        let mut interruptions = 0usize;
        for &start in starts {
            let (cost, interrupted) = self.run_once(start, predictor);
            costs.push(cost);
            if interrupted {
                interruptions += 1;
            }
        }
        let n = costs.len().max(1) as f64;
        let mean = costs.iter().sum::<f64>() / n;
        let var = costs.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / n;
        SpotScenarioResult {
            label: label.to_string(),
            average_cost: mean,
            max_cost: costs.iter().copied().fold(0.0, f64::max),
            std_dev: var.sqrt(),
            interruption_rate: interruptions as f64 / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conductor_cloud::TraceKind;

    fn market(kind: TraceKind) -> SpotMarket {
        let trace = match kind {
            TraceKind::AwsLike => SpotTrace::aws_like(17, 24 * 40),
            TraceKind::ElectricityLike => SpotTrace::electricity_like(17, 24 * 40),
        };
        SpotMarket::new(trace, 0.34)
    }

    fn starts() -> Vec<usize> {
        (0..24 * 30).step_by(7).collect()
    }

    /// The paper's job shape: roughly 80 node-hours on 16 nodes, 12 h deadline.
    fn simulator(kind: TraceKind) -> SpotDeploymentSimulator {
        SpotDeploymentSimulator::new(market(kind), 80, 16, 12)
    }

    #[test]
    fn predictor_labels_match_paper_names() {
        assert_eq!(BidPredictor::Regular.label(), "regular");
        assert_eq!(BidPredictor::Optimal.label(), "opt");
        assert_eq!(BidPredictor::Current.label(), "p0");
        assert_eq!(BidPredictor::MaxOfPastDays { days: 13 }.label(), "p13");
    }

    #[test]
    fn spot_strategies_cut_cost_by_roughly_half() {
        // Figure 14's headline: 50-60% savings versus regular instances.
        for kind in [TraceKind::AwsLike, TraceKind::ElectricityLike] {
            let sim = simulator(kind);
            let regular = sim.run_scenario("regular", BidPredictor::Regular, &starts());
            let p0 = sim.run_scenario("p0", BidPredictor::Current, &starts());
            assert!(
                p0.average_cost < 0.7 * regular.average_cost,
                "{kind:?}: p0 {} vs regular {}",
                p0.average_cost,
                regular.average_cost
            );
        }
    }

    #[test]
    fn oracle_is_no_worse_than_simple_predictors_on_average() {
        for kind in [TraceKind::AwsLike, TraceKind::ElectricityLike] {
            let sim = simulator(kind);
            let opt = sim.run_scenario("opt", BidPredictor::Optimal, &starts());
            let p0 = sim.run_scenario("p0", BidPredictor::Current, &starts());
            let p13 = sim.run_scenario("p13", BidPredictor::MaxOfPastDays { days: 13 }, &starts());
            assert!(opt.average_cost <= p0.average_cost * 1.02);
            assert!(opt.average_cost <= p13.average_cost * 1.02);
        }
    }

    #[test]
    fn regular_runs_never_get_interrupted_and_have_zero_variance() {
        let sim = simulator(TraceKind::AwsLike);
        let regular = sim.run_scenario("regular", BidPredictor::Regular, &starts());
        assert_eq!(regular.interruption_rate, 0.0);
        assert!(regular.std_dev < 1e-9);
        assert!((regular.average_cost - 80.0 * 0.34).abs() < 1e-9);
        assert!((regular.max_cost - regular.average_cost).abs() < 1e-9);
    }

    #[test]
    fn deadline_pressure_forces_on_demand_fallback() {
        // With a deadline equal to the required hours there is no room to
        // wait: the job must run every hour, paying on-demand when out-bid.
        let sim = SpotDeploymentSimulator::new(market(TraceKind::AwsLike), 80, 16, 5);
        let (cost, _) = sim.run_once(0, BidPredictor::Current);
        assert!(cost > 0.0);
        // Never cheaper than the all-spot lower bound, never pricier than all
        // on-demand.
        assert!(cost <= 80.0 * 0.34 + 1e-9);
    }

    #[test]
    fn p0_never_waits_and_p13_still_beats_regular() {
        let sim = simulator(TraceKind::AwsLike);
        // Bidding exactly the current price is always accepted at that hour,
        // so a p0 deployment is never interrupted.
        let p0 = sim.run_scenario("p0", BidPredictor::Current, &starts());
        assert_eq!(p0.interruption_rate, 0.0);
        // A 13-day-maximum bid may occasionally wait out a spike but still
        // captures most of the spot savings.
        let p13 = sim.run_scenario("p13", BidPredictor::MaxOfPastDays { days: 13 }, &starts());
        let regular = sim.run_scenario("regular", BidPredictor::Regular, &starts());
        assert!(p13.average_cost < 0.7 * regular.average_cost);
    }
}
