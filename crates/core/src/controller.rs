//! The job controller (§5.2): plan → deploy → execute → account.
//!
//! The controller wires the pieces together: it asks the [`crate::Planner`]
//! for an execution plan, converts the plan into engine deployment options
//! and a plan-following scheduler configuration, runs the job on the
//! simulated Hadoop cluster, and reports the measured cost and completion
//! time next to the plan's expectations.

use crate::error::ConductorError;
use crate::goal::Goal;
use crate::plan::ExecutionPlan;
use crate::planner::{Planner, PlanningReport};
use conductor_cloud::Catalog;
use conductor_mapreduce::engine::{DataLocation, DeploymentOptions, Engine, ExecutionReport};
use conductor_mapreduce::scheduler::PlanFollowingScheduler;
use conductor_mapreduce::JobSpec;
use serde::{Deserialize, Serialize};

/// The outcome of planning and deploying one job with Conductor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeploymentOutcome {
    /// The plan that was deployed.
    pub plan: ExecutionPlan,
    /// Planning effort statistics.
    pub planning: PlanningReport,
    /// The measured execution (timings, cost breakdown, timelines).
    pub execution: ExecutionReport,
}

impl DeploymentOutcome {
    /// Difference between measured and planned cost (positive = the run cost
    /// more than the plan expected).
    pub fn cost_error(&self) -> f64 {
        self.execution.total_cost - self.plan.expected_cost
    }

    /// Difference between measured and planned completion time in hours.
    pub fn completion_error_hours(&self) -> f64 {
        self.execution.completion_hours - self.plan.expected_completion_hours
    }
}

/// Orchestrates planning and deployment of MapReduce jobs (Figure 2).
#[derive(Debug, Clone)]
pub struct JobController {
    planner: Planner,
    engine: Engine,
    uplink_gbph: f64,
}

impl JobController {
    /// Creates a controller for the given catalog. `planner` must have been
    /// built over (a restriction of) the same catalog: every compute
    /// resource in the planner's pool must name a catalog instance type
    /// with the same price and measured throughput, and every storage
    /// resource must name a catalog storage service. A mismatched pair
    /// would produce plans whose costs and rates the deployment engine
    /// silently disagrees with, so the invariant is checked here and
    /// violations are reported as [`ConductorError::InvalidInput`].
    pub fn new(catalog: Catalog, planner: Planner) -> Result<Self, ConductorError> {
        for c in &planner.pool().compute {
            let Some(i) = catalog.instance(&c.name) else {
                return Err(ConductorError::InvalidInput(format!(
                    "planner compute resource `{}` is not in the deployment catalog",
                    c.name
                )));
            };
            if (i.hourly_price - c.hourly_price).abs() > 1e-9
                || (i.measured_throughput_gbph - c.capacity_gbph).abs() > 1e-9
            {
                return Err(ConductorError::InvalidInput(format!(
                    "planner compute resource `{}` disagrees with the catalog: \
                     pool prices it at {}/h for {} GB/h, catalog says {}/h for {} GB/h",
                    c.name,
                    c.hourly_price,
                    c.capacity_gbph,
                    i.hourly_price,
                    i.measured_throughput_gbph
                )));
            }
        }
        for s in &planner.pool().storage {
            if catalog.storage(&s.name).is_none() {
                return Err(ConductorError::InvalidInput(format!(
                    "planner storage resource `{}` is not in the deployment catalog",
                    s.name
                )));
            }
        }
        let uplink_gbph = catalog.uplink_gb_per_hour();
        Ok(Self {
            planner,
            engine: Engine::new(catalog),
            uplink_gbph,
        })
    }

    /// The planner in use.
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// The execution engine in use.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Plans and deploys `spec` under `goal`, returning plan, planning report
    /// and measured execution.
    pub fn run(&self, spec: &JobSpec, goal: Goal) -> Result<DeploymentOutcome, ConductorError> {
        let (plan, planning) = self.planner.plan(spec, goal)?;
        let execution = self.deploy(spec, &plan, goal.deadline_hours())?;
        Ok(DeploymentOutcome {
            plan,
            planning,
            execution,
        })
    }

    /// Deploys an existing plan (used by the adaptation loop after re-planning
    /// and by ablation experiments that perturb plans).
    pub fn deploy(
        &self,
        spec: &JobSpec,
        plan: &ExecutionPlan,
        deadline_hours: Option<f64>,
    ) -> Result<ExecutionReport, ConductorError> {
        let options = self.deployment_options(plan, deadline_hours);
        let scheduler = self.scheduler_for(plan);
        Ok(self.engine.run(spec, &options, &scheduler)?)
    }

    /// Builds engine deployment options from a plan.
    pub fn deployment_options(
        &self,
        plan: &ExecutionPlan,
        deadline_hours: Option<f64>,
    ) -> DeploymentOptions {
        plan.to_deployment_options(
            "conductor",
            self.uplink_gbph,
            deadline_hours,
            &ExecutionPlan::default_location_map(),
        )
    }

    /// Builds the plan-following scheduler configuration implied by a plan:
    /// each compute resource used by the plan may read from the storage
    /// locations the plan stores data on (§5.3).
    pub fn scheduler_for(&self, plan: &ExecutionPlan) -> PlanFollowingScheduler {
        scheduler_for_plan(plan, self.planner.pool())
    }
}

/// Derives the plan-following scheduler permissions a plan implies over a
/// resource pool (§5.3): every compute resource the plan rents may read
/// from its own disks and from the storage services the plan uploads to;
/// local nodes may additionally read the on-site input directly. Shared by
/// [`JobController`] and the fleet-level `ConductorService`.
pub(crate) fn scheduler_for_plan(
    plan: &ExecutionPlan,
    pool: &crate::resources::ResourcePool,
) -> PlanFollowingScheduler {
    let mut scheduler = PlanFollowingScheduler::new();
    let location_map = ExecutionPlan::default_location_map();
    let storages: Vec<DataLocation> = plan
        .storage_mix()
        .keys()
        .filter_map(|name| location_map.get(name).copied())
        .collect();
    let computes: std::collections::BTreeSet<String> = plan
        .intervals
        .iter()
        .flat_map(|p| p.nodes.keys().cloned())
        .collect();
    for compute in computes {
        let is_local = pool
            .compute_resource(&compute)
            .map(|c| c.is_local)
            .unwrap_or(false);
        // Every compute resource may read its own disks...
        scheduler.allow(
            compute.clone(),
            if is_local {
                DataLocation::LocalDisk
            } else {
                DataLocation::InstanceDisk
            },
        );
        if is_local {
            // ...local nodes additionally read the on-site input directly.
            scheduler.allow(compute.clone(), DataLocation::ClientSite);
        }
        // ...and the storage services the plan uses.
        for loc in &storages {
            scheduler.allow(compute.clone(), *loc);
        }
    }
    scheduler
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::ResourcePool;
    use conductor_lp::SolveOptions;
    use conductor_mapreduce::Workload;
    use std::time::Duration;

    fn controller() -> JobController {
        let catalog = Catalog::aws_july_2011();
        let pool = ResourcePool::from_catalog(&catalog, 1.0).with_compute_only(&["m1.large"]);
        let planner = Planner::new(pool).with_solve_options(SolveOptions {
            relative_gap: 0.02,
            max_nodes: 2_000,
            time_limit: Duration::from_secs(30),
            ..Default::default()
        });
        JobController::new(catalog, planner).unwrap()
    }

    #[test]
    fn end_to_end_cloud_only_run_meets_deadline_and_cost_scale() {
        let outcome = controller()
            .run(
                &Workload::KMeans32Gb.spec(),
                Goal::MinimizeCost {
                    deadline_hours: 6.0,
                },
            )
            .unwrap();
        assert_eq!(outcome.execution.met_deadline, Some(true));
        // Measured cost should be in the same ballpark as planned cost
        // (the engine adds scheduling slack and round-up billing effects the
        // fluid model ignores).
        assert!(
            outcome.execution.total_cost < outcome.plan.expected_cost * 2.0 + 10.0,
            "measured {} vs planned {}",
            outcome.execution.total_cost,
            outcome.plan.expected_cost
        );
        assert!(outcome.execution.total_cost > 15.0);
        // Every task completed.
        assert_eq!(
            outcome.execution.task_timeline.last().unwrap().1,
            outcome.execution.total_tasks
        );
    }

    #[test]
    fn mismatched_planner_pool_is_rejected() {
        let catalog = Catalog::aws_july_2011();
        // Unknown compute resource.
        let mut pool = ResourcePool::from_catalog(&catalog, 1.0);
        pool.compute[0].name = "m9.mega".into();
        let err = JobController::new(catalog.clone(), Planner::new(pool)).unwrap_err();
        assert!(matches!(err, ConductorError::InvalidInput(_)));
        assert!(err.to_string().contains("m9.mega"));
        // Same name, different price: plans would cost something the engine
        // disagrees with.
        let mut pool = ResourcePool::from_catalog(&catalog, 1.0);
        pool.compute[0].hourly_price *= 2.0;
        let err = JobController::new(catalog.clone(), Planner::new(pool)).unwrap_err();
        assert!(err.to_string().contains("disagrees with the catalog"));
        // Unknown storage resource.
        let mut pool = ResourcePool::from_catalog(&catalog, 1.0);
        pool.storage[0].name = "S9".into();
        let err = JobController::new(catalog.clone(), Planner::new(pool)).unwrap_err();
        assert!(err.to_string().contains("S9"));
        // A *restriction* of the catalog is fine.
        let pool = ResourcePool::from_catalog(&catalog, 1.0).with_compute_only(&["m1.large"]);
        assert!(JobController::new(catalog, Planner::new(pool)).is_ok());
    }

    #[test]
    fn scheduler_permissions_follow_the_plan() {
        let ctl = controller();
        let (plan, _) = ctl
            .planner()
            .plan(
                &Workload::KMeans32Gb.spec(),
                Goal::MinimizeCost {
                    deadline_hours: 6.0,
                },
            )
            .unwrap();
        let scheduler = ctl.scheduler_for(&plan);
        // The plan uses m1.large nodes reading from their instance disks.
        let allowed = scheduler.allowed_for("m1.large");
        assert!(allowed.contains(&DataLocation::InstanceDisk));
        // No permissions for instance types the plan does not use.
        assert!(scheduler.allowed_for("c1.xlarge").is_empty());
    }

    #[test]
    fn deployment_options_carry_schedule_and_deadline() {
        let ctl = controller();
        let (plan, _) = ctl
            .planner()
            .plan(
                &Workload::KMeans32Gb.spec(),
                Goal::MinimizeCost {
                    deadline_hours: 6.0,
                },
            )
            .unwrap();
        let opts = ctl.deployment_options(&plan, Some(6.0));
        assert_eq!(opts.deadline_hours, Some(6.0));
        assert!(!opts.node_schedule.is_empty());
        assert!(!opts.upload_plan.is_empty());
    }
}
