//! Write-ahead logging for fleet sessions: the persisted form of the
//! [`FleetEvent`] log that [`Fleet::replay`](crate::fleet::Fleet::replay)
//! treats as the source of truth.
//!
//! The format is JSON lines — one event per line, the trailing newline is
//! the commit marker. A process killed mid-write leaves a *torn tail*:
//! either a final line with no terminating newline, or a final line that
//! no longer parses. [`WalReader::read`] detects both and reports the
//! clean prefix; [`WalReader::recover`] additionally truncates the file
//! back to that prefix so appends can resume. Corruption anywhere *before*
//! the final line is not a crash artifact (appends never rewrite old
//! bytes) and is reported as an error, never silently skipped.
//!
//! ```no_run
//! use conductor_core::wal::{WalReader, WalWriter};
//! # fn demo(fleet: &conductor_core::Fleet) -> Result<(), conductor_core::ConductorError> {
//! let mut wal = WalWriter::create("session.wal")?;
//! wal.log_all(fleet.events())?;
//! // ... later, possibly after a crash:
//! let readout = WalReader::read("session.wal")?;
//! if readout.torn {
//!     WalReader::recover("session.wal")?; // drop the uncommitted tail
//! }
//! # Ok(())
//! # }
//! ```

use crate::error::ConductorError;
use crate::fleet::FleetEvent;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

fn io_err(context: &str, path: &Path, e: std::io::Error) -> ConductorError {
    ConductorError::Io(format!("{context} {}: {e}", path.display()))
}

/// Appends [`FleetEvent`]s to a JSON-lines log, flushing each batch so a
/// crash can lose at most the entry being written (the torn tail the
/// reader detects), never a committed one.
#[derive(Debug)]
pub struct WalWriter {
    file: BufWriter<File>,
    path: PathBuf,
}

impl WalWriter {
    /// Creates the log at `path`, truncating any existing file.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, ConductorError> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path).map_err(|e| io_err("creating WAL", &path, e))?;
        Ok(Self {
            file: BufWriter::new(file),
            path,
        })
    }

    /// Opens the log at `path` for appending, creating it if absent. The
    /// caller is responsible for the file ending on a committed line —
    /// run [`WalReader::recover`] first after an unclean shutdown.
    pub fn append(path: impl AsRef<Path>) -> Result<Self, ConductorError> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err("opening WAL", &path, e))?;
        Ok(Self {
            file: BufWriter::new(file),
            path,
        })
    }

    /// Appends one event as a JSON line and flushes it to the OS.
    pub fn log(&mut self, event: &FleetEvent) -> Result<(), ConductorError> {
        self.log_all(std::slice::from_ref(event))
    }

    /// Appends every event, then flushes once — the batched form for
    /// draining `fleet.events_since(cursor)` after each step.
    pub fn log_all(&mut self, events: &[FleetEvent]) -> Result<(), ConductorError> {
        for event in events {
            let line = serde_json::to_string(event)
                .map_err(|e| ConductorError::InvalidInput(format!("serializing event: {e}")))?;
            self.file
                .write_all(line.as_bytes())
                .and_then(|()| self.file.write_all(b"\n"))
                .map_err(|e| io_err("writing WAL", &self.path, e))?;
        }
        self.file
            .flush()
            .map_err(|e| io_err("flushing WAL", &self.path, e))
    }

    /// Where the log lives.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// What [`WalReader::read`] found: the committed events and whether the
/// file ended in an uncommitted (torn) tail.
#[derive(Debug, Clone, PartialEq)]
pub struct WalReadout {
    /// Every committed event, in log order.
    pub events: Vec<FleetEvent>,
    /// `true` when the file ended mid-entry: a final line missing its
    /// terminating newline, or a final line that fails to parse. The torn
    /// bytes are *not* in `events`.
    pub torn: bool,
    /// Byte length of the committed prefix —
    /// [`WalReader::recover`] truncates the file to exactly this.
    pub committed_bytes: u64,
}

/// Reads JSON-lines event logs back, detecting torn tails.
#[derive(Debug)]
pub struct WalReader;

impl WalReader {
    /// Reads the log at `path`. A torn *final* line is reported via
    /// [`WalReadout::torn`] and excluded from the events; an unparseable
    /// line anywhere earlier is corruption appends cannot explain and
    /// fails with [`ConductorError::InvalidInput`].
    pub fn read(path: impl AsRef<Path>) -> Result<WalReadout, ConductorError> {
        let path = path.as_ref();
        let mut text = String::new();
        File::open(path)
            .and_then(|mut f| f.read_to_string(&mut text))
            .map_err(|e| io_err("reading WAL", path, e))?;

        let mut events = Vec::new();
        let mut torn = false;
        let mut committed_bytes = 0u64;
        let mut offset = 0usize;
        while offset < text.len() {
            let rest = &text[offset..];
            let (line, terminated, consumed) = match rest.find('\n') {
                Some(i) => (&rest[..i], true, i + 1),
                None => (rest, false, rest.len()),
            };
            if !terminated {
                // The newline is the commit marker: a final line without
                // one is an in-flight append, whatever its bytes say.
                torn = true;
                break;
            }
            match serde_json::from_str::<FleetEvent>(line) {
                Ok(event) => {
                    events.push(event);
                    offset += consumed;
                    committed_bytes = offset as u64;
                }
                Err(e) => {
                    if offset + consumed >= text.len() {
                        torn = true; // unparseable final line: torn write
                        break;
                    }
                    return Err(ConductorError::InvalidInput(format!(
                        "corrupt WAL entry at byte {offset} of {}: {e}",
                        path.display()
                    )));
                }
            }
        }
        Ok(WalReadout {
            events,
            torn,
            committed_bytes,
        })
    }

    /// Reads the log and, when the tail is torn, truncates the file back
    /// to the committed prefix so [`WalWriter::append`] can resume on a
    /// clean boundary. Returns the committed events either way.
    pub fn recover(path: impl AsRef<Path>) -> Result<Vec<FleetEvent>, ConductorError> {
        let path = path.as_ref();
        let readout = Self::read(path)?;
        if readout.torn {
            OpenOptions::new()
                .write(true)
                .open(path)
                .and_then(|f| f.set_len(readout.committed_bytes))
                .map_err(|e| io_err("truncating WAL", path, e))?;
        }
        Ok(readout.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::TenantId;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A unique temp path per test (no tempfile crate in this tree).
    fn temp_wal(tag: &str) -> PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "conductor-wal-test-{}-{tag}-{n}.wal",
            std::process::id()
        ))
    }

    fn sample_events() -> Vec<FleetEvent> {
        vec![
            FleetEvent::Planned {
                tenant: TenantId(0),
                at_hours: 0.0,
                expected_cost: 12.5,
                expected_completion_hours: 6.25,
            },
            FleetEvent::Completed {
                tenant: TenantId(0),
                at_hours: 6.25,
                met_deadline: Some(true),
            },
            FleetEvent::Failed {
                tenant: TenantId(1),
                at_hours: 7.0,
                reason: "unit test".into(),
            },
        ]
    }

    #[test]
    fn roundtrips_a_clean_log() {
        let path = temp_wal("clean");
        let events = sample_events();
        let mut w = WalWriter::create(&path).unwrap();
        w.log_all(&events).unwrap();
        drop(w);
        let readout = WalReader::read(&path).unwrap();
        assert!(!readout.torn);
        assert_eq!(readout.events, events);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_continues_an_existing_log() {
        let path = temp_wal("append");
        let events = sample_events();
        let mut w = WalWriter::create(&path).unwrap();
        w.log(&events[0]).unwrap();
        drop(w);
        let mut w = WalWriter::append(&path).unwrap();
        w.log_all(&events[1..]).unwrap();
        drop(w);
        assert_eq!(WalReader::read(&path).unwrap().events, events);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_trailing_newline_is_a_torn_tail() {
        let path = temp_wal("no-newline");
        let events = sample_events();
        let mut w = WalWriter::create(&path).unwrap();
        w.log_all(&events).unwrap();
        drop(w);
        // Chop the commit marker off the last entry.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 1]).unwrap();
        let readout = WalReader::read(&path).unwrap();
        assert!(readout.torn);
        assert_eq!(readout.events, events[..2]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_final_line_is_a_torn_tail() {
        let path = temp_wal("torn");
        let events = sample_events();
        let mut w = WalWriter::create(&path).unwrap();
        w.log_all(&events).unwrap();
        drop(w);
        // Cut the file mid-way through the final entry, keeping a newline
        // at the very end (half a JSON object, then EOL).
        let text = std::fs::read_to_string(&path).unwrap();
        let last_start = text[..text.len() - 1].rfind('\n').unwrap() + 1;
        let cut = last_start + (text.len() - last_start) / 2;
        std::fs::write(&path, format!("{}\n", &text[..cut])).unwrap();
        let readout = WalReader::read(&path).unwrap();
        assert!(readout.torn);
        assert_eq!(readout.events, events[..2]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn recover_truncates_to_the_committed_prefix() {
        let path = temp_wal("recover");
        let events = sample_events();
        let mut w = WalWriter::create(&path).unwrap();
        w.log_all(&events).unwrap();
        drop(w);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 3]).unwrap();
        let recovered = WalReader::recover(&path).unwrap();
        assert_eq!(recovered, events[..2]);
        // The file is clean now: appends resume on a committed boundary.
        let mut w = WalWriter::append(&path).unwrap();
        w.log(&events[2]).unwrap();
        drop(w);
        let readout = WalReader::read(&path).unwrap();
        assert!(!readout.torn);
        assert_eq!(readout.events, events);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_file_corruption_is_an_error_not_a_torn_tail() {
        let path = temp_wal("corrupt");
        let events = sample_events();
        let mut w = WalWriter::create(&path).unwrap();
        w.log_all(&events).unwrap();
        drop(w);
        let text = std::fs::read_to_string(&path).unwrap();
        let corrupted = text.replacen("Planned", "Plan???", 1);
        std::fs::write(&path, corrupted).unwrap();
        let err = WalReader::read(&path).unwrap_err();
        assert!(matches!(err, ConductorError::InvalidInput(_)), "{err}");
    }

    #[test]
    fn empty_log_reads_clean() {
        let path = temp_wal("empty");
        drop(WalWriter::create(&path).unwrap());
        let readout = WalReader::read(&path).unwrap();
        assert!(!readout.torn);
        assert!(readout.events.is_empty());
        assert_eq!(readout.committed_bytes, 0);
        std::fs::remove_file(&path).ok();
    }
}
