//! Flat, cache-friendly dense matrix used by the simplex tableau.
//!
//! The seed implementation stored the tableau as `Vec<Vec<f64>>`, which
//! scatters rows across the heap and defeats both the prefetcher and the
//! auto-vectorizer in the pivot elimination loop. [`DenseMatrix`] keeps all
//! rows in one contiguous allocation with a fixed stride so a pivot is a
//! sequence of linear slice scans, and the buffer is reusable across
//! branch & bound nodes without reallocating.

/// A row-major dense matrix backed by a single flat buffer.
///
/// The buffer is retained across [`DenseMatrix::reset`] calls so repeated
/// solves of same-shaped problems (every branch & bound node) allocate
/// nothing after the first.
#[derive(Debug, Clone, Default)]
pub struct DenseMatrix {
    data: Vec<f64>,
    rows: usize,
    stride: usize,
}

impl DenseMatrix {
    /// Reshapes to `rows x stride` and zero-fills, reusing the allocation.
    pub fn reset(&mut self, rows: usize, stride: usize) {
        let len = rows * stride;
        self.data.clear();
        self.data.resize(len, 0.0);
        self.rows = rows;
        self.stride = stride;
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Row length (the stride).
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Immutable view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.stride..(i + 1) * self.stride]
    }

    /// Mutable view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.stride..(i + 1) * self.stride]
    }

    /// Disjoint `(row a, row b)` mutable views (`a != b`), the shape the
    /// pivot elimination loop needs: read the pivot row while updating
    /// another row in place.
    #[inline]
    pub fn row_pair_mut(&mut self, a: usize, b: usize) -> (&mut [f64], &mut [f64]) {
        debug_assert!(a != b && a < self.rows && b < self.rows);
        let stride = self.stride;
        if a < b {
            let (lo, hi) = self.data.split_at_mut(b * stride);
            (&mut lo[a * stride..(a + 1) * stride], &mut hi[..stride])
        } else {
            let (lo, hi) = self.data.split_at_mut(a * stride);
            let (pa, pb) = (&mut hi[..stride], &mut lo[b * stride..(b + 1) * stride]);
            (pa, pb)
        }
    }

    /// Entry accessor (used sparingly; hot loops should take row slices).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.stride + j]
    }

    /// Entry mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.stride + j] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_reuses_and_zeroes() {
        let mut m = DenseMatrix::default();
        m.reset(2, 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        m.reset(3, 2);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.stride(), 2);
        assert!(m.row(2).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn row_pair_is_disjoint_both_orders() {
        let mut m = DenseMatrix::default();
        m.reset(3, 4);
        m.row_mut(0).copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        m.row_mut(2).copy_from_slice(&[10.0, 20.0, 30.0, 40.0]);
        {
            let (a, b) = m.row_pair_mut(0, 2);
            for (x, y) in b.iter_mut().zip(a.iter()) {
                *x -= 2.0 * *y;
            }
        }
        assert_eq!(m.row(2), &[8.0, 16.0, 24.0, 32.0]);
        {
            let (a, b) = m.row_pair_mut(2, 0);
            assert_eq!(a[0], 8.0);
            assert_eq!(b[0], 1.0);
        }
    }
}
