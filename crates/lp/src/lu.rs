//! Sparse LU factorization of the simplex basis with two pivot-update
//! schemes: product-form (eta-file) updates and Forrest–Tomlin updates.
//!
//! The revised simplex engine never forms `B⁻¹` explicitly. Instead it keeps
//!
//! * a left-looking sparse **LU factorization** `B₀ = L·U` (with partial
//!   pivoting, rows permuted implicitly through `prow`), refreshed by
//!   [`BasisFactorization::refactorize`], and
//! * one of two update schemes applied at each basis change:
//!   - **eta file** (legacy, default): the new basis is `B₀·E₁·…·E_k` where
//!     each `Eₖ` is the identity except for one column (the FTRAN'd entering
//!     column). Applying `Eₖ⁻¹` costs O(nnz of the pivot column) — and that
//!     cost is paid by *every* FTRAN/BTRAN, so solve cost grows linearly
//!     with the eta file until the [`eta_limit`] refactorization.
//!   - **Forrest–Tomlin** ([`BasisFactorization::set_ft_mode`]): the `U`
//!     factor itself is updated in place. The spike `v = R_s⋯R₁·L⁻¹·a_q`
//!     replaces column `r` of `U`, the replaced position moves to the end of
//!     a *logical* column/row order, and the now below-diagonal old row `r`
//!     is eliminated with row operations `Rₛ₊₁ = I − e_r·mᵀ` (multipliers
//!     `m_j = u_rj/u_jj` in ascending logical order) recorded as one sparse
//!     row eta. `U` stays triangular (under the logical order) and sparse,
//!     so FTRAN/BTRAN cost stays flat between refactorizations and the
//!     refactor interval stretches ([`ft_update_limit`]).
//!
//! FTRAN (`B⁻¹·b`, entering-column transform / RHS re-derivation) and BTRAN
//! (`B⁻ᵀ·c`, pricing / dual row extraction) both run in O(nnz(L)+nnz(U)+
//! Σ nnz(updates)). When the update file grows past its limit — or a drift
//! check fails — the factorization is rebuilt from the basis columns, which
//! bounds both fill-in and accumulated floating-point error. This replaces
//! the dense engine's blind `REUSE_REFRESH` cold-refill ceiling with an
//! explicit, observable refresh policy (counts surface in `SolveStats`).

use crate::sparse::CscMatrix;

/// Largest admissible eta-file length before a refactorization is forced:
/// long products both slow the solves down and accumulate rounding error.
/// Scales with √m — the break-even between the O(m²+fill) refactorization
/// (amortized over the interval) and the O(nnz(w)) ≈ O(m) cost every
/// FTRAN/BTRAN pays per eta.
pub fn eta_limit(m: usize) -> usize {
    12 + (m as f64).sqrt() as usize
}

/// Update-count ceiling in Forrest–Tomlin mode. An FT update appends one
/// *row* eta (a handful of multipliers) instead of a full transformed
/// column, so per-solve cost grows with the *fill* the spike columns add
/// to `U` rather than with the raw update count, and the refactorization
/// interval stretches. Measured on the fig16 models the spike fill makes
/// intervals beyond ~2× the eta limit a net loss, so the stretch is kept
/// moderate.
pub fn ft_update_limit(m: usize) -> usize {
    2 * eta_limit(m)
}

/// Pivot magnitude below which the basis is declared numerically singular.
const SINGULAR_TOL: f64 = 1e-10;
/// Entries below this magnitude are dropped during elimination (relative to
/// unit-scaled model coefficients); keeps cancellation noise out of the fill.
const DROP_TOL: f64 = 1e-13;

/// The basis factorization could not be computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Singular {
    /// Elimination step at which no admissible pivot remained.
    pub step: usize,
}

/// `B₀ = L·U` with row permutation `prow` (step `k` pivoted original row
/// `prow[k]`); `L` unit lower triangular stored by columns in original row
/// space, `U` upper triangular stored by columns in step space.
#[derive(Debug, Clone, Default)]
struct LuFactors {
    m: usize,
    /// Sub-diagonal entries of `L`'s column `k`: `(original row, multiplier)`.
    l_cols: Vec<Vec<(usize, f64)>>,
    /// Strictly-above-diagonal entries of `U`'s column `k`: `(step j < k, value)`.
    u_cols: Vec<Vec<(usize, f64)>>,
    u_diag: Vec<f64>,
    prow: Vec<usize>,
    /// Inverse of `prow`: `step_of_row[prow[k]] == k` (usize::MAX while
    /// unpivoted). Lets the elimination loop visit only the pivot steps that
    /// actually appear in the current column instead of scanning all `0..k`.
    step_of_row: Vec<usize>,
}

impl LuFactors {
    /// Left-looking factorization of the basis columns `A[:, basis[k]]`.
    ///
    /// The elimination per column is worklist-driven (Gilbert–Peierls
    /// flavor): pivot steps present in the column are drained from a min
    /// binary heap in ascending order, and applying `L`'s column may push
    /// newly-reached steps. Cost is O(nnz(column's elimination subtree)),
    /// not O(k) — simplex bases from Conductor models factor with almost no
    /// fill, so this is the difference between O(nnz) and O(m²) per
    /// refactorization.
    #[allow(clippy::too_many_arguments)]
    fn factorize(
        &mut self,
        m: usize,
        a: &CscMatrix,
        basis: &[usize],
        work: &mut Vec<f64>,
        in_work: &mut Vec<bool>,
        touched: &mut Vec<usize>,
        heap: &mut std::collections::BinaryHeap<std::cmp::Reverse<usize>>,
    ) -> Result<(), Singular> {
        self.m = m;
        self.l_cols.iter_mut().for_each(Vec::clear);
        self.u_cols.iter_mut().for_each(Vec::clear);
        self.l_cols.resize(m, Vec::new());
        self.u_cols.resize(m, Vec::new());
        self.u_diag.clear();
        self.u_diag.resize(m, 0.0);
        self.prow.clear();
        self.prow.resize(m, usize::MAX);
        self.step_of_row.clear();
        self.step_of_row.resize(m, usize::MAX);
        work.clear();
        work.resize(m, 0.0);
        in_work.clear();
        in_work.resize(m, false);
        touched.clear();
        heap.clear();

        for (k, &bcol) in basis.iter().enumerate() {
            // Scatter column k of B, seeding the worklist with the pivot
            // steps of already-pivoted rows it touches.
            let (idx, val) = a.col(bcol);
            for (&r, &v) in idx.iter().zip(val) {
                if !in_work[r] {
                    in_work[r] = true;
                    touched.push(r);
                    if self.step_of_row[r] != usize::MAX {
                        heap.push(std::cmp::Reverse(self.step_of_row[r]));
                    }
                }
                work[r] += v;
            }
            // Eliminate reached pivot steps in ascending order.
            while let Some(std::cmp::Reverse(j)) = heap.pop() {
                let u = work[self.prow[j]];
                work[self.prow[j]] = 0.0;
                // A row can enter the heap once only (guarded by `in_work`),
                // but its value may have cancelled to zero meanwhile.
                if u.abs() > DROP_TOL {
                    self.u_cols[k].push((j, u));
                    for &(r, v) in &self.l_cols[j] {
                        if !in_work[r] {
                            in_work[r] = true;
                            touched.push(r);
                            if self.step_of_row[r] != usize::MAX {
                                heap.push(std::cmp::Reverse(self.step_of_row[r]));
                            }
                        }
                        work[r] -= u * v;
                    }
                }
            }
            // Partial pivoting: largest remaining magnitude among unpivoted
            // touched rows.
            let mut pivot_row = usize::MAX;
            let mut pivot_abs = SINGULAR_TOL;
            for &r in touched.iter() {
                if self.step_of_row[r] == usize::MAX && work[r].abs() > pivot_abs {
                    pivot_abs = work[r].abs();
                    pivot_row = r;
                }
            }
            if pivot_row == usize::MAX {
                // Leave scratch clean for the next attempt.
                for &r in touched.iter() {
                    work[r] = 0.0;
                    in_work[r] = false;
                }
                touched.clear();
                return Err(Singular { step: k });
            }
            let pivot = work[pivot_row];
            self.prow[k] = pivot_row;
            self.u_diag[k] = pivot;
            self.step_of_row[pivot_row] = k;
            for &r in touched.iter() {
                if self.step_of_row[r] == usize::MAX && work[r].abs() > DROP_TOL {
                    self.l_cols[k].push((r, work[r] / pivot));
                }
                work[r] = 0.0;
                in_work[r] = false;
            }
            touched.clear();
        }
        Ok(())
    }

    /// Forward solve `L·z = x` (in place on the row-space vector), then
    /// gather into step space: `z[k] = x[prow[k]]`.
    fn ftran_l(&self, x: &mut [f64], z: &mut Vec<f64>) {
        let m = self.m;
        for k in 0..m {
            let zk = x[self.prow[k]];
            if zk != 0.0 {
                for &(r, v) in &self.l_cols[k] {
                    x[r] -= zk * v;
                }
            }
        }
        z.clear();
        z.extend((0..m).map(|k| x[self.prow[k]]));
    }

    /// Backward solve `U·y = z` in place, column-oriented, natural step order
    /// (valid while `U` is untouched by Forrest–Tomlin updates).
    fn ftran_u(&self, z: &mut [f64]) {
        for k in (0..self.m).rev() {
            let yk = z[k] / self.u_diag[k];
            z[k] = yk;
            if yk != 0.0 {
                for &(j, v) in &self.u_cols[k] {
                    z[j] -= v * yk;
                }
            }
        }
    }

    /// Backward solve `U·y = z` under the Forrest–Tomlin *logical* column
    /// order (`order[t]` is the step occupying logical position `t`).
    fn ftran_u_logical(&self, z: &mut [f64], order: &[usize]) {
        for &k in order.iter().rev() {
            let yk = z[k] / self.u_diag[k];
            z[k] = yk;
            if yk != 0.0 {
                for &(j, v) in &self.u_cols[k] {
                    z[j] -= v * yk;
                }
            }
        }
    }

    /// `x ← B₀⁻¹·x`; input in original row space, output in step (= basis
    /// position) space. `z` is caller-provided scratch.
    fn ftran(&self, x: &mut [f64], z: &mut Vec<f64>) {
        self.ftran_l(x, z);
        self.ftran_u(z);
        x[..self.m].copy_from_slice(z);
    }

    /// Forward solve `Uᵀ·w = x` into `z` (step space), natural step order.
    fn btran_u(&self, x: &[f64], z: &mut Vec<f64>) {
        let m = self.m;
        z.clear();
        z.resize(m, 0.0);
        for k in 0..m {
            let mut s = x[k];
            for &(j, v) in &self.u_cols[k] {
                s -= v * z[j];
            }
            z[k] = s / self.u_diag[k];
        }
    }

    /// Forward solve `Uᵀ·w = x` into `z` under the logical column order.
    fn btran_u_logical(&self, x: &[f64], z: &mut Vec<f64>, order: &[usize]) {
        z.clear();
        z.resize(self.m, 0.0);
        for &k in order.iter() {
            let mut s = x[k];
            for &(j, v) in &self.u_cols[k] {
                s -= v * z[j];
            }
            z[k] = s / self.u_diag[k];
        }
    }

    /// Backward solve `Lᵀ·y = z`, landing in original row space in `x`.
    fn btran_l(&self, z: &[f64], x: &mut [f64]) {
        for v in x.iter_mut() {
            *v = 0.0;
        }
        for k in (0..self.m).rev() {
            let mut s = z[k];
            for &(r, v) in &self.l_cols[k] {
                s -= v * x[r];
            }
            x[self.prow[k]] = s;
        }
    }

    /// `x ← B₀⁻ᵀ·x`; input in step space, output in original row space.
    fn btran(&self, x: &mut [f64], z: &mut Vec<f64>) {
        self.btran_u(x, z);
        self.btran_l(z, x);
    }
}

/// One product-form update: the basis column at position `r` was replaced,
/// and `w = B_old⁻¹·a_entering` (basis-position space) is the eta column.
#[derive(Debug, Clone)]
struct Eta {
    r: usize,
    wr: f64,
    /// Entries of `w` other than position `r`.
    nz: Vec<(usize, f64)>,
}

impl Eta {
    #[inline]
    fn ftran(&self, x: &mut [f64]) {
        let xr = x[self.r] / self.wr;
        if xr != 0.0 {
            for &(i, w) in &self.nz {
                x[i] -= w * xr;
            }
        }
        x[self.r] = xr;
    }

    #[inline]
    fn btran(&self, x: &mut [f64]) {
        let mut s = x[self.r];
        for &(i, w) in &self.nz {
            s -= w * x[i];
        }
        x[self.r] = s / self.wr;
    }
}

/// One Forrest–Tomlin row operation `R = I − e_r·mᵀ`: recorded when the
/// replaced basis position `r` moved to the end of the logical order and its
/// old row of `U` was eliminated against the rows logically after it.
/// FTRAN applies `R` (after `L⁻¹`, before `U⁻¹`); BTRAN applies `Rᵀ`.
#[derive(Debug, Clone)]
struct RowEta {
    r: usize,
    /// Elimination multipliers `(step j, m_j = u_rj/u_jj)`.
    nz: Vec<(usize, f64)>,
}

impl RowEta {
    #[inline]
    fn ftran(&self, z: &mut [f64]) {
        let mut s = 0.0;
        for &(j, m) in &self.nz {
            s += m * z[j];
        }
        z[self.r] -= s;
    }

    #[inline]
    fn btran(&self, z: &mut [f64]) {
        let zr = z[self.r];
        if zr != 0.0 {
            for &(j, m) in &self.nz {
                z[j] -= m * zr;
            }
        }
    }
}

/// The live factorized basis plus refresh bookkeeping. In eta mode the basis
/// is `B = B₀·E₁·…·E_k`; in Forrest–Tomlin mode it is
/// `B = L·R₁⁻¹·…·R_s⁻¹·U` with `U` updated in place.
#[derive(Debug, Clone, Default)]
pub struct BasisFactorization {
    lu: LuFactors,
    /// Staging area so a failed refactorization never corrupts the live
    /// factors (the old LU + eta file still represent the current basis).
    lu_next: LuFactors,
    etas: Vec<Eta>,
    // --- Forrest–Tomlin state (live only when `ft_mode`) ---
    ft_mode: bool,
    /// Row-wise mirror of `lu.u_cols`: `u_rows[j]` lists `(step k, u_jk)`
    /// for the strictly-right-of-diagonal entries of row `j` (in the
    /// logical order). Needed by the update's row elimination; the solves
    /// stay column-oriented.
    u_rows: Vec<Vec<(usize, f64)>>,
    /// Logical column/row order: `order[t]` is the step at logical
    /// position `t`. `U` is upper triangular under this order.
    order: Vec<usize>,
    /// Inverse of `order`: `pos[order[t]] == t`.
    pos: Vec<usize>,
    ft_etas: Vec<RowEta>,
    /// Spike scratch for [`Self::ft_update`].
    ft_scratch: Vec<f64>,
    /// Updates applied since the last refactorization (FT mode's analogue
    /// of the eta count; compared against [`ft_update_limit`]).
    ft_since_refactor: usize,
    // Scratch buffers (retained across calls).
    solve_scratch: Vec<f64>,
    work: Vec<f64>,
    in_work: Vec<bool>,
    touched: Vec<usize>,
    heap: std::collections::BinaryHeap<std::cmp::Reverse<usize>>,
    /// Lifetime LU factorizations through this handle.
    pub factorizations: usize,
    /// Factorizations triggered *mid-stream* by the eta limit or a drift
    /// check (a subset of `factorizations`; the rest are cold-start builds).
    pub refactorizations: usize,
    /// Lifetime Forrest–Tomlin updates applied through this handle.
    pub ft_updates: usize,
}

impl BasisFactorization {
    /// Factorizes `B = A[:, basis]` from scratch and clears the eta file.
    /// `refresh` marks eta-limit/drift-triggered rebuilds for the stats.
    /// On failure the previous factorization (if any) remains usable.
    pub fn refactorize(
        &mut self,
        a: &CscMatrix,
        basis: &[usize],
        refresh: bool,
    ) -> Result<(), Singular> {
        let m = basis.len();
        self.lu_next.factorize(
            m,
            a,
            basis,
            &mut self.work,
            &mut self.in_work,
            &mut self.touched,
            &mut self.heap,
        )?;
        std::mem::swap(&mut self.lu, &mut self.lu_next);
        if std::env::var_os("LU_TRACE").is_some() {
            let lnnz: usize = self.lu.l_cols.iter().map(Vec::len).sum();
            let unnz: usize = self.lu.u_cols.iter().map(Vec::len).sum();
            eprintln!("LU m={} nnzA={} nnzL={} nnzU={}", m, a.nnz(), lnnz, unnz);
        }
        self.etas.clear();
        if self.ft_mode {
            self.rebuild_ft_aux();
        }
        self.factorizations += 1;
        if refresh {
            self.refactorizations += 1;
        }
        Ok(())
    }

    /// Selects the pivot-update scheme: `true` for Forrest–Tomlin, `false`
    /// (the default) for the product-form eta file. Switching discards any
    /// pending updates, so the caller must refactorize before the next
    /// solve; the revised engine switches only on its cold `fill` path,
    /// which refactorizes unconditionally.
    pub fn set_ft_mode(&mut self, on: bool) {
        if self.ft_mode == on {
            return;
        }
        self.ft_mode = on;
        self.etas.clear();
        self.ft_etas.clear();
        self.ft_since_refactor = 0;
        if on && self.lu.m > 0 {
            self.rebuild_ft_aux();
        }
    }

    /// `true` when Forrest–Tomlin updates are active.
    #[inline]
    pub fn ft_mode(&self) -> bool {
        self.ft_mode
    }

    /// Rebuilds the FT auxiliary state (row-wise `U`, logical order) from a
    /// freshly factorized `lu`.
    fn rebuild_ft_aux(&mut self) {
        let m = self.lu.m;
        self.u_rows.iter_mut().for_each(Vec::clear);
        self.u_rows.resize(m, Vec::new());
        for (k, col) in self.lu.u_cols.iter().enumerate().take(m) {
            for &(j, v) in col {
                self.u_rows[j].push((k, v));
            }
        }
        self.order.clear();
        self.order.extend(0..m);
        self.pos.clear();
        self.pos.extend(0..m);
        self.ft_etas.clear();
        self.ft_since_refactor = 0;
    }

    /// Number of pivot updates since the last refactorization (eta-file
    /// length in eta mode, FT update count in FT mode). Compare against
    /// [`eta_limit`] / [`ft_update_limit`] respectively.
    #[inline]
    pub fn eta_count(&self) -> usize {
        if self.ft_mode {
            self.ft_since_refactor
        } else {
            self.etas.len()
        }
    }

    /// Update-count ceiling for the active scheme before the caller should
    /// refactorize.
    #[inline]
    pub fn update_limit(&self, m: usize) -> usize {
        if self.ft_mode {
            ft_update_limit(m)
        } else {
            eta_limit(m)
        }
    }

    /// Records the basis change at position `r` with `w = B_old⁻¹·a_entering`
    /// under the active update scheme. The product form cannot fail; a
    /// Forrest–Tomlin update fails (leaving the *old* factors intact) when
    /// the new diagonal is numerically zero, in which case the caller must
    /// refactorize from the updated basis columns.
    pub fn update(&mut self, r: usize, w: &[f64]) -> Result<(), Singular> {
        if self.ft_mode {
            self.ft_update(r, w)
        } else {
            self.push_eta(r, w);
            Ok(())
        }
    }

    /// Records the pivot `(position r, w = B⁻¹·a_entering)` as an eta.
    /// `w[r]` must be safely away from zero (the caller's ratio test
    /// guarantees it).
    pub fn push_eta(&mut self, r: usize, w: &[f64]) {
        let nz = w
            .iter()
            .enumerate()
            .filter(|&(i, &v)| i != r && v != 0.0)
            .map(|(i, &v)| (i, v))
            .collect();
        self.etas.push(Eta { r, wr: w[r], nz });
    }

    /// Forrest–Tomlin update: replaces column `r` of `U` with the spike
    /// `v = U·w` (undoing `w`'s U-solve recovers `R_s⋯R₁·L⁻¹·a_entering`),
    /// moves position `r` to the end of the logical order, and eliminates
    /// the old row `r` with one recorded row eta. All mutation happens after
    /// the new-diagonal stability check, so a rejected update leaves the
    /// factors representing the *old* basis.
    fn ft_update(&mut self, r: usize, w: &[f64]) -> Result<(), Singular> {
        let m = self.lu.m;
        // Spike v = U·w in step space.
        let v = &mut self.ft_scratch;
        v.clear();
        v.resize(m, 0.0);
        for (k, &wk) in w.iter().take(m).enumerate() {
            if wk != 0.0 {
                v[k] += self.lu.u_diag[k] * wk;
                for &(j, u) in &self.lu.u_cols[k] {
                    v[j] += u * wk;
                }
            }
        }
        // Eliminate the old row r against the rows logically after it,
        // accumulating fill in `work` and draining positions in ascending
        // logical order (same heap discipline as `factorize`).
        let pt = self.pos[r];
        let acc = &mut self.work;
        acc.clear();
        acc.resize(m, 0.0);
        let inq = &mut self.in_work;
        inq.clear();
        inq.resize(m, false);
        self.heap.clear();
        for &(l, ul) in &self.u_rows[r] {
            acc[l] = ul;
            if !inq[l] {
                inq[l] = true;
                self.heap.push(std::cmp::Reverse(self.pos[l]));
            }
        }
        let mut eta_nz: Vec<(usize, f64)> = Vec::new();
        let mut d = v[r];
        while let Some(std::cmp::Reverse(t)) = self.heap.pop() {
            let j = self.order[t];
            let c = acc[j];
            acc[j] = 0.0;
            inq[j] = false;
            if c.abs() > DROP_TOL {
                let mj = c / self.lu.u_diag[j];
                eta_nz.push((j, mj));
                d -= mj * v[j];
                // Fill lands strictly right of j in the logical order, so
                // the ascending drain never revisits a popped position.
                for &(l, ujl) in &self.u_rows[j] {
                    if !inq[l] {
                        inq[l] = true;
                        self.heap.push(std::cmp::Reverse(self.pos[l]));
                    }
                    acc[l] -= mj * ujl;
                }
            }
        }
        if d.abs() <= SINGULAR_TOL {
            return Err(Singular { step: r });
        }
        // Commit. Remove the old column r from the row lists…
        for &(j, _) in &self.lu.u_cols[r] {
            if let Some(i) = self.u_rows[j].iter().position(|&(c, _)| c == r) {
                self.u_rows[j].swap_remove(i);
            }
        }
        self.lu.u_cols[r].clear();
        // …and the old row r from the column lists (it eliminated to zero).
        for &(l, _) in &self.u_rows[r] {
            if let Some(i) = self.lu.u_cols[l].iter().position(|&(rr, _)| rr == r) {
                self.lu.u_cols[l].swap_remove(i);
            }
        }
        self.u_rows[r].clear();
        // Insert the spike as column r — logically last, so every other row
        // sits above its diagonal d.
        for (j, &vj) in v.iter().enumerate() {
            if j != r && vj.abs() > DROP_TOL {
                self.lu.u_cols[r].push((j, vj));
                self.u_rows[j].push((r, vj));
            }
        }
        self.lu.u_diag[r] = d;
        self.order.remove(pt);
        self.order.push(r);
        for (t, &k) in self.order.iter().enumerate().skip(pt) {
            self.pos[k] = t;
        }
        if !eta_nz.is_empty() {
            self.ft_etas.push(RowEta { r, nz: eta_nz });
        }
        self.ft_updates += 1;
        self.ft_since_refactor += 1;
        Ok(())
    }

    /// `x ← B⁻¹·x` (row space in, basis-position space out).
    pub fn ftran(&mut self, x: &mut [f64]) {
        if self.ft_mode {
            self.lu.ftran_l(x, &mut self.solve_scratch);
            for e in &self.ft_etas {
                e.ftran(&mut self.solve_scratch);
            }
            self.lu
                .ftran_u_logical(&mut self.solve_scratch, &self.order);
            x[..self.lu.m].copy_from_slice(&self.solve_scratch);
        } else {
            self.lu.ftran(x, &mut self.solve_scratch);
            for e in &self.etas {
                e.ftran(x);
            }
        }
    }

    /// `x ← B⁻ᵀ·x` (basis-position space in, row space out).
    pub fn btran(&mut self, x: &mut [f64]) {
        if self.ft_mode {
            self.lu
                .btran_u_logical(x, &mut self.solve_scratch, &self.order);
            for e in self.ft_etas.iter().rev() {
                e.btran(&mut self.solve_scratch);
            }
            self.lu.btran_l(&self.solve_scratch, x);
        } else {
            for e in self.etas.iter().rev() {
                e.btran(x);
            }
            self.lu.btran(x, &mut self.solve_scratch);
        }
    }
}

// --- Checkpoint codec -------------------------------------------------------
//
// The factor content is the accumulated result of the exact pivot sequence:
// refactorizing the same basis from scratch lands on bitwise-different
// floats, so a resumed run must carry these bytes verbatim. `lu_next` and
// `heap` are staging/scratch fully reinitialized at the start of every use
// and restore empty; the solve scratch vectors are tiny and travel anyway so
// a restored handle is indistinguishable field-for-field.

use crate::state::{Reader, StateError, Writer};

impl LuFactors {
    fn encode_state(&self, w: &mut Writer) {
        w.usize(self.m);
        w.seq(&self.l_cols, |w, col| w.vec_idx_f64(col));
        w.seq(&self.u_cols, |w, col| w.vec_idx_f64(col));
        w.vec_f64(&self.u_diag);
        w.vec_usize(&self.prow);
        w.vec_usize(&self.step_of_row);
    }

    fn decode_state(r: &mut Reader<'_>) -> Result<Self, StateError> {
        Ok(Self {
            m: r.usize()?,
            l_cols: r.seq(|r| r.vec_idx_f64())?,
            u_cols: r.seq(|r| r.vec_idx_f64())?,
            u_diag: r.vec_f64()?,
            prow: r.vec_usize()?,
            step_of_row: r.vec_usize()?,
        })
    }
}

impl Eta {
    fn encode_state(&self, w: &mut Writer) {
        w.usize(self.r);
        w.f64(self.wr);
        w.vec_idx_f64(&self.nz);
    }

    fn decode_state(r: &mut Reader<'_>) -> Result<Self, StateError> {
        Ok(Self {
            r: r.usize()?,
            wr: r.f64()?,
            nz: r.vec_idx_f64()?,
        })
    }
}

impl RowEta {
    fn encode_state(&self, w: &mut Writer) {
        w.usize(self.r);
        w.vec_idx_f64(&self.nz);
    }

    fn decode_state(r: &mut Reader<'_>) -> Result<Self, StateError> {
        Ok(Self {
            r: r.usize()?,
            nz: r.vec_idx_f64()?,
        })
    }
}

impl BasisFactorization {
    pub(crate) fn encode_state(&self, w: &mut Writer) {
        self.lu.encode_state(w);
        w.seq(&self.etas, |w, e| e.encode_state(w));
        w.bool(self.ft_mode);
        w.seq(&self.u_rows, |w, row| w.vec_idx_f64(row));
        w.vec_usize(&self.order);
        w.vec_usize(&self.pos);
        w.seq(&self.ft_etas, |w, e| e.encode_state(w));
        w.vec_f64(&self.ft_scratch);
        w.usize(self.ft_since_refactor);
        w.vec_f64(&self.solve_scratch);
        w.vec_f64(&self.work);
        w.vec_bool(&self.in_work);
        w.vec_usize(&self.touched);
        w.usize(self.factorizations);
        w.usize(self.refactorizations);
        w.usize(self.ft_updates);
    }

    pub(crate) fn decode_state(r: &mut Reader<'_>) -> Result<Self, StateError> {
        Ok(Self {
            lu: LuFactors::decode_state(r)?,
            lu_next: LuFactors::default(),
            etas: r.seq(Eta::decode_state)?,
            ft_mode: r.bool()?,
            u_rows: r.seq(|r| r.vec_idx_f64())?,
            order: r.vec_usize()?,
            pos: r.vec_usize()?,
            ft_etas: r.seq(RowEta::decode_state)?,
            ft_scratch: r.vec_f64()?,
            ft_since_refactor: r.usize()?,
            solve_scratch: r.vec_f64()?,
            work: r.vec_f64()?,
            in_work: r.vec_bool()?,
            touched: r.vec_usize()?,
            heap: std::collections::BinaryHeap::new(),
            factorizations: r.usize()?,
            refactorizations: r.usize()?,
            ft_updates: r.usize()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(rows: usize, cols: usize, entries: &[(usize, usize, f64)]) -> CscMatrix {
        let mut m = CscMatrix::default();
        m.assemble(rows, cols, entries);
        m
    }

    #[test]
    fn identity_factorizes_and_solves() {
        let a = matrix(3, 3, &[(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)]);
        let mut bf = BasisFactorization::default();
        bf.refactorize(&a, &[0, 1, 2], false).unwrap();
        let mut x = vec![3.0, -1.0, 2.0];
        bf.ftran(&mut x);
        assert_eq!(x, vec![3.0, -1.0, 2.0]);
        bf.btran(&mut x);
        assert_eq!(x, vec![3.0, -1.0, 2.0]);
    }

    #[test]
    fn ftran_and_btran_invert_a_dense_3x3() {
        // B = [[2,1,0],[1,3,1],[0,1,4]] (columns 0..3 of A).
        let a = matrix(
            3,
            3,
            &[
                (0, 0, 2.0),
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 1, 3.0),
                (1, 2, 1.0),
                (2, 1, 1.0),
                (2, 2, 4.0),
            ],
        );
        let mut bf = BasisFactorization::default();
        bf.refactorize(&a, &[0, 1, 2], false).unwrap();
        // Solve B x = b, verify by multiplying back.
        let b = [5.0, -2.0, 7.0];
        let mut x = b.to_vec();
        bf.ftran(&mut x);
        let mut back = vec![0.0; 3];
        for (k, &xk) in x.iter().enumerate() {
            a.axpy_col(k, xk, &mut back);
        }
        for (got, want) in back.iter().zip(b.iter()) {
            assert!((got - want).abs() < 1e-12, "{back:?} vs {b:?}");
        }
        // Solve Bᵀ y = c, verify dot products against columns.
        let c = [1.0, 2.0, 3.0];
        let mut y = c.to_vec();
        bf.btran(&mut y);
        for (k, &want) in c.iter().enumerate() {
            assert!((a.col_dot(k, &y) - want).abs() < 1e-12);
        }
    }

    #[test]
    fn eta_update_matches_refactorization() {
        // Start from basis {0,1,2} of a 3x5 matrix, swap in column 3 at
        // position 1 via an eta, and compare FTRAN/BTRAN results against a
        // from-scratch factorization of the updated basis.
        let a = matrix(
            3,
            5,
            &[
                (0, 0, 4.0),
                (1, 1, 2.0),
                (1, 2, 1.0),
                (2, 2, 3.0),
                (3, 0, 1.0),
                (3, 1, 1.0),
                (3, 2, 2.0),
                (4, 0, 5.0),
            ],
        );
        let mut bf = BasisFactorization::default();
        bf.refactorize(&a, &[0, 1, 2], false).unwrap();
        // w = B⁻¹ a_3.
        let mut w = vec![0.0; 3];
        a.scatter_col(3, &mut w);
        bf.ftran(&mut w);
        bf.push_eta(1, &w);
        let updated_basis = [0usize, 3, 2];

        let mut fresh = BasisFactorization::default();
        fresh.refactorize(&a, &updated_basis, false).unwrap();

        let b = [1.0, 2.0, 3.0];
        let (mut x1, mut x2) = (b.to_vec(), b.to_vec());
        bf.ftran(&mut x1);
        fresh.ftran(&mut x2);
        for (p, q) in x1.iter().zip(&x2) {
            assert!((p - q).abs() < 1e-12, "{x1:?} vs {x2:?}");
        }
        let c = [0.5, -1.0, 2.0];
        let (mut y1, mut y2) = (c.to_vec(), c.to_vec());
        bf.btran(&mut y1);
        fresh.btran(&mut y2);
        for (p, q) in y1.iter().zip(&y2) {
            assert!((p - q).abs() < 1e-12, "{y1:?} vs {y2:?}");
        }
        assert_eq!(bf.eta_count(), 1);
        assert_eq!(fresh.eta_count(), 0);
    }

    #[test]
    fn ft_update_matches_refactorization() {
        // Same scenario as `eta_update_matches_refactorization`, but with
        // Forrest–Tomlin updates: swap column 3 into position 1 and compare
        // FTRAN/BTRAN against a from-scratch factorization.
        let a = matrix(
            3,
            5,
            &[
                (0, 0, 4.0),
                (1, 1, 2.0),
                (1, 2, 1.0),
                (2, 2, 3.0),
                (3, 0, 1.0),
                (3, 1, 1.0),
                (3, 2, 2.0),
                (4, 0, 5.0),
            ],
        );
        let mut bf = BasisFactorization::default();
        bf.set_ft_mode(true);
        bf.refactorize(&a, &[0, 1, 2], false).unwrap();
        let mut w = vec![0.0; 3];
        a.scatter_col(3, &mut w);
        bf.ftran(&mut w);
        bf.update(1, &w).unwrap();
        let updated_basis = [0usize, 3, 2];

        let mut fresh = BasisFactorization::default();
        fresh.refactorize(&a, &updated_basis, false).unwrap();

        let b = [1.0, 2.0, 3.0];
        let (mut x1, mut x2) = (b.to_vec(), b.to_vec());
        bf.ftran(&mut x1);
        fresh.ftran(&mut x2);
        for (p, q) in x1.iter().zip(&x2) {
            assert!((p - q).abs() < 1e-12, "{x1:?} vs {x2:?}");
        }
        let c = [0.5, -1.0, 2.0];
        let (mut y1, mut y2) = (c.to_vec(), c.to_vec());
        bf.btran(&mut y1);
        fresh.btran(&mut y2);
        for (p, q) in y1.iter().zip(&y2) {
            assert!((p - q).abs() < 1e-12, "{y1:?} vs {y2:?}");
        }
        assert_eq!(bf.ft_updates, 1);
        assert_eq!(bf.eta_count(), 1);
    }

    #[test]
    fn repeated_ft_updates_track_fresh_factorizations() {
        // A 4x6 pool; pivot three different columns through three different
        // basis positions and check the updated factors against a fresh
        // factorization after every step (both FTRAN and BTRAN).
        let a = matrix(
            4,
            6,
            &[
                (0, 0, 2.0),
                (0, 1, 1.0),
                (1, 1, 3.0),
                (1, 2, 1.0),
                (2, 2, 4.0),
                (2, 3, 1.0),
                (3, 3, 5.0),
                (3, 0, 1.0),
                (4, 0, 1.0),
                (4, 2, 2.0),
                (4, 3, 1.0),
                (5, 1, 1.0),
                (5, 3, 2.0),
                (5, 0, 3.0),
            ],
        );
        let mut bf = BasisFactorization::default();
        bf.set_ft_mode(true);
        let mut basis = vec![0usize, 1, 2, 3];
        bf.refactorize(&a, &basis, false).unwrap();
        for (step, &(pos, col)) in [(2usize, 4usize), (0, 5), (3, 0)].iter().enumerate() {
            let mut w = vec![0.0; 4];
            a.scatter_col(col, &mut w);
            bf.ftran(&mut w);
            bf.update(pos, &w).unwrap();
            basis[pos] = col;

            let mut fresh = BasisFactorization::default();
            fresh.refactorize(&a, &basis, false).unwrap();
            let b = [1.0, -2.0, 3.0, 0.5];
            let (mut x1, mut x2) = (b.to_vec(), b.to_vec());
            bf.ftran(&mut x1);
            fresh.ftran(&mut x2);
            for (p, q) in x1.iter().zip(&x2) {
                assert!((p - q).abs() < 1e-10, "step {step}: {x1:?} vs {x2:?}");
            }
            let c = [2.0, 1.0, -1.0, 4.0];
            let (mut y1, mut y2) = (c.to_vec(), c.to_vec());
            bf.btran(&mut y1);
            fresh.btran(&mut y2);
            for (p, q) in y1.iter().zip(&y2) {
                assert!((p - q).abs() < 1e-10, "step {step}: {y1:?} vs {y2:?}");
            }
        }
        assert_eq!(bf.ft_updates, 3);
        assert_eq!(bf.eta_count(), 3);
        assert_eq!(bf.factorizations, 1);
    }

    #[test]
    fn ft_update_rejects_singular_replacement_and_survives() {
        // Replacing position 1 with a copy of the column already basic at
        // position 0 would make the basis singular; the update must refuse
        // and leave the old factors intact.
        let a = matrix(
            2,
            3,
            &[
                (0, 0, 1.0),
                (0, 1, 2.0),
                (1, 0, 1.0),
                (2, 0, 1.0),
                (2, 1, 2.0),
            ],
        );
        let mut bf = BasisFactorization::default();
        bf.set_ft_mode(true);
        bf.refactorize(&a, &[0, 1], false).unwrap();
        // Column 2 equals column 0: basis {0, 2} is singular.
        let mut w = vec![0.0; 2];
        a.scatter_col(2, &mut w);
        bf.ftran(&mut w);
        assert!(bf.update(1, &w).is_err());
        // Old factors still solve the old basis.
        let mut x = vec![3.0, 4.0];
        bf.ftran(&mut x);
        let mut back = vec![0.0; 2];
        a.axpy_col(0, x[0], &mut back);
        a.axpy_col(1, x[1], &mut back);
        assert!((back[0] - 3.0).abs() < 1e-12 && (back[1] - 4.0).abs() < 1e-12);
        assert_eq!(bf.ft_updates, 0);
    }

    #[test]
    fn singular_basis_is_rejected_and_previous_factors_survive() {
        let a = matrix(2, 3, &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 1.0), (1, 1, 1.0)]);
        let mut bf = BasisFactorization::default();
        bf.refactorize(&a, &[0, 1], false).unwrap();
        // Column 2 is all-zero: basis {0, 2} is singular.
        assert!(bf.refactorize(&a, &[0, 2], true).is_err());
        // The old factorization still solves correctly.
        let mut x = vec![3.0, 3.0];
        bf.ftran(&mut x);
        let mut back = vec![0.0; 2];
        a.axpy_col(0, x[0], &mut back);
        a.axpy_col(1, x[1], &mut back);
        assert!((back[0] - 3.0).abs() < 1e-12 && (back[1] - 3.0).abs() < 1e-12);
        assert_eq!(bf.factorizations, 1);
        assert_eq!(bf.refactorizations, 0);
    }

    #[test]
    fn permuted_basis_requires_row_pivoting() {
        // B's natural order would hit a zero pivot without row swaps.
        let a = matrix(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]);
        let mut bf = BasisFactorization::default();
        bf.refactorize(&a, &[0, 1], false).unwrap();
        let mut x = vec![7.0, 9.0];
        bf.ftran(&mut x);
        // B = [[0,1],[1,0]] so x = [9, 7].
        assert_eq!(x, vec![9.0, 7.0]);
    }
}
