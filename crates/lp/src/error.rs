//! Error type for model construction and solving.

use std::fmt;

/// Errors returned by [`crate::Problem`] construction and solving.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// The problem has no feasible solution.
    Infeasible,
    /// The objective is unbounded in the direction of optimization.
    Unbounded,
    /// A variable handle from a different problem (or out of range) was used.
    UnknownVariable { index: usize },
    /// A bound pair is inconsistent (`lower > upper`) or not finite where required.
    InvalidBounds {
        name: String,
        lower: f64,
        upper: f64,
    },
    /// A coefficient or right-hand side was NaN or infinite.
    NonFiniteCoefficient { context: String },
    /// The simplex iteration limit was exhausted before reaching optimality.
    IterationLimit { iterations: usize },
    /// Branch & bound stopped (node/time limit) without finding any incumbent.
    NoIncumbent,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "problem is infeasible"),
            LpError::Unbounded => write!(f, "objective is unbounded"),
            LpError::UnknownVariable { index } => {
                write!(f, "unknown variable handle (index {index})")
            }
            LpError::InvalidBounds { name, lower, upper } => {
                write!(
                    f,
                    "invalid bounds for variable `{name}`: [{lower}, {upper}]"
                )
            }
            LpError::NonFiniteCoefficient { context } => {
                write!(f, "non-finite coefficient in {context}")
            }
            LpError::IterationLimit { iterations } => {
                write!(
                    f,
                    "simplex iteration limit reached after {iterations} iterations"
                )
            }
            LpError::NoIncumbent => {
                write!(
                    f,
                    "branch & bound terminated without an integer-feasible solution"
                )
            }
        }
    }
}

impl std::error::Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = LpError::InvalidBounds {
            name: "x".into(),
            lower: 3.0,
            upper: 1.0,
        };
        let msg = e.to_string();
        assert!(msg.contains('x'));
        assert!(msg.contains('3'));
        assert!(LpError::Infeasible.to_string().contains("infeasible"));
        assert!(LpError::Unbounded.to_string().contains("unbounded"));
        assert!(LpError::NoIncumbent.to_string().contains("branch"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&LpError::Infeasible);
    }
}
