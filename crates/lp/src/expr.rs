//! Variable handles and linear expressions.
//!
//! A [`VarId`] is an opaque handle returned by
//! [`Problem::add_var`](crate::Problem::add_var) and friends. A [`LinExpr`]
//! is a sparse linear combination of variables plus a constant term; it is
//! what constraints and objectives are built from.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// Opaque handle to a decision variable inside a [`crate::Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Index of the variable inside its problem (stable across solves).
    pub fn index(&self) -> usize {
        self.0
    }
}

/// A sparse linear expression `sum_i coeff_i * x_i + constant`.
///
/// Terms referring to the same variable are merged. The expression supports
/// the usual arithmetic operators so models read naturally:
///
/// ```
/// use conductor_lp::{LinExpr, Problem, Sense};
/// let mut p = Problem::new("ex", Sense::Minimize);
/// let x = p.add_var("x", 0.0, 10.0);
/// let y = p.add_var("y", 0.0, 10.0);
/// let e = LinExpr::from(x) * 2.0 + LinExpr::from(y) - 1.0;
/// assert_eq!(e.coeff(x), 2.0);
/// assert_eq!(e.coeff(y), 1.0);
/// assert_eq!(e.constant(), -1.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LinExpr {
    terms: BTreeMap<VarId, f64>,
    constant: f64,
}

impl LinExpr {
    /// The empty expression (zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// A constant expression.
    pub fn constant_expr(c: f64) -> Self {
        Self {
            terms: BTreeMap::new(),
            constant: c,
        }
    }

    /// Builds an expression from an iterator of `(variable, coefficient)` terms.
    pub fn from_terms<I: IntoIterator<Item = (VarId, f64)>>(terms: I) -> Self {
        let mut e = Self::new();
        for (v, c) in terms {
            e.add_term(v, c);
        }
        e
    }

    /// Adds `coeff * var` to the expression, merging with an existing term.
    pub fn add_term(&mut self, var: VarId, coeff: f64) -> &mut Self {
        if coeff != 0.0 {
            let entry = self.terms.entry(var).or_insert(0.0);
            *entry += coeff;
            if *entry == 0.0 {
                self.terms.remove(&var);
            }
        }
        self
    }

    /// Adds a constant to the expression.
    pub fn add_constant(&mut self, c: f64) -> &mut Self {
        self.constant += c;
        self
    }

    /// Coefficient of `var` (zero if absent).
    pub fn coeff(&self, var: VarId) -> f64 {
        self.terms.get(&var).copied().unwrap_or(0.0)
    }

    /// The constant term.
    pub fn constant(&self) -> f64 {
        self.constant
    }

    /// Iterates over `(variable, coefficient)` pairs in variable order.
    pub fn terms(&self) -> impl Iterator<Item = (VarId, f64)> + '_ {
        self.terms.iter().map(|(v, c)| (*v, *c))
    }

    /// Number of non-zero terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// `true` when the expression has no variable terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Evaluates the expression for a dense assignment indexed by `VarId::index`.
    pub fn evaluate(&self, values: &[f64]) -> f64 {
        let mut acc = self.constant;
        for (v, c) in &self.terms {
            acc += c * values.get(v.0).copied().unwrap_or(0.0);
        }
        acc
    }

    /// `true` if every coefficient and the constant are finite.
    pub fn is_finite(&self) -> bool {
        self.constant.is_finite() && self.terms.values().all(|c| c.is_finite())
    }

    /// Largest variable index referenced, if any.
    pub fn max_var_index(&self) -> Option<usize> {
        self.terms.keys().next_back().map(|v| v.0)
    }
}

impl From<VarId> for LinExpr {
    fn from(v: VarId) -> Self {
        let mut e = LinExpr::new();
        e.add_term(v, 1.0);
        e
    }
}

impl From<f64> for LinExpr {
    fn from(c: f64) -> Self {
        LinExpr::constant_expr(c)
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        for (v, c) in rhs.terms {
            self.add_term(v, c);
        }
        self.constant += rhs.constant;
        self
    }
}

impl Add<f64> for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: f64) -> LinExpr {
        self.constant += rhs;
        self
    }
}

impl AddAssign for LinExpr {
    fn add_assign(&mut self, rhs: LinExpr) {
        for (v, c) in rhs.terms {
            self.add_term(v, c);
        }
        self.constant += rhs.constant;
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, rhs: LinExpr) -> LinExpr {
        for (v, c) in rhs.terms {
            self.add_term(v, -c);
        }
        self.constant -= rhs.constant;
        self
    }
}

impl Sub<f64> for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, rhs: f64) -> LinExpr {
        self.constant -= rhs;
        self
    }
}

impl SubAssign for LinExpr {
    fn sub_assign(&mut self, rhs: LinExpr) {
        for (v, c) in rhs.terms {
            self.add_term(v, -c);
        }
        self.constant -= rhs.constant;
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;
    fn mul(mut self, rhs: f64) -> LinExpr {
        for c in self.terms.values_mut() {
            *c *= rhs;
        }
        self.constant *= rhs;
        // Remove terms that became zero (e.g. multiply by 0).
        self.terms.retain(|_, c| *c != 0.0);
        self
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        self * -1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VarId {
        VarId(i)
    }

    #[test]
    fn merge_terms() {
        let mut e = LinExpr::new();
        e.add_term(v(0), 1.0)
            .add_term(v(0), 2.0)
            .add_term(v(1), -1.0);
        assert_eq!(e.coeff(v(0)), 3.0);
        assert_eq!(e.coeff(v(1)), -1.0);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn zero_terms_are_dropped() {
        let mut e = LinExpr::new();
        e.add_term(v(0), 2.0).add_term(v(0), -2.0);
        assert!(e.is_empty());
        e.add_term(v(1), 0.0);
        assert!(e.is_empty());
    }

    #[test]
    fn arithmetic_ops() {
        let a = LinExpr::from_terms([(v(0), 1.0), (v(1), 2.0)]) + 3.0;
        let b = LinExpr::from_terms([(v(1), 1.0)]);
        let s = a.clone() + b.clone();
        assert_eq!(s.coeff(v(1)), 3.0);
        assert_eq!(s.constant(), 3.0);
        let d = a.clone() - b;
        assert_eq!(d.coeff(v(1)), 1.0);
        let m = a * 2.0;
        assert_eq!(m.coeff(v(0)), 2.0);
        assert_eq!(m.constant(), 6.0);
        let n = -m;
        assert_eq!(n.coeff(v(0)), -2.0);
        assert_eq!(n.constant(), -6.0);
    }

    #[test]
    fn evaluate_uses_dense_values() {
        let e = LinExpr::from_terms([(v(0), 2.0), (v(2), 1.0)]) + 1.0;
        assert_eq!(e.evaluate(&[1.0, 100.0, 3.0]), 2.0 + 3.0 + 1.0);
        // Missing indices evaluate as zero.
        assert_eq!(e.evaluate(&[1.0]), 3.0);
    }

    #[test]
    fn finiteness_check() {
        let mut e = LinExpr::from_terms([(v(0), 1.0)]);
        assert!(e.is_finite());
        e.add_constant(f64::NAN);
        assert!(!e.is_finite());
    }

    #[test]
    fn max_var_index() {
        let e = LinExpr::from_terms([(v(3), 1.0), (v(7), 2.0)]);
        assert_eq!(e.max_var_index(), Some(7));
        assert_eq!(LinExpr::new().max_var_index(), None);
    }
}
