//! Branch & bound over integer and semi-continuous variables.
//!
//! Each node tightens per-variable bound vectors and re-solves the LP
//! relaxation. The search is best-bound-first with a most-fractional
//! branching rule, a rounding heuristic at every node to obtain incumbents
//! early, and the stopping criteria the paper configures on CPLEX: a
//! relative optimality gap and a wall-clock limit after which the best
//! feasible solution found so far is returned (§4.8).
//!
//! The solver hot path is built around three reuse layers (see
//! [`crate::simplex`]): one [`StandardFormSkeleton`] for the whole tree, one
//! [`SimplexWorkspace`] reused by every node, and parent-basis warm starts
//! threaded through each node's saved basis. Hit/miss counts land in
//! [`SolveStats::warm_start_hits`] / [`SolveStats::warm_start_misses`] so
//! benchmarks can verify the warm-start rate.

use crate::error::LpError;
use crate::problem::{Engine, Problem, Sense, SolveOptions, VarKind};
use crate::revised::{solve_with_skeleton_revised, RevisedWorkspace};
use crate::seed_baseline;
use crate::simplex::{
    solve_with_skeleton, SimplexResult, SimplexWorkspace, StandardFormSkeleton, WarmStart,
};
use crate::solution::{Solution, SolveStats, SolveStatus};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::rc::Rc;
use std::time::Instant;

/// Solves `problem` (LP or MIP) under `options`.
pub fn solve(problem: &Problem, options: &SolveOptions) -> Result<Solution, LpError> {
    let start = Instant::now();
    let lower: Vec<f64> = problem.variables().iter().map(|v| v.lower).collect();
    let upper: Vec<f64> = problem.variables().iter().map(|v| v.upper).collect();

    let solver = NodeSolver::new(problem, options, &lower, &upper)?;
    let (result, _solver) = solve_nodes(problem, options, start, solver, lower, upper, None);
    result
}

/// Cross-solve reuse state for a stream of structurally look-alike problems
/// — the batched-admission fast path. Holds one boxed standard-form
/// skeleton, rebound in place when the next problem matches (same matrix,
/// new RHS/objective), and one revised workspace whose factorized basis
/// warm-starts the next solve's root from the previous solve's final basis.
/// A problem that does not match falls back transparently to a rebuild.
#[derive(Debug, Default)]
pub struct SolveContext {
    cached: Option<(Box<StandardFormSkeleton>, RevisedWorkspace)>,
    last_basis: Vec<usize>,
    skeleton_reuses: usize,
    skeleton_rebuilds: usize,
}

impl SolveContext {
    pub fn new() -> Self {
        Self::default()
    }

    /// `(reuses, rebuilds)` — how many solves rebound the cached skeleton in
    /// place vs. paid for a fresh build.
    pub fn reuse_counts(&self) -> (usize, usize) {
        (self.skeleton_reuses, self.skeleton_rebuilds)
    }

    /// Warm-start counts accumulated by the shared workspace.
    pub fn warm_start_counts(&self) -> (usize, usize) {
        self.cached
            .as_ref()
            .map(|(_, ws)| ws.warm_start_counts())
            .unwrap_or((0, 0))
    }

    /// Takes the cached engine, rebinding the skeleton to `problem` when the
    /// layout matches; otherwise rebuilds the skeleton (keeping the
    /// workspace's allocations, but invalidating its factorized state — the
    /// warm-reuse guard is address-based and a fresh box can legally land on
    /// a freed address). The skeleton mode and workspace configuration
    /// follow `options`; a cached legacy skeleton cannot serve a
    /// bounded-variable solve (or vice versa) and is rebuilt.
    fn engine_for(
        &mut self,
        problem: &Problem,
        options: &SolveOptions,
        lower: &[f64],
        upper: &[f64],
    ) -> Result<(Box<StandardFormSkeleton>, RevisedWorkspace), LpError> {
        let build = |lo: &[f64], hi: &[f64]| {
            if options.bounded_variables {
                StandardFormSkeleton::new_bounded(problem, lo, hi)
            } else {
                StandardFormSkeleton::new(problem, lo, hi)
            }
        };
        if let Some((mut skeleton, mut ws)) = self.cached.take() {
            ws.configure(options.forrest_tomlin, options.dual_steepest_edge);
            if skeleton.is_bounded() == options.bounded_variables
                && skeleton.rebind(problem, lower, upper)
            {
                self.skeleton_reuses += 1;
                return Ok((skeleton, ws));
            }
            ws.invalidate();
            self.last_basis.clear();
            let skeleton = Box::new(build(lower, upper)?);
            self.skeleton_rebuilds += 1;
            return Ok((skeleton, ws));
        }
        self.skeleton_rebuilds += 1;
        let mut ws = RevisedWorkspace::default();
        ws.configure(options.forrest_tomlin, options.dual_steepest_edge);
        Ok((Box::new(build(lower, upper)?), ws))
    }

    /// Solves only the root LP relaxation of `problem` through the shared
    /// skeleton/workspace and returns its objective in the problem's own
    /// sense — the bound a plan-cache certificate compares a reused plan
    /// against. The workspace keeps the optimal factorized state, so a full
    /// solve of the same problem immediately afterwards warm-starts from it.
    pub fn relaxation_bound(
        &mut self,
        problem: &Problem,
        options: &SolveOptions,
        max_iterations: usize,
    ) -> Result<f64, LpError> {
        let lower: Vec<f64> = problem.variables().iter().map(|v| v.lower).collect();
        let upper: Vec<f64> = problem.variables().iter().map(|v| v.upper).collect();
        let (skeleton, mut ws) = self.engine_for(problem, options, &lower, &upper)?;
        let prev = std::mem::take(&mut self.last_basis);
        let hint = if prev.is_empty() {
            None
        } else {
            Some(prev.as_slice())
        };
        let result =
            solve_with_skeleton_revised(&skeleton, &mut ws, &lower, &upper, hint, max_iterations);
        match &result {
            Ok(r) => self.last_basis = r.basis.clone(),
            Err(_) => self.last_basis.clear(),
        }
        self.cached = Some((skeleton, ws));
        result.map(|r| r.objective)
    }

    /// Serializes the full context — cached skeleton, factorized workspace
    /// and last optimal basis — into a hex blob suitable for embedding in a
    /// JSON checkpoint. [`SolveContext::import_state`] rebuilds a context
    /// that solves the next problem bit-for-bit like this one would have
    /// (same warm-start path, same pivots, same floats).
    pub fn export_state(&self) -> String {
        let mut w = crate::state::Writer::new();
        match &self.cached {
            None => w.bool(false),
            Some((skeleton, ws)) => {
                w.bool(true);
                skeleton.encode_state(&mut w);
                ws.encode_state(skeleton, &mut w);
            }
        }
        w.vec_usize(&self.last_basis);
        w.usize(self.skeleton_reuses);
        w.usize(self.skeleton_rebuilds);
        w.into_hex()
    }

    /// Rebuilds a context from [`SolveContext::export_state`] output.
    pub fn import_state(blob: &str) -> Result<Self, crate::state::StateError> {
        let bytes = crate::state::from_hex(blob)?;
        let mut r = crate::state::Reader::new(&bytes);
        let cached = if r.bool()? {
            let skeleton = Box::new(StandardFormSkeleton::decode_state(&mut r)?);
            let ws = RevisedWorkspace::decode_state(&mut r, &skeleton)?;
            Some((skeleton, ws))
        } else {
            None
        };
        let ctx = Self {
            cached,
            last_basis: r.vec_usize()?,
            skeleton_reuses: r.usize()?,
            skeleton_rebuilds: r.usize()?,
        };
        r.finish()?;
        Ok(ctx)
    }
}

/// Like [`solve`], but shares `ctx`'s skeleton, factorized workspace and
/// final basis across calls: each successive solve of a matching problem
/// warm-starts its root from the previous solve's optimum instead of a cold
/// two-phase fill. Engines other than [`Engine::RevisedSparse`] gain nothing
/// from the context and delegate to the plain path.
pub fn solve_with_context(
    problem: &Problem,
    options: &SolveOptions,
    ctx: &mut SolveContext,
) -> Result<Solution, LpError> {
    if options.engine != Engine::RevisedSparse {
        return solve(problem, options);
    }
    let start = Instant::now();
    let lower: Vec<f64> = problem.variables().iter().map(|v| v.lower).collect();
    let upper: Vec<f64> = problem.variables().iter().map(|v| v.upper).collect();

    let (skeleton, workspace) = ctx.engine_for(problem, options, &lower, &upper)?;
    let root_basis = {
        let prev = std::mem::take(&mut ctx.last_basis);
        if prev.is_empty() {
            None
        } else {
            Some(Rc::new(prev))
        }
    };
    let solver = NodeSolver {
        problem,
        options,
        engine: EngineState::Revised {
            skeleton,
            workspace,
        },
    };
    let (result, solver) = solve_nodes(problem, options, start, solver, lower, upper, root_basis);
    if let EngineState::Revised {
        skeleton,
        workspace,
    } = solver.engine
    {
        ctx.last_basis = workspace.last_basis().to_vec();
        ctx.cached = Some((skeleton, workspace));
    }
    result
}

/// Shared driver behind [`solve`] and [`solve_with_context`]: runs the
/// single-relaxation path for pure LPs or the full branch & bound for MIPs,
/// and hands the (possibly context-owned) engine back to the caller.
fn solve_nodes<'a>(
    problem: &'a Problem,
    options: &'a SolveOptions,
    start: Instant,
    mut solver: NodeSolver<'a>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    root_basis: Option<Rc<Vec<usize>>>,
) -> (Result<Solution, LpError>, NodeSolver<'a>) {
    if !problem.is_mip() {
        let hint = root_basis.as_ref().map(|b| b.as_slice());
        let r = match solver.solve_node(&lower, &upper, hint) {
            Ok(r) => r,
            Err(e) => return (Err(e), solver),
        };
        let (basis_factorizations, basis_refactorizations) = solver.factorization_counts();
        let (bound_flips, ft_updates) = solver.pivot_counts();
        let stats = SolveStats {
            simplex_iterations: r.iterations,
            nodes_explored: 1,
            solve_time: start.elapsed(),
            relative_gap: 0.0,
            warm_start_hits: 0,
            warm_start_misses: 0,
            basis_factorizations,
            basis_refactorizations,
            bound_flips,
            ft_updates,
        };
        return (
            Ok(Solution::new(
                SolveStatus::Optimal,
                r.objective,
                r.values,
                stats,
            )),
            solver,
        );
    }

    let mut bb = BranchAndBound::new(problem, options, start, solver);
    let result = bb.run(lower, upper, root_basis);
    (result, bb.node_solver)
}

/// Per-tree LP backend: the engine selected by [`SolveOptions::engine`] with
/// its shared skeleton + workspace, plus fallbacks for bound patterns the
/// skeleton cannot express.
// One value exists per branch & bound tree, so the size spread between the
// seed variant (unit) and the workspace-carrying ones is irrelevant.
#[allow(clippy::large_enum_variant)]
enum EngineState {
    /// The preserved seed implementation (no skeleton, no warm starts).
    Seed,
    /// Flat dense tableau with embedded basis inverse.
    Dense {
        skeleton: StandardFormSkeleton,
        workspace: SimplexWorkspace,
    },
    /// Sparse revised simplex over an LU-factorized basis. The skeleton is
    /// boxed so its address (the workspace's warm-reuse tag) stays stable
    /// when the engine moves between a [`SolveContext`] and a solve.
    Revised {
        skeleton: Box<StandardFormSkeleton>,
        workspace: RevisedWorkspace,
    },
}

struct NodeSolver<'a> {
    problem: &'a Problem,
    options: &'a SolveOptions,
    engine: EngineState,
}

impl<'a> NodeSolver<'a> {
    fn new(
        problem: &'a Problem,
        options: &'a SolveOptions,
        root_lower: &[f64],
        root_upper: &[f64],
    ) -> Result<Self, LpError> {
        let engine = match options.engine {
            Engine::SeedBaseline => EngineState::Seed,
            Engine::DenseTableau => EngineState::Dense {
                skeleton: StandardFormSkeleton::new(problem, root_lower, root_upper)?,
                workspace: SimplexWorkspace::default(),
            },
            Engine::RevisedSparse => {
                let skeleton = if options.bounded_variables {
                    StandardFormSkeleton::new_bounded(problem, root_lower, root_upper)?
                } else {
                    StandardFormSkeleton::new(problem, root_lower, root_upper)?
                };
                let mut workspace = RevisedWorkspace::default();
                workspace.configure(options.forrest_tomlin, options.dual_steepest_edge);
                EngineState::Revised {
                    skeleton: Box::new(skeleton),
                    workspace,
                }
            }
        };
        Ok(Self {
            problem,
            options,
            engine,
        })
    }

    /// Solves one relaxation. `basis_hint` is the parent's final basis; the
    /// hint is only meaningful against the shared skeleton, so fallback
    /// paths ignore it and report [`WarmStart::Cold`].
    fn solve_node(
        &mut self,
        lower: &[f64],
        upper: &[f64],
        basis_hint: Option<&[usize]>,
    ) -> Result<SimplexResult, LpError> {
        let max_iterations = self.options.max_simplex_iterations;
        let hint = if self.options.warm_start {
            basis_hint
        } else {
            None
        };
        match &mut self.engine {
            EngineState::Seed => {
                let r =
                    seed_baseline::solve_relaxation(self.problem, lower, upper, max_iterations)?;
                Ok(SimplexResult {
                    values: r.values,
                    objective: r.objective,
                    iterations: r.iterations,
                    basis: Vec::new(),
                    warm: WarmStart::Cold,
                })
            }
            EngineState::Dense {
                skeleton,
                workspace,
            } => {
                if skeleton.compatible(lower, upper) {
                    return solve_with_skeleton(
                        skeleton,
                        workspace,
                        lower,
                        upper,
                        hint,
                        max_iterations,
                    );
                }
                solve_fresh_skeleton(self.problem, lower, upper, max_iterations, {
                    let mut ws = SimplexWorkspace::default();
                    move |sk, lo, hi, it| solve_with_skeleton(sk, &mut ws, lo, hi, None, it)
                })
            }
            EngineState::Revised {
                skeleton,
                workspace,
            } => {
                if skeleton.compatible(lower, upper) {
                    return solve_with_skeleton_revised(
                        skeleton,
                        workspace,
                        lower,
                        upper,
                        hint,
                        max_iterations,
                    );
                }
                solve_fresh_skeleton_with(
                    self.problem,
                    lower,
                    upper,
                    max_iterations,
                    self.options.bounded_variables,
                    {
                        let mut ws = RevisedWorkspace::default();
                        ws.configure(self.options.forrest_tomlin, self.options.dual_steepest_edge);
                        move |sk, lo, hi, it| {
                            solve_with_skeleton_revised(sk, &mut ws, lo, hi, None, it)
                        }
                    },
                )
            }
        }
    }

    /// Cumulative `(hits, misses)` of warm-start attempts by this tree's
    /// engine (always `(0, 0)` for the seed engine).
    fn warm_start_counts(&self) -> (usize, usize) {
        match &self.engine {
            EngineState::Seed => (0, 0),
            EngineState::Dense { workspace, .. } => workspace.warm_start_counts(),
            EngineState::Revised { workspace, .. } => workspace.warm_start_counts(),
        }
    }

    /// Cumulative `(factorizations, refactorizations)` of the revised
    /// engine's basis ( `(0, 0)` for the tableau engines).
    fn factorization_counts(&self) -> (usize, usize) {
        match &self.engine {
            EngineState::Revised { workspace, .. } => workspace.factorization_counts(),
            _ => (0, 0),
        }
    }

    /// Cumulative `(bound_flips, ft_updates)` of the revised engine's
    /// bounded-variable ratio test and Forrest–Tomlin updates (`(0, 0)` for
    /// the tableau engines and when the flags are off).
    fn pivot_counts(&self) -> (usize, usize) {
        match &self.engine {
            EngineState::Revised { workspace, .. } => workspace.pivot_counts(),
            _ => (0, 0),
        }
    }
}

/// Fallback for the rare node whose bounds change a variable's standard-form
/// classification (e.g. branching on a variable that the root fixed): build
/// a one-off skeleton and solve it cold with a fresh workspace. The basis
/// indices of such a solve are meaningless against the shared skeleton's
/// layout, so they are stripped before children can inherit them as hints.
fn solve_fresh_skeleton(
    problem: &Problem,
    lower: &[f64],
    upper: &[f64],
    max_iterations: usize,
    solve: impl FnMut(&StandardFormSkeleton, &[f64], &[f64], usize) -> Result<SimplexResult, LpError>,
) -> Result<SimplexResult, LpError> {
    solve_fresh_skeleton_with(problem, lower, upper, max_iterations, false, solve)
}

/// [`solve_fresh_skeleton`] with an explicit skeleton mode (the revised
/// engine keeps bounded-variable nodes bounded even on the fallback path).
fn solve_fresh_skeleton_with(
    problem: &Problem,
    lower: &[f64],
    upper: &[f64],
    max_iterations: usize,
    bounded: bool,
    mut solve: impl FnMut(
        &StandardFormSkeleton,
        &[f64],
        &[f64],
        usize,
    ) -> Result<SimplexResult, LpError>,
) -> Result<SimplexResult, LpError> {
    let fresh = if bounded {
        StandardFormSkeleton::new_bounded(problem, lower, upper)?
    } else {
        StandardFormSkeleton::new(problem, lower, upper)?
    };
    let mut r = solve(&fresh, lower, upper, max_iterations)?;
    r.basis = Vec::new();
    Ok(r)
}

/// A pending search node: bound overrides plus the parent relaxation bound
/// and the parent's final basis for warm starting.
struct Node {
    lower: Vec<f64>,
    upper: Vec<f64>,
    /// Relaxation objective of the parent, in *minimization* orientation
    /// (used for best-bound ordering and pruning).
    bound: f64,
    depth: usize,
    /// Parent's final simplex basis (shared by both children).
    basis: Option<Rc<Vec<usize>>>,
}

/// Max-heap entry ordered so the node with the smallest minimization bound
/// (i.e. the most promising) pops first.
struct HeapEntry {
    node: Node,
    order: f64,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.order.total_cmp(&other.order) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: smaller bound = higher priority. `total_cmp` gives a
        // total order even for NaN, so a corrupt bound can no longer poison
        // the heap invariants (NaN sorts last and simply pops last).
        other.order.total_cmp(&self.order)
    }
}

struct BranchAndBound<'a> {
    problem: &'a Problem,
    options: &'a SolveOptions,
    start: Instant,
    sense_factor: f64,
    node_solver: NodeSolver<'a>,
    incumbent: Option<(f64, Vec<f64>)>,
    best_bound: f64,
    nodes_explored: usize,
    simplex_iterations: usize,
    warm_start_hits: usize,
    warm_start_misses: usize,
}

impl<'a> BranchAndBound<'a> {
    fn new(
        problem: &'a Problem,
        options: &'a SolveOptions,
        start: Instant,
        node_solver: NodeSolver<'a>,
    ) -> Self {
        let sense_factor = match problem.sense() {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        Self {
            problem,
            options,
            start,
            sense_factor,
            node_solver,
            incumbent: None,
            best_bound: f64::NEG_INFINITY,
            nodes_explored: 0,
            simplex_iterations: 0,
            warm_start_hits: 0,
            warm_start_misses: 0,
        }
    }

    /// Objective in minimization orientation.
    fn min_obj(&self, objective: f64) -> f64 {
        objective * self.sense_factor
    }

    fn run(
        &mut self,
        root_lower: Vec<f64>,
        root_upper: Vec<f64>,
        root_basis: Option<Rc<Vec<usize>>>,
    ) -> Result<Solution, LpError> {
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();
        heap.push(HeapEntry {
            order: f64::NEG_INFINITY,
            node: Node {
                lower: root_lower,
                upper: root_upper,
                bound: f64::NEG_INFINITY,
                depth: 0,
                basis: root_basis,
            },
        });

        let mut root_infeasible = true;
        let mut attempted_any_node = false;
        let mut saw_unbounded = false;

        while let Some(HeapEntry { node, .. }) = heap.pop() {
            if self.nodes_explored >= self.options.max_nodes
                || self.start.elapsed() >= self.options.time_limit
            {
                break;
            }
            // Prune against the incumbent (in minimization orientation).
            if let Some((inc_obj, _)) = &self.incumbent {
                let inc_min = self.min_obj(*inc_obj);
                if node.bound >= inc_min - self.gap_slack(inc_min) {
                    continue;
                }
            }

            let hint = node.basis.as_ref().map(|b| b.as_slice());
            attempted_any_node = true;
            let relax = match self.node_solver.solve_node(&node.lower, &node.upper, hint) {
                Ok(r) => r,
                Err(LpError::Infeasible) => continue,
                Err(LpError::Unbounded) => {
                    // An unbounded relaxation at the root means the MIP is
                    // unbounded or needs branching to become bounded; treat it
                    // as an error only if we never find anything better.
                    saw_unbounded = true;
                    continue;
                }
                Err(e) => return Err(e),
            };
            root_infeasible = false;
            self.nodes_explored += 1;
            self.simplex_iterations += relax.iterations;

            let relax_min = self.min_obj(relax.objective);
            if node.depth == 0 {
                self.best_bound = relax_min;
            }

            // Prune by bound.
            if let Some((inc_obj, _)) = &self.incumbent {
                let inc_min = self.min_obj(*inc_obj);
                if relax_min >= inc_min - self.gap_slack(inc_min) {
                    continue;
                }
            }

            match self.most_violated(&relax) {
                None => {
                    // Integral (and semi-continuous feasible): candidate incumbent.
                    self.offer_incumbent(relax.objective, relax.values);
                }
                Some(branch_var) => {
                    // Cheap rounding heuristics give early incumbents and keep
                    // the tree small (most of our models are near-integral).
                    self.try_rounding_heuristic(&relax, &node);
                    self.branch(&node, branch_var, &relax, relax_min, &mut heap);
                }
            }

            // Gap check. The heap is ordered by bound, so the global best
            // bound is an O(1) peek instead of a full scan.
            if let Some((inc_obj, _)) = &self.incumbent {
                let inc_min = self.min_obj(*inc_obj);
                let bound = heap
                    .peek()
                    .map(|e| e.node.bound)
                    .unwrap_or(f64::INFINITY)
                    .min(inc_min);
                let gap = relative_gap(inc_min, bound);
                if gap <= self.options.relative_gap {
                    break;
                }
            }
        }

        let (hits, misses) = self.node_solver.warm_start_counts();
        self.warm_start_hits = hits;
        self.warm_start_misses = misses;
        let (basis_factorizations, basis_refactorizations) =
            self.node_solver.factorization_counts();

        let sense_factor = self.sense_factor;
        match self.incumbent.take() {
            Some((obj, values)) => {
                let remaining_bound = heap.peek().map(|e| e.node.bound).unwrap_or(f64::INFINITY);
                let inc_min = obj * sense_factor;
                let gap = relative_gap(inc_min, remaining_bound.min(inc_min));
                let status = if gap <= self.options.relative_gap {
                    SolveStatus::Optimal
                } else {
                    SolveStatus::Feasible
                };
                let (bound_flips, ft_updates) = self.node_solver.pivot_counts();
                let stats = SolveStats {
                    simplex_iterations: self.simplex_iterations,
                    nodes_explored: self.nodes_explored,
                    solve_time: self.start.elapsed(),
                    relative_gap: gap,
                    warm_start_hits: self.warm_start_hits,
                    warm_start_misses: self.warm_start_misses,
                    basis_factorizations,
                    basis_refactorizations,
                    bound_flips,
                    ft_updates,
                };
                Ok(Solution::new(status, obj, values, stats))
            }
            None => {
                if saw_unbounded {
                    Err(LpError::Unbounded)
                } else if root_infeasible && attempted_any_node {
                    Err(LpError::Infeasible)
                } else {
                    // Either limits stopped the search before any node was
                    // solved, or every relaxation solved but no integer
                    // incumbent was found.
                    Err(LpError::NoIncumbent)
                }
            }
        }
    }

    /// Absolute slack implied by the relative gap around an incumbent value.
    fn gap_slack(&self, inc_min: f64) -> f64 {
        self.options.relative_gap * inc_min.abs().max(1e-9)
    }

    /// Returns the index of the integrality/semi-continuity-violating variable
    /// whose fractional part is largest, or `None` if the relaxation is feasible
    /// for the MIP.
    fn most_violated(&self, relax: &SimplexResult) -> Option<usize> {
        let tol = self.options.integrality_tol;
        let mut best: Option<(usize, f64)> = None;
        for (i, var) in self.problem.variables().iter().enumerate() {
            let x = relax.values[i];
            let violation = match var.kind {
                VarKind::Continuous => 0.0,
                VarKind::Integer => {
                    let frac = (x - x.round()).abs();
                    if frac > tol {
                        // Distance from the nearest half-integer point, i.e.
                        // "how fractional" the value is.
                        0.5 - (x.fract().abs() - 0.5).abs()
                    } else {
                        0.0
                    }
                }
                VarKind::SemiContinuous { threshold } => {
                    if x > tol && x < threshold - tol {
                        // Violates the "0 or >= threshold" disjunction. These
                        // variables are branched with priority: once every
                        // semi-continuous disjunction is settled the remaining
                        // integer variables round to feasible incumbents
                        // easily, which keeps the search tree small.
                        1e3 + (x.min(threshold - x)) / threshold.max(1e-9)
                    } else {
                        0.0
                    }
                }
            };
            if violation > 0.0 && best.is_none_or(|(_, b)| violation > b) {
                best = Some((i, violation));
            }
        }
        best.map(|(i, _)| i)
    }

    fn branch(
        &mut self,
        node: &Node,
        var: usize,
        relax: &SimplexResult,
        relax_min: f64,
        heap: &mut BinaryHeap<HeapEntry>,
    ) {
        let x = relax.values[var];
        let kind = self.problem.variables()[var].kind;
        let (left, right): ((f64, f64), (f64, f64)) = match kind {
            VarKind::Integer => {
                let fl = x.floor();
                ((node.lower[var], fl), (fl + 1.0, node.upper[var]))
            }
            VarKind::SemiContinuous { threshold } => {
                // Either exactly zero, or at least the threshold.
                ((0.0, 0.0), (threshold, node.upper[var]))
            }
            VarKind::Continuous => unreachable!("continuous variables are never branched on"),
        };
        // Both children share the parent's final basis as their warm-start
        // hint; nodes solved via fallback paths return an empty basis, which
        // children must not inherit.
        let parent_basis = if relax.basis.is_empty() {
            None
        } else {
            Some(Rc::new(relax.basis.clone()))
        };
        for (lo, hi) in [left, right] {
            if lo > hi + 1e-12 {
                continue;
            }
            let mut lower = node.lower.clone();
            let mut upper = node.upper.clone();
            lower[var] = lo;
            upper[var] = hi;
            heap.push(HeapEntry {
                order: relax_min,
                node: Node {
                    lower,
                    upper,
                    bound: relax_min,
                    depth: node.depth + 1,
                    basis: parent_basis.clone(),
                },
            });
        }
    }

    /// Rounds the relaxation to a MIP-feasible point and offers it as an
    /// incumbent if it satisfies all constraints. Two roundings are tried:
    /// nearest-integer and ceiling (rounding resource counts *up* is usually
    /// the safe direction in Conductor's capacity-style constraints).
    fn try_rounding_heuristic(&mut self, relax: &SimplexResult, node: &Node) {
        for ceiling in [false, true] {
            let mut values = relax.values.clone();
            for (i, var) in self.problem.variables().iter().enumerate() {
                match var.kind {
                    VarKind::Continuous => {}
                    VarKind::Integer => {
                        let rounded = if ceiling {
                            (values[i] - 1e-9).ceil()
                        } else {
                            values[i].round()
                        };
                        values[i] = rounded.clamp(node.lower[i], node.upper[i]);
                    }
                    VarKind::SemiContinuous { threshold } => {
                        if values[i] < threshold / 2.0 && !ceiling {
                            values[i] = 0.0;
                        } else if values[i] > 1e-9 && values[i] < threshold {
                            values[i] = threshold.min(node.upper[i]);
                        }
                    }
                }
            }
            if self.is_feasible(&values) {
                let obj = self.problem.objective().evaluate(&values);
                self.offer_incumbent(obj, values);
            }
        }
    }

    /// Checks all constraints, bounds and integrality of a candidate point.
    fn is_feasible(&self, values: &[f64]) -> bool {
        let tol = 1e-6;
        for (i, var) in self.problem.variables().iter().enumerate() {
            let x = values[i];
            if x < var.lower - tol || x > var.upper + tol {
                return false;
            }
            match var.kind {
                VarKind::Continuous => {}
                VarKind::Integer => {
                    if (x - x.round()).abs() > self.options.integrality_tol {
                        return false;
                    }
                }
                VarKind::SemiContinuous { threshold } => {
                    if x > tol && x < threshold - tol {
                        return false;
                    }
                }
            }
        }
        for c in self.problem.constraints() {
            let lhs = c.expr.evaluate(values);
            let ok = match c.op {
                crate::problem::ConstraintOp::Le => lhs <= c.rhs + tol * (1.0 + c.rhs.abs()),
                crate::problem::ConstraintOp::Ge => lhs >= c.rhs - tol * (1.0 + c.rhs.abs()),
                crate::problem::ConstraintOp::Eq => {
                    (lhs - c.rhs).abs() <= tol * (1.0 + c.rhs.abs())
                }
            };
            if !ok {
                return false;
            }
        }
        true
    }

    fn offer_incumbent(&mut self, objective: f64, values: Vec<f64>) {
        let better = match &self.incumbent {
            None => true,
            Some((best, _)) => self.min_obj(objective) < self.min_obj(*best) - 1e-12,
        };
        if better {
            self.incumbent = Some((objective, values));
        }
    }
}

fn relative_gap(incumbent_min: f64, bound_min: f64) -> f64 {
    if !bound_min.is_finite() {
        return 0.0;
    }
    (incumbent_min - bound_min).max(0.0) / incumbent_min.abs().max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{ConstraintOp, Problem, Sense};

    #[test]
    fn pure_lp_dispatch() {
        let mut p = Problem::new("lp", Sense::Maximize);
        let x = p.add_var("x", 0.0, 4.0);
        p.set_objective([(x, 1.0)]);
        let sol = p.solve().unwrap();
        assert_eq!(sol.status(), SolveStatus::Optimal);
        assert!((sol.objective() - 4.0).abs() < 1e-6);
        assert_eq!(sol.stats().nodes_explored, 1);
    }

    #[test]
    fn solve_context_state_roundtrip_is_bitwise() {
        let make = |cap: f64, c: [f64; 4]| {
            let mut p = Problem::new("knapsack", Sense::Maximize);
            let a = p.add_int_var("a", 0.0, 1.0);
            let b = p.add_int_var("b", 0.0, 1.0);
            let cc = p.add_int_var("c", 0.0, 1.0);
            let d = p.add_int_var("d", 0.0, 1.0);
            p.set_objective([(a, c[0]), (b, c[1]), (cc, c[2]), (d, c[3])]);
            p.add_constraint(
                "cap",
                [(a, 5.0), (b, 7.0), (cc, 4.0), (d, 3.0)],
                ConstraintOp::Le,
                cap,
            );
            p
        };
        for (bounded, ft, dse) in [(false, false, false), (true, true, true)] {
            let opts = SolveOptions {
                relative_gap: 0.0,
                bounded_variables: bounded,
                forrest_tomlin: ft,
                dual_steepest_edge: dse,
                ..Default::default()
            };
            // Accumulate real warm-start state across two look-alike solves.
            let mut live = SolveContext::new();
            for (cap, c) in [(14.0, [8.0, 11.0, 6.0, 4.0]), (12.0, [7.0, 10.0, 6.5, 4.0])] {
                solve_with_context(&make(cap, c), &opts, &mut live).unwrap();
            }
            let blob = live.export_state();
            let mut restored = SolveContext::import_state(&blob).unwrap();
            assert_eq!(restored.reuse_counts(), live.reuse_counts());
            assert_eq!(restored.warm_start_counts(), live.warm_start_counts());

            // The next solve must take the identical path in both contexts.
            let next = make(13.0, [8.5, 11.0, 5.5, 4.25]);
            let sa = solve_with_context(&next, &opts, &mut live).unwrap();
            let sb = solve_with_context(&next, &opts, &mut restored).unwrap();
            assert_eq!(sa.objective().to_bits(), sb.objective().to_bits());
            assert_eq!(sa.stats().nodes_explored, sb.stats().nodes_explored);
            assert_eq!(live.reuse_counts(), restored.reuse_counts());
            assert_eq!(live.warm_start_counts(), restored.warm_start_counts());
            // Strongest check: the post-solve states re-export to the exact
            // same bytes — every float in the factorization agrees.
            assert_eq!(live.export_state(), restored.export_state());
        }
    }

    #[test]
    fn import_state_rejects_corrupt_blobs() {
        assert!(SolveContext::import_state("zz").is_err());
        assert!(SolveContext::import_state("0bad").is_err());
        let mut ctx = SolveContext::new();
        let mut p = Problem::new("lp", Sense::Maximize);
        let x = p.add_var("x", 0.0, 4.0);
        p.set_objective([(x, 1.0)]);
        solve_with_context(&p, &SolveOptions::default(), &mut ctx).unwrap();
        let blob = ctx.export_state();
        // Truncation anywhere must error, never panic.
        assert!(SolveContext::import_state(&blob[..blob.len() - 8]).is_err());
        // Trailing garbage is detected by the exhaustion check.
        assert!(SolveContext::import_state(&format!("{blob}00")).is_err());
    }

    #[test]
    fn knapsack_integer() {
        // max 8a + 11b + 6c + 4d s.t. 5a + 7b + 4c + 3d <= 14, vars in {0,1}
        // Optimal: a=0,b=1,c=1,d=1 -> 21.
        let mut p = Problem::new("knapsack", Sense::Maximize);
        let a = p.add_int_var("a", 0.0, 1.0);
        let b = p.add_int_var("b", 0.0, 1.0);
        let c = p.add_int_var("c", 0.0, 1.0);
        let d = p.add_int_var("d", 0.0, 1.0);
        p.set_objective([(a, 8.0), (b, 11.0), (c, 6.0), (d, 4.0)]);
        p.add_constraint(
            "cap",
            [(a, 5.0), (b, 7.0), (c, 4.0), (d, 3.0)],
            ConstraintOp::Le,
            14.0,
        );
        let opts = SolveOptions {
            relative_gap: 0.0,
            ..Default::default()
        };
        let sol = p.solve_with(&opts).unwrap();
        assert!(
            (sol.objective() - 21.0).abs() < 1e-6,
            "objective {}",
            sol.objective()
        );
        assert!(sol.value(a) < 0.5);
        assert!(sol.value(b) > 0.5);
    }

    #[test]
    fn integer_rounding_not_lp_rounding() {
        // Classic example where rounding the LP optimum is wrong:
        // max y s.t. -x + y <= 0.5, x + y <= 3.5, x,y integer >= 0.
        let mut p = Problem::new("gomory", Sense::Maximize);
        let x = p.add_int_var("x", 0.0, 10.0);
        let y = p.add_int_var("y", 0.0, 10.0);
        p.set_objective([(y, 1.0)]);
        p.add_constraint("c1", [(x, -1.0), (y, 1.0)], ConstraintOp::Le, 0.5);
        p.add_constraint("c2", [(x, 1.0), (y, 1.0)], ConstraintOp::Le, 3.5);
        let opts = SolveOptions {
            relative_gap: 0.0,
            ..Default::default()
        };
        let sol = p.solve_with(&opts).unwrap();
        assert!(
            (sol.objective() - 1.0).abs() < 1e-6,
            "objective {}",
            sol.objective()
        );
        let xv = sol.value(x);
        let yv = sol.value(y);
        assert!((yv - yv.round()).abs() < 1e-6);
        assert!((xv - xv.round()).abs() < 1e-6);
    }

    #[test]
    fn semicontinuous_zero_or_threshold() {
        // min x s.t. x >= 0, x semi-continuous with threshold 5, and x + y >= 3,
        // y <= 2. The constraint forces x >= 1, but semi-continuity pushes it to 5.
        let mut p = Problem::new("semi", Sense::Minimize);
        let x = p.add_semicontinuous_var("x", 5.0, 100.0);
        let y = p.add_var("y", 0.0, 2.0);
        p.set_objective([(x, 1.0), (y, 0.1)]);
        p.add_constraint("need", [(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 3.0);
        let sol = p.solve().unwrap();
        let xv = sol.value(x);
        assert!(
            xv <= 1e-6 || xv >= 5.0 - 1e-6,
            "semi-continuous violated: {xv}"
        );
        // Cheapest MIP-feasible point is x = 5 (y alone cannot reach 3).
        assert!((xv - 5.0).abs() < 1e-6);
    }

    #[test]
    fn semicontinuous_prefers_zero_when_possible() {
        // Same structure but y can cover the demand alone, so x should be 0.
        let mut p = Problem::new("semi0", Sense::Minimize);
        let x = p.add_semicontinuous_var("x", 5.0, 100.0);
        let y = p.add_var("y", 0.0, 10.0);
        p.set_objective([(x, 1.0), (y, 0.1)]);
        p.add_constraint("need", [(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 3.0);
        let sol = p.solve().unwrap();
        assert!(sol.value(x).abs() < 1e-6);
        assert!((sol.value(y) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_mip() {
        let mut p = Problem::new("inf", Sense::Minimize);
        let x = p.add_int_var("x", 0.0, 10.0);
        p.set_objective([(x, 1.0)]);
        p.add_constraint("a", [(x, 2.0)], ConstraintOp::Eq, 3.0); // x = 1.5 impossible
                                                                  // The LP relaxation is feasible (x=1.5) but no integer point exists.
        let err = p.solve().unwrap_err();
        assert!(
            matches!(err, LpError::NoIncumbent | LpError::Infeasible),
            "{err:?}"
        );
    }

    #[test]
    fn mixed_integer_and_continuous() {
        // min 3n + 0.5s  s.t. 10n + s >= 25, s <= 4, n integer.
        // n=3 (cost 9, s=0 fine since 30 >= 25) vs n=2,s=5 (violates s<=4). Optimal n=3.
        let mut p = Problem::new("mix", Sense::Minimize);
        let n = p.add_int_var("n", 0.0, 100.0);
        let s = p.add_var("s", 0.0, 4.0);
        p.set_objective([(n, 3.0), (s, 0.5)]);
        p.add_constraint("demand", [(n, 10.0), (s, 1.0)], ConstraintOp::Ge, 25.0);
        let sol = p.solve().unwrap();
        assert!((sol.value(n) - 3.0).abs() < 1e-6);
        assert!((sol.objective() - 9.0).abs() < 1e-4);
    }

    #[test]
    fn gap_tolerance_allows_early_stop() {
        // With a huge gap tolerance the solver may stop at the first incumbent,
        // but it must still return a feasible solution.
        let mut p = Problem::new("gap", Sense::Maximize);
        let vars: Vec<_> = (0..8)
            .map(|i| p.add_int_var(format!("x{i}"), 0.0, 1.0))
            .collect();
        p.set_objective(vars.iter().enumerate().map(|(i, &v)| (v, 1.0 + i as f64)));
        p.add_constraint(
            "cap",
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (v, 1.0 + (i % 3) as f64)),
            ConstraintOp::Le,
            6.0,
        );
        let opts = SolveOptions {
            relative_gap: 0.5,
            ..Default::default()
        };
        let sol = p.solve_with(&opts).unwrap();
        // Feasibility of the returned point.
        let used: f64 = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| sol.value(v) * (1.0 + (i % 3) as f64))
            .sum();
        assert!(used <= 6.0 + 1e-6);
    }

    #[test]
    fn stats_are_populated() {
        let mut p = Problem::new("stats", Sense::Maximize);
        let x = p.add_int_var("x", 0.0, 7.0);
        p.set_objective([(x, 1.0)]);
        p.add_constraint("c", [(x, 2.0)], ConstraintOp::Le, 9.0);
        let sol = p.solve().unwrap();
        assert!((sol.value(x) - 4.0).abs() < 1e-6);
        assert!(sol.stats().nodes_explored >= 1);
    }

    /// A MIP large enough to branch repeatedly: warm starts must fire and
    /// agree with the cold and seed-baseline paths on the final objective.
    fn branchy_problem() -> Problem {
        let mut p = Problem::new("branchy", Sense::Maximize);
        let vars: Vec<_> = (0..10)
            .map(|i| p.add_int_var(format!("x{i}"), 0.0, 5.0))
            .collect();
        p.set_objective(
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (v, 3.0 + ((i * 7) % 5) as f64 + 0.5)),
        );
        for k in 0..4 {
            p.add_constraint(
                format!("cap{k}"),
                vars.iter()
                    .enumerate()
                    .map(|(i, &v)| (v, 1.0 + ((i + k) % 4) as f64)),
                ConstraintOp::Le,
                17.0 + 2.0 * k as f64,
            );
        }
        p
    }

    #[test]
    fn warm_start_hits_are_recorded_and_objectives_agree() {
        let p = branchy_problem();
        let tight = SolveOptions {
            relative_gap: 0.0,
            ..Default::default()
        };
        let warm = p.solve_with(&tight).unwrap();
        let cold = p
            .solve_with(&SolveOptions {
                warm_start: false,
                ..tight.clone()
            })
            .unwrap();
        let baseline = p
            .solve_with(&SolveOptions {
                engine: Engine::SeedBaseline,
                ..tight.clone()
            })
            .unwrap();
        assert!((warm.objective() - cold.objective()).abs() < 1e-6);
        assert!((warm.objective() - baseline.objective()).abs() < 1e-6);
        let stats = warm.stats();
        assert!(
            stats.warm_start_hits + stats.warm_start_misses > 0,
            "no warm starts attempted: {stats:?}"
        );
        assert_eq!(cold.stats().warm_start_hits, 0);
        assert_eq!(cold.stats().warm_start_misses, 0);
    }

    #[test]
    fn heap_entry_ordering_is_total_even_for_nan() {
        let entry = |order: f64| HeapEntry {
            order,
            node: Node {
                lower: vec![],
                upper: vec![],
                bound: order,
                depth: 0,
                basis: None,
            },
        };
        let mut heap = BinaryHeap::new();
        for order in [1.0, f64::NAN, -3.0, 2.0, f64::NEG_INFINITY] {
            heap.push(entry(order));
        }
        // Smallest bound pops first; NaN sorts after every real number.
        assert_eq!(heap.pop().unwrap().order, f64::NEG_INFINITY);
        assert_eq!(heap.pop().unwrap().order, -3.0);
        assert_eq!(heap.pop().unwrap().order, 1.0);
        assert_eq!(heap.pop().unwrap().order, 2.0);
        assert!(heap.pop().unwrap().order.is_nan());
    }
}
