//! Compressed-sparse-column (CSC) matrix for the revised simplex engine.
//!
//! Conductor's planning models are ~95 % sparse: each constraint touches a
//! handful of the per-interval variables. The dense tableau engine pays
//! O(m·cols) per pivot regardless; the revised engine keeps the constraint
//! matrix in CSC form so FTRAN/BTRAN/pricing all cost O(nnz) instead.
//!
//! The matrix is assembled from a triplet scratch buffer with a counting
//! sort (no comparison sort, no per-column allocation), and every buffer is
//! retained across [`CscMatrix::assemble`] calls so rebuilding the matrix at
//! a cold fill allocates nothing after the first node.

/// A sparse matrix stored by columns: `col_ptr[j]..col_ptr[j+1]` indexes the
/// `(row_idx, values)` pairs of column `j`.
#[derive(Debug, Clone, Default)]
pub struct CscMatrix {
    rows: usize,
    cols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
    /// Scratch cursor reused by [`CscMatrix::assemble`].
    cursor: Vec<usize>,
}

impl CscMatrix {
    /// Rebuilds the matrix from `(column, row, value)` triplets (any order;
    /// duplicates are kept as separate entries, which the solve kernels
    /// accumulate naturally). Buffers are reused across calls.
    pub fn assemble(&mut self, rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) {
        self.rows = rows;
        self.cols = cols;
        self.col_ptr.clear();
        self.col_ptr.resize(cols + 1, 0);
        for &(c, _, _) in triplets {
            self.col_ptr[c + 1] += 1;
        }
        for j in 0..cols {
            self.col_ptr[j + 1] += self.col_ptr[j];
        }
        self.row_idx.clear();
        self.row_idx.resize(triplets.len(), 0);
        self.values.clear();
        self.values.resize(triplets.len(), 0.0);
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.col_ptr[..cols]);
        for &(c, r, v) in triplets {
            let at = self.cursor[c];
            self.cursor[c] += 1;
            self.row_idx[at] = r;
            self.values[at] = v;
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// `(row indices, values)` of column `j`.
    #[inline]
    pub fn col(&self, j: usize) -> (&[usize], &[f64]) {
        let (s, e) = (self.col_ptr[j], self.col_ptr[j + 1]);
        (&self.row_idx[s..e], &self.values[s..e])
    }

    /// `Σ_r y[r] · A[r, j]` — one pricing dot product.
    #[inline]
    pub fn col_dot(&self, j: usize, y: &[f64]) -> f64 {
        let (idx, val) = self.col(j);
        let mut acc = 0.0;
        for (&r, &v) in idx.iter().zip(val) {
            acc += y[r] * v;
        }
        acc
    }

    /// Scatters column `j` into the dense vector `x` (which the caller has
    /// zeroed), accumulating duplicates.
    #[inline]
    pub fn scatter_col(&self, j: usize, x: &mut [f64]) {
        let (idx, val) = self.col(j);
        for (&r, &v) in idx.iter().zip(val) {
            x[r] += v;
        }
    }

    /// `x += factor · A[:, j]` — used by residual checks.
    #[inline]
    pub fn axpy_col(&self, j: usize, factor: f64, x: &mut [f64]) {
        let (idx, val) = self.col(j);
        for (&r, &v) in idx.iter().zip(val) {
            x[r] += factor * v;
        }
    }

    /// Checkpoint encoding. `cursor` is scratch that [`CscMatrix::assemble`]
    /// fully rebuilds, so only the matrix itself travels.
    pub(crate) fn encode_state(&self, w: &mut crate::state::Writer) {
        w.usize(self.rows);
        w.usize(self.cols);
        w.vec_usize(&self.col_ptr);
        w.vec_usize(&self.row_idx);
        w.vec_f64(&self.values);
    }

    pub(crate) fn decode_state(
        r: &mut crate::state::Reader<'_>,
    ) -> Result<Self, crate::state::StateError> {
        Ok(Self {
            rows: r.usize()?,
            cols: r.usize()?,
            col_ptr: r.vec_usize()?,
            row_idx: r.vec_usize()?,
            values: r.vec_f64()?,
            cursor: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assemble_counting_sort_groups_columns() {
        let mut m = CscMatrix::default();
        // 3x3 with columns given out of order.
        let triplets = vec![
            (2usize, 0usize, 5.0),
            (0, 1, 1.0),
            (2, 2, 6.0),
            (0, 0, 2.0),
            (1, 1, 3.0),
        ];
        m.assemble(3, 3, &triplets);
        assert_eq!(m.nnz(), 5);
        let (idx, val) = m.col(0);
        assert_eq!(idx, &[1, 0]);
        assert_eq!(val, &[1.0, 2.0]);
        let (idx, val) = m.col(1);
        assert_eq!(idx, &[1]);
        assert_eq!(val, &[3.0]);
        let (idx, val) = m.col(2);
        assert_eq!(idx, &[0, 2]);
        assert_eq!(val, &[5.0, 6.0]);
    }

    #[test]
    fn dot_scatter_and_axpy_agree_with_dense() {
        let mut m = CscMatrix::default();
        m.assemble(2, 2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 3.0), (1, 1, 4.0)]);
        assert_eq!(m.col_dot(0, &[10.0, 100.0]), 10.0 + 200.0);
        let mut x = vec![0.0; 2];
        m.scatter_col(1, &mut x);
        assert_eq!(x, vec![3.0, 4.0]);
        m.axpy_col(0, -1.0, &mut x);
        assert_eq!(x, vec![2.0, 2.0]);
    }

    #[test]
    fn reassembly_reuses_buffers() {
        let mut m = CscMatrix::default();
        m.assemble(4, 2, &[(0, 3, 1.0)]);
        m.assemble(2, 3, &[(2, 1, 7.0), (0, 0, 1.0)]);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.col(2), (&[1usize][..], &[7.0][..]));
        assert!(m.col(1).0.is_empty());
    }
}
