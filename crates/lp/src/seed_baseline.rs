//! The *seed* simplex implementation, preserved verbatim as a measurable
//! baseline for the rearchitected solver in [`crate::simplex`].
//!
//! This is the straightforward `Vec<Vec<f64>>` tableau with a full
//! standard-form rebuild on every call. `SolveOptions::seed_baseline`
//! routes branch & bound through it so benchmarks (and the committed
//! `BENCH_solver.json`) can report an honest before/after comparison on
//! identical search trees. Do not optimize this module — its value is
//! being the fixed reference point.
#![allow(clippy::needless_range_loop)]

use crate::error::LpError;
use crate::problem::{ConstraintOp, Problem, Sense};

/// Numerical tolerances of the solver.
const PIVOT_TOL: f64 = 1e-9;
const COST_TOL: f64 = 1e-9;
const FEAS_TOL: f64 = 1e-7;

/// Result of solving one LP relaxation.
#[derive(Debug, Clone)]
pub struct BaselineResult {
    /// Values of the *original* problem variables, indexed by `VarId::index`.
    pub values: Vec<f64>,
    /// Objective value in the original sense (including the objective's constant term).
    pub objective: f64,
    /// Simplex iterations used (both phases).
    pub iterations: usize,
}

/// How an original variable was mapped into standard form.
#[derive(Debug, Clone, Copy)]
enum VarMap {
    /// `x = lower + x_std[col]`
    Shifted { col: usize, lower: f64 },
    /// `x = upper - x_std[col]` (used when only the upper bound is finite)
    Mirrored { col: usize, upper: f64 },
    /// `x = x_std[pos] - x_std[neg]` (free variable)
    Split { pos: usize, neg: usize },
    /// `x = value` (fixed variable, `lower == upper`)
    Fixed { value: f64 },
}

struct StandardForm {
    /// Dense row-major constraint matrix, `rows x cols`.
    a: Vec<Vec<f64>>,
    /// Right-hand sides, all non-negative.
    b: Vec<f64>,
    /// Phase-2 objective coefficients per column (minimization).
    c: Vec<f64>,
    /// Column index at which artificial variables start.
    artificial_start: usize,
    cols: usize,
    var_map: Vec<VarMap>,
    /// Constant added to the (minimization) objective by shifts and the
    /// objective's own constant term.
    obj_constant: f64,
    /// `+1` when the original problem minimizes, `-1` when it maximizes.
    sense_factor: f64,
    /// Initial basic column per row (the slack for `<=` rows, the artificial
    /// otherwise), giving phase 1 a head start.
    basis_hint: Vec<usize>,
}

/// Solves the continuous relaxation of `problem` using the supplied bound
/// overrides (`lower[i]`, `upper[i]` replace the declared bounds of variable
/// `i`; semi-continuous variables are treated as continuous within those
/// bounds).
pub fn solve_relaxation(
    problem: &Problem,
    lower: &[f64],
    upper: &[f64],
    max_iterations: usize,
) -> Result<BaselineResult, LpError> {
    // Fast consistency check on the overrides (branching can make them cross).
    for i in 0..problem.num_vars() {
        if lower[i] > upper[i] + FEAS_TOL {
            return Err(LpError::Infeasible);
        }
    }

    let sf = build_standard_form(problem, lower, upper)?;
    let mut tableau = Tableau::new(&sf);
    let iterations = tableau.solve(max_iterations)?;
    let std_values = tableau.extract_values();

    // Map standard-form values back onto the original variables.
    let n = problem.num_vars();
    let mut values = vec![0.0; n];
    for (i, map) in sf.var_map.iter().enumerate() {
        values[i] = match *map {
            VarMap::Shifted { col, lower } => lower + std_values[col],
            VarMap::Mirrored { col, upper } => upper - std_values[col],
            VarMap::Split { pos, neg } => std_values[pos] - std_values[neg],
            VarMap::Fixed { value } => value,
        };
    }

    // Objective in the original sense.
    let min_obj = tableau.objective_value() + sf.obj_constant;
    let objective = min_obj * sf.sense_factor;

    Ok(BaselineResult {
        values,
        objective,
        iterations,
    })
}

fn build_standard_form(
    problem: &Problem,
    lower: &[f64],
    upper: &[f64],
) -> Result<StandardForm, LpError> {
    let sense_factor = match problem.sense() {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };

    let n = problem.num_vars();
    let mut var_map = Vec::with_capacity(n);
    let mut next_col = 0usize;
    // Extra `x' <= span` rows for doubly-bounded variables.
    let mut ub_rows: Vec<(usize, f64)> = Vec::new();

    for i in 0..n {
        let (lo, hi) = (lower[i], upper[i]);
        let map = if lo.is_finite() && hi.is_finite() && (hi - lo).abs() <= 1e-12 {
            VarMap::Fixed { value: lo }
        } else if lo.is_finite() {
            let col = next_col;
            next_col += 1;
            if hi.is_finite() {
                ub_rows.push((col, hi - lo));
            }
            VarMap::Shifted { col, lower: lo }
        } else if hi.is_finite() {
            let col = next_col;
            next_col += 1;
            VarMap::Mirrored { col, upper: hi }
        } else {
            let pos = next_col;
            let neg = next_col + 1;
            next_col += 2;
            VarMap::Split { pos, neg }
        };
        var_map.push(map);
    }

    let num_struct = next_col;

    // Assemble rows: user constraints first, then upper-bound rows.
    struct Row {
        coeffs: Vec<(usize, f64)>,
        op: ConstraintOp,
        rhs: f64,
    }
    let mut rows: Vec<Row> = Vec::with_capacity(problem.num_constraints() + ub_rows.len());

    for c in problem.constraints() {
        let mut rhs = c.rhs - c.expr.constant();
        let mut coeffs: Vec<(usize, f64)> = Vec::with_capacity(c.expr.len());
        for (var, coef) in c.expr.terms() {
            match var_map[var.index()] {
                VarMap::Shifted { col, lower } => {
                    rhs -= coef * lower;
                    push_coeff(&mut coeffs, col, coef);
                }
                VarMap::Mirrored { col, upper } => {
                    rhs -= coef * upper;
                    push_coeff(&mut coeffs, col, -coef);
                }
                VarMap::Split { pos, neg } => {
                    push_coeff(&mut coeffs, pos, coef);
                    push_coeff(&mut coeffs, neg, -coef);
                }
                VarMap::Fixed { value } => {
                    rhs -= coef * value;
                }
            }
        }
        rows.push(Row {
            coeffs,
            op: c.op,
            rhs,
        });
    }
    for &(col, span) in &ub_rows {
        rows.push(Row {
            coeffs: vec![(col, 1.0)],
            op: ConstraintOp::Le,
            rhs: span,
        });
    }

    // Objective (minimization form).
    let mut c_struct = vec![0.0; num_struct];
    let mut obj_constant = problem.objective().constant() * sense_factor;
    for (var, coef) in problem.objective().terms() {
        let coef = coef * sense_factor;
        match var_map[var.index()] {
            VarMap::Shifted { col, lower } => {
                obj_constant += coef * lower;
                c_struct[col] += coef;
            }
            VarMap::Mirrored { col, upper } => {
                obj_constant += coef * upper;
                c_struct[col] -= coef;
            }
            VarMap::Split { pos, neg } => {
                c_struct[pos] += coef;
                c_struct[neg] -= coef;
            }
            VarMap::Fixed { value } => {
                obj_constant += coef * value;
            }
        }
    }

    // After normalizing RHS signs, `Le` rows get a slack that can serve as the
    // initial basic variable; only `Ge`/`Eq` rows need an artificial column.
    let m = rows.len();
    let mut num_slack = 0usize;
    let mut num_artificial = 0usize;
    let mut effective_ops = Vec::with_capacity(m);
    for r in &rows {
        let flip = r.rhs < 0.0;
        let effective_op = match (r.op, flip) {
            (ConstraintOp::Le, false) | (ConstraintOp::Ge, true) => ConstraintOp::Le,
            (ConstraintOp::Ge, false) | (ConstraintOp::Le, true) => ConstraintOp::Ge,
            (ConstraintOp::Eq, _) => ConstraintOp::Eq,
        };
        match effective_op {
            ConstraintOp::Le => num_slack += 1,
            ConstraintOp::Ge => {
                num_slack += 1;
                num_artificial += 1;
            }
            ConstraintOp::Eq => num_artificial += 1,
        }
        effective_ops.push((flip, effective_op));
    }
    let artificial_start = num_struct + num_slack;
    let cols = artificial_start + num_artificial;

    let mut a = vec![vec![0.0; cols]; m];
    let mut b = vec![0.0; m];
    let mut c = vec![0.0; cols];
    c[..num_struct].copy_from_slice(&c_struct);
    let mut basis_hint = vec![0usize; m];

    let mut slack_cursor = num_struct;
    let mut artificial_cursor = artificial_start;
    for (ri, row) in rows.iter().enumerate() {
        let (flip, effective_op) = effective_ops[ri];
        b[ri] = if flip { -row.rhs } else { row.rhs };
        let sign = if flip { -1.0 } else { 1.0 };
        for &(col, coef) in &row.coeffs {
            a[ri][col] += sign * coef;
        }
        match effective_op {
            ConstraintOp::Le => {
                a[ri][slack_cursor] = 1.0;
                // The slack is a valid starting basic variable: no artificial needed.
                basis_hint[ri] = slack_cursor;
                slack_cursor += 1;
            }
            ConstraintOp::Ge => {
                a[ri][slack_cursor] = -1.0;
                slack_cursor += 1;
                a[ri][artificial_cursor] = 1.0;
                basis_hint[ri] = artificial_cursor;
                artificial_cursor += 1;
            }
            ConstraintOp::Eq => {
                a[ri][artificial_cursor] = 1.0;
                basis_hint[ri] = artificial_cursor;
                artificial_cursor += 1;
            }
        }
    }

    Ok(StandardForm {
        a,
        b,
        c,
        artificial_start,
        cols,
        var_map,
        obj_constant,
        sense_factor,
        basis_hint,
    })
}

fn push_coeff(coeffs: &mut Vec<(usize, f64)>, col: usize, coef: f64) {
    if let Some(entry) = coeffs.iter_mut().find(|(c, _)| *c == col) {
        entry.1 += coef;
    } else {
        coeffs.push((col, coef));
    }
}

/// Dense tableau with an explicit basis and an incrementally-maintained
/// reduced-cost row.
struct Tableau<'a> {
    sf: &'a StandardForm,
    /// `rows x (cols + 1)`; the last column is the current RHS.
    t: Vec<Vec<f64>>,
    /// Basic column for each row.
    basis: Vec<usize>,
    /// `is_basic[j]` mirrors membership of `j` in `basis`.
    is_basic: Vec<bool>,
    /// Reduced costs for the current phase's cost vector (`cols` entries).
    cost_row: Vec<f64>,
    /// Current phase-2 objective value (minimization, without constants).
    obj: f64,
}

impl<'a> Tableau<'a> {
    fn new(sf: &'a StandardForm) -> Tableau<'a> {
        let m = sf.a.len();
        let cols = sf.cols;
        let mut t = Vec::with_capacity(m);
        let mut basis = Vec::with_capacity(m);
        let mut is_basic = vec![false; cols];
        for (ri, row) in sf.a.iter().enumerate() {
            let mut tr = Vec::with_capacity(cols + 1);
            tr.extend_from_slice(row);
            tr.push(sf.b[ri]);
            t.push(tr);
            basis.push(sf.basis_hint[ri]);
            is_basic[sf.basis_hint[ri]] = true;
        }
        Tableau {
            sf,
            t,
            basis,
            is_basic,
            cost_row: vec![0.0; cols],
            obj: 0.0,
        }
    }

    /// Rebuilds the reduced-cost row `d_j = c_j - c_B^T * column_j` for a new
    /// cost vector (done once per phase; pivots keep it up to date after that).
    fn reset_cost_row(&mut self, cost: &[f64]) {
        let cols = self.sf.cols;
        self.cost_row.copy_from_slice(&cost[..cols]);
        for (i, row) in self.t.iter().enumerate() {
            let cb = cost[self.basis[i]];
            if cb != 0.0 {
                for j in 0..cols {
                    self.cost_row[j] -= cb * row[j];
                }
            }
        }
    }

    /// Runs phase 1 and phase 2; returns total iteration count.
    fn solve(&mut self, max_iterations: usize) -> Result<usize, LpError> {
        let m = self.t.len();
        if m == 0 {
            // No constraints: the optimum is every variable at its lower bound
            // (all standard-form columns at zero) unless some column could
            // still improve the objective, in which case the LP is unbounded.
            if self.sf.c.iter().any(|&c| c < -COST_TOL) {
                return Err(LpError::Unbounded);
            }
            return Ok(0);
        }
        let cols = self.sf.cols;

        // ---- Phase 1: minimize the sum of artificial variables.
        let mut phase1_cost = vec![0.0; cols];
        for j in self.sf.artificial_start..cols {
            phase1_cost[j] = 1.0;
        }
        let it1 = self.optimize(&phase1_cost, max_iterations, true)?;
        let phase1_obj = self.objective_for(&phase1_cost);
        if phase1_obj > FEAS_TOL * (1.0 + self.sf.b.iter().fold(0.0f64, |a, &x| a.max(x.abs()))) {
            return Err(LpError::Infeasible);
        }
        // Drive any artificial variables still basic (at zero) out of the basis.
        self.expel_artificials();

        // ---- Phase 2: minimize the user objective.
        let cost = self.sf.c.clone();
        let it2 = self.optimize(&cost, max_iterations.saturating_sub(it1), false)?;
        self.obj = self.objective_for(&cost);
        Ok(it1 + it2)
    }

    /// Primal simplex iterations for the given cost vector.
    ///
    /// `allow_artificials` controls whether artificial columns may enter the
    /// basis (phase 1 only).
    fn optimize(
        &mut self,
        cost: &[f64],
        max_iterations: usize,
        allow_artificials: bool,
    ) -> Result<usize, LpError> {
        let m = self.t.len();
        let cols = self.sf.cols;
        let enterable_end = if allow_artificials {
            cols
        } else {
            self.sf.artificial_start
        };
        // Switch to Bland's rule after this many iterations to guarantee termination.
        let bland_threshold = 4 * (m + cols);

        self.reset_cost_row(cost);

        let mut iterations = 0usize;
        loop {
            if iterations >= max_iterations {
                return Err(LpError::IterationLimit { iterations });
            }
            // Entering column: most negative reduced cost (Dantzig) or first
            // negative (Bland, anti-cycling).
            let mut entering: Option<usize> = None;
            let mut best = -COST_TOL;
            let use_bland = iterations >= bland_threshold;
            for j in 0..enterable_end {
                if self.is_basic[j] {
                    continue;
                }
                let d = self.cost_row[j];
                if use_bland {
                    if d < -COST_TOL {
                        entering = Some(j);
                        break;
                    }
                } else if d < best {
                    best = d;
                    entering = Some(j);
                }
            }
            let Some(enter) = entering else {
                return Ok(iterations);
            };

            // Ratio test.
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for (i, row) in self.t.iter().enumerate() {
                let a = row[enter];
                if a > PIVOT_TOL {
                    let ratio = row[cols] / a;
                    if ratio < best_ratio - 1e-12
                        || (ratio < best_ratio + 1e-12
                            && leave.is_some_and(|l| self.basis[i] < self.basis[l]))
                    {
                        best_ratio = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(leave) = leave else {
                return Err(LpError::Unbounded);
            };

            self.pivot(leave, enter);
            iterations += 1;
        }
    }

    /// Gauss-Jordan pivot on `(row, col)`; also updates the reduced-cost row.
    fn pivot(&mut self, row: usize, col: usize) {
        let cols = self.sf.cols;
        let pivot = self.t[row][col];
        debug_assert!(pivot.abs() > PIVOT_TOL);
        let inv = 1.0 / pivot;
        for v in self.t[row].iter_mut() {
            *v *= inv;
        }
        let pivot_row = self.t[row].clone();
        for (i, r) in self.t.iter_mut().enumerate() {
            if i == row {
                continue;
            }
            let factor = r[col];
            if factor.abs() > 0.0 {
                for j in 0..=cols {
                    r[j] -= factor * pivot_row[j];
                }
                // Clean tiny numerical noise on the pivot column.
                r[col] = 0.0;
            }
        }
        let d = self.cost_row[col];
        if d != 0.0 {
            for j in 0..cols {
                self.cost_row[j] -= d * pivot_row[j];
            }
            self.cost_row[col] = 0.0;
        }
        self.is_basic[self.basis[row]] = false;
        self.is_basic[col] = true;
        self.basis[row] = col;
    }

    /// After phase 1, pivot basic artificials (value ≈ 0) out of the basis,
    /// or leave them if their row is entirely zero (redundant constraint).
    fn expel_artificials(&mut self) {
        let m = self.t.len();
        for i in 0..m {
            if self.basis[i] < self.sf.artificial_start {
                continue;
            }
            // Find any non-artificial column with a usable pivot in this row.
            let target = (0..self.sf.artificial_start)
                .find(|&j| self.t[i][j].abs() > 1e-7 && !self.is_basic[j]);
            if let Some(j) = target {
                self.pivot(i, j);
            }
        }
    }

    fn objective_for(&self, cost: &[f64]) -> f64 {
        let cols = self.sf.cols;
        self.t
            .iter()
            .enumerate()
            .map(|(i, row)| cost[self.basis[i]] * row[cols])
            .sum()
    }

    fn objective_value(&self) -> f64 {
        self.obj
    }

    /// Values of all standard-form columns (non-basic columns are zero).
    fn extract_values(&self) -> Vec<f64> {
        let cols = self.sf.cols;
        let mut values = vec![0.0; cols];
        for (i, &bj) in self.basis.iter().enumerate() {
            values[bj] = self.t[i][cols].max(0.0);
        }
        values
    }
}
