//! Byte-exact serialization of the solver's warm-start state.
//!
//! A [`crate::branch_bound::SolveContext`] carries a factorized LU basis
//! whose floating-point content is the *accumulated* result of pivots and
//! Forrest–Tomlin updates — refactorizing the same basis from scratch lands
//! on bitwise-different values. Checkpoint/resume of a fleet therefore
//! cannot reconstruct this state from the problem; it has to transport the
//! exact bytes. This module provides the little-endian [`Writer`]/[`Reader`]
//! pair the solver structs use to encode themselves (`f64`s travel as raw
//! bit patterns, so non-finite and signed-zero values survive untouched),
//! plus the hex framing that lets the blob ride inside a JSON string.

use std::fmt;

/// A solver-state blob could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateError {
    message: String,
}

impl StateError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "solver state: {}", self.message)
    }
}

impl std::error::Error for StateError {}

/// Append-only little-endian byte sink.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Raw bit pattern — non-finite values and `-0.0` round-trip exactly.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Length-prefixed sequence; `f` encodes each item.
    pub fn seq<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Self, &T)) {
        self.usize(items.len());
        for item in items {
            f(self, item);
        }
    }

    pub fn vec_f64(&mut self, items: &[f64]) {
        self.seq(items, |w, &v| w.f64(v));
    }

    pub fn vec_usize(&mut self, items: &[usize]) {
        self.seq(items, |w, &v| w.usize(v));
    }

    pub fn vec_bool(&mut self, items: &[bool]) {
        self.seq(items, |w, &v| w.bool(v));
    }

    /// Sparse-entry list: `(index, value)` pairs.
    pub fn vec_idx_f64(&mut self, items: &[(usize, f64)]) {
        self.seq(items, |w, &(i, v)| {
            w.usize(i);
            w.f64(v);
        });
    }

    pub fn into_hex(self) -> String {
        to_hex(&self.buf)
    }
}

/// Cursor over a decoded byte buffer; every accessor checks bounds.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StateError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| StateError::new("truncated blob"))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub fn u8(&mut self) -> Result<u8, StateError> {
        Ok(self.take(1)?[0])
    }

    pub fn bool(&mut self) -> Result<bool, StateError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(StateError::new(format!("invalid bool byte {other}"))),
        }
    }

    pub fn u64(&mut self) -> Result<u64, StateError> {
        let bytes = self.take(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    pub fn usize(&mut self) -> Result<usize, StateError> {
        usize::try_from(self.u64()?).map_err(|_| StateError::new("usize overflow"))
    }

    pub fn f64(&mut self) -> Result<f64, StateError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Length-prefixed sequence; `f` decodes each item.
    pub fn seq<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, StateError>,
    ) -> Result<Vec<T>, StateError> {
        let n = self.usize()?;
        // A corrupt length must not trigger an absurd allocation; the
        // per-item reads will hit "truncated blob" long before 2^20 items.
        let mut items = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            items.push(f(self)?);
        }
        Ok(items)
    }

    pub fn vec_f64(&mut self) -> Result<Vec<f64>, StateError> {
        self.seq(|r| r.f64())
    }

    pub fn vec_usize(&mut self) -> Result<Vec<usize>, StateError> {
        self.seq(|r| r.usize())
    }

    pub fn vec_bool(&mut self) -> Result<Vec<bool>, StateError> {
        self.seq(|r| r.bool())
    }

    pub fn vec_idx_f64(&mut self) -> Result<Vec<(usize, f64)>, StateError> {
        self.seq(|r| Ok((r.usize()?, r.f64()?)))
    }

    /// Asserts every byte was consumed — a decoder that stops early read a
    /// blob written by a different layout.
    pub fn finish(self) -> Result<(), StateError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(StateError::new(format!(
                "{} trailing bytes",
                self.buf.len() - self.pos
            )))
        }
    }
}

pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
        s.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble"));
    }
    s
}

pub fn from_hex(s: &str) -> Result<Vec<u8>, StateError> {
    if !s.len().is_multiple_of(2) {
        return Err(StateError::new("odd-length hex blob"));
    }
    let digit = |c: char| {
        c.to_digit(16)
            .ok_or_else(|| StateError::new(format!("invalid hex digit {c:?}")))
    };
    let mut bytes = Vec::with_capacity(s.len() / 2);
    let mut chars = s.chars();
    while let (Some(hi), Some(lo)) = (chars.next(), chars.next()) {
        bytes.push((digit(hi)? as u8) << 4 | digit(lo)? as u8);
    }
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives_and_sequences() {
        let mut w = Writer::new();
        w.u8(7);
        w.bool(true);
        w.u64(u64::MAX - 3);
        w.usize(42);
        w.f64(-0.0);
        w.f64(f64::NEG_INFINITY);
        w.f64(f64::NAN);
        w.vec_f64(&[1.5, -2.25]);
        w.vec_usize(&[0, usize::MAX]);
        w.vec_bool(&[true, false]);
        w.vec_idx_f64(&[(3, 0.1)]);
        let hex = w.into_hex();

        let bytes = from_hex(&hex).unwrap();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.usize().unwrap(), 42);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64().unwrap(), f64::NEG_INFINITY);
        assert!(r.f64().unwrap().is_nan());
        assert_eq!(r.vec_f64().unwrap(), vec![1.5, -2.25]);
        assert_eq!(r.vec_usize().unwrap(), vec![0, usize::MAX]);
        assert_eq!(r.vec_bool().unwrap(), vec![true, false]);
        assert_eq!(r.vec_idx_f64().unwrap(), vec![(3, 0.1)]);
        r.finish().unwrap();
    }

    #[test]
    fn corrupt_blobs_error_instead_of_panicking() {
        assert!(from_hex("abc").is_err());
        assert!(from_hex("zz").is_err());
        let mut r = Reader::new(&[1, 2]);
        assert!(r.u64().is_err());
        let mut r = Reader::new(&[9]);
        assert!(r.bool().is_err());
        // A huge claimed length fails on truncation, not allocation.
        let mut w = Writer::new();
        w.usize(usize::MAX / 2);
        let bytes = from_hex(&w.into_hex()).unwrap();
        let mut r = Reader::new(&bytes);
        assert!(r.vec_f64().is_err());
        // Unconsumed bytes are an error.
        let mut w = Writer::new();
        w.u64(5);
        let bytes = from_hex(&w.into_hex()).unwrap();
        let mut r = Reader::new(&bytes);
        r.u8().unwrap();
        assert!(r.finish().is_err());
    }
}
