//! # conductor-lp
//!
//! A self-contained linear / mixed-integer programming solver used as the
//! optimization substrate of the Conductor reproduction. The original paper
//! dispatches its dynamic linear programs to CPLEX; this crate provides the
//! subset of functionality Conductor's models actually need:
//!
//! * continuous variables with lower/upper bounds,
//! * **integer** variables (node counts),
//! * **semi-continuous** variables (the Map→Reduce phase barrier of §4.3),
//! * linear constraints (`<=`, `>=`, `=`),
//! * linear objectives (minimize or maximize),
//! * three selectable LP-relaxation engines — the preserved seed tableau,
//!   a flat dense tableau, and the default **sparse revised simplex** with
//!   an LU-factorized basis (see [`problem::Engine`]) — and
//! * branch & bound with a relative gap tolerance, node limit and wall-clock
//!   time limit (mirroring the paper's "bound the solving time to three
//!   minutes and use the best solution computed so far", §4.8).
//!
//! The API is deliberately small and builder-style:
//!
//! ```
//! use conductor_lp::{Problem, Sense, ConstraintOp};
//!
//! let mut p = Problem::new("diet", Sense::Minimize);
//! let x = p.add_var("x", 0.0, f64::INFINITY);
//! let y = p.add_var("y", 0.0, f64::INFINITY);
//! p.set_objective([(x, 2.0), (y, 3.0)]);
//! p.add_constraint("protein", [(x, 1.0), (y, 2.0)], ConstraintOp::Ge, 4.0);
//! p.add_constraint("budget", [(x, 1.0), (y, 1.0)], ConstraintOp::Le, 10.0);
//! let sol = p.solve().unwrap();
//! assert!((sol.objective() - 6.0).abs() < 1e-6);
//! assert!((sol.value(y) - 2.0).abs() < 1e-6);
//! ```

pub mod branch_bound;
pub mod dense;
pub mod error;
pub mod expr;
pub mod lu;
pub mod problem;
pub mod revised;
pub mod seed_baseline;
pub mod simplex;
pub mod solution;
pub mod sparse;
pub mod state;

pub use branch_bound::SolveContext;
pub use error::LpError;
pub use expr::{LinExpr, VarId};
pub use problem::{ConstraintOp, Engine, Problem, Sense, SolveOptions, VarKind};
pub use revised::RevisedWorkspace;
pub use simplex::{SimplexWorkspace, StandardFormSkeleton, WarmStart};
pub use solution::{Solution, SolveStats, SolveStatus};
pub use state::StateError;
