//! The [`Problem`] builder: variables, constraints, objective, solve options.

use crate::branch_bound::{self};
use crate::error::LpError;
use crate::expr::{LinExpr, VarId};
use crate::solution::Solution;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Direction of optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Sense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// The integrality class of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum VarKind {
    /// Any value within the bounds.
    Continuous,
    /// Integer values within the bounds.
    Integer,
    /// Either exactly zero or a value in `[threshold, upper]`.
    ///
    /// This is the construct the Conductor model uses to force the Reduce
    /// phase to start only after the *full* Map output is available (§4.3).
    SemiContinuous {
        /// Minimum non-zero value.
        threshold: f64,
    },
}

/// Relational operator of a constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConstraintOp {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

/// A decision variable record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Variable {
    /// Human-readable name used in diagnostics.
    pub name: String,
    /// Lower bound (may be `-inf`).
    pub lower: f64,
    /// Upper bound (may be `+inf`).
    pub upper: f64,
    /// Integrality class.
    pub kind: VarKind,
}

/// A linear constraint `expr op rhs`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Constraint {
    /// Human-readable name used in diagnostics.
    pub name: String,
    /// Left-hand side (its constant term is folded into the RHS at solve time).
    pub expr: LinExpr,
    /// Relational operator.
    pub op: ConstraintOp,
    /// Right-hand side.
    pub rhs: f64,
}

/// Which LP-relaxation engine backs the solve.
///
/// All three engines accept the same problems and agree on statuses and
/// objectives (the cross-engine equivalence battery in `tests/properties.rs`
/// enforces this); they differ in how each branch & bound node's relaxation
/// is solved:
///
/// * [`Engine::SeedBaseline`] — the straightforward `Vec<Vec<f64>>` tableau
///   preserved from the seed for honest before/after benchmarks.
/// * [`Engine::DenseTableau`] — the flat contiguous tableau with embedded
///   basis inverse and warm-started RHS re-derivation (PR 1).
/// * [`Engine::RevisedSparse`] — sparse revised simplex: CSC matrix,
///   LU-factorized basis with eta-file updates and periodic
///   refactorization, sparse FTRAN/BTRAN, partial pricing. The default:
///   Conductor models are ~95 % sparse, so per-pivot cost drops from
///   O(m·cols) to O(nnz).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Engine {
    /// The preserved seed implementation (`crate::seed_baseline`).
    SeedBaseline,
    /// The flat dense tableau simplex (`crate::simplex`).
    DenseTableau,
    /// The sparse revised simplex (`crate::revised`).
    #[default]
    RevisedSparse,
}

/// Knobs bounding the solve, mirroring the paper's CPLEX configuration
/// (1 % optimality gap, three-minute wall-clock cap; §4.8 and §6.6).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolveOptions {
    /// Relative MIP gap at which branch & bound stops (`|best - bound| / |best|`).
    pub relative_gap: f64,
    /// Hard limit on explored branch & bound nodes.
    pub max_nodes: usize,
    /// Hard limit on simplex iterations per LP relaxation.
    pub max_simplex_iterations: usize,
    /// Wall-clock limit for the whole solve.
    pub time_limit: Duration,
    /// Integrality tolerance: values within this distance of an integer count as integral.
    pub integrality_tol: f64,
    /// Warm-start each branch & bound node from its parent's final simplex
    /// basis (skipping phase 1 when the basis is still feasible). On by
    /// default; disable to measure the cold path or to rule the machinery
    /// out while debugging.
    #[serde(default = "default_true")]
    pub warm_start: bool,
    /// Which LP-relaxation engine to use. The seed and dense engines stay
    /// selectable so benchmarks can report honest engine-vs-engine
    /// comparisons; production paths use the default revised engine.
    #[serde(default)]
    pub engine: Engine,
    /// Bounded-variable simplex (revised engine only): handle finite upper
    /// bounds implicitly via a nonbasic-at-upper status and a bound-flip
    /// ratio test instead of materializing a span row per bounded variable
    /// in the standard form. Roughly halves the row count on the
    /// integer-heavy admission models, and turns branch & bound's bound
    /// overrides into status flips instead of RHS patches. Default off so
    /// existing bitwise pins keep anchoring the legacy path; the benchmarks
    /// and the cross-engine battery exercise both settings.
    #[serde(default)]
    pub bounded_variables: bool,
    /// Forrest–Tomlin basis updates (revised engine only): update the U
    /// factor in place at each pivot instead of appending product-form eta
    /// vectors, keeping FTRAN/BTRAN cost flat between refactorizations.
    /// Default off (see `bounded_variables` for the determinism story).
    #[serde(default)]
    pub forrest_tomlin: bool,
    /// Dual steepest-edge pricing (revised engine only) for the dual-repair
    /// path every warm-started node runs: pick the leaving row by the
    /// steepest-edge criterion with Forrest–Goldfarb weight updates instead
    /// of the most-violated rule. Fewer, better pivots on re-solve-dominated
    /// workloads. Default off (see `bounded_variables`).
    #[serde(default)]
    pub dual_steepest_edge: bool,
}

fn default_true() -> bool {
    true
}

impl Default for SolveOptions {
    fn default() -> Self {
        Self {
            relative_gap: 0.01,
            max_nodes: 50_000,
            max_simplex_iterations: 200_000,
            time_limit: Duration::from_secs(180),
            integrality_tol: 1e-6,
            warm_start: true,
            engine: Engine::default(),
            bounded_variables: false,
            forrest_tomlin: false,
            dual_steepest_edge: false,
        }
    }
}

/// A mixed-integer linear program under construction.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Problem {
    name: String,
    sense: Sense,
    variables: Vec<Variable>,
    constraints: Vec<Constraint>,
    objective: LinExpr,
}

impl Problem {
    /// Creates an empty problem.
    pub fn new(name: impl Into<String>, sense: Sense) -> Self {
        Self {
            name: name.into(),
            sense,
            variables: Vec::new(),
            constraints: Vec::new(),
            objective: LinExpr::new(),
        }
    }

    /// Problem name (used in diagnostics only).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Direction of optimization.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Adds a continuous variable with the given bounds and returns its handle.
    pub fn add_var(&mut self, name: impl Into<String>, lower: f64, upper: f64) -> VarId {
        self.push_var(name.into(), lower, upper, VarKind::Continuous)
    }

    /// Adds an integer variable with the given bounds.
    pub fn add_int_var(&mut self, name: impl Into<String>, lower: f64, upper: f64) -> VarId {
        self.push_var(name.into(), lower, upper, VarKind::Integer)
    }

    /// Adds a semi-continuous variable: its value is either `0` or in
    /// `[threshold, upper]`.
    pub fn add_semicontinuous_var(
        &mut self,
        name: impl Into<String>,
        threshold: f64,
        upper: f64,
    ) -> VarId {
        self.push_var(
            name.into(),
            0.0,
            upper,
            VarKind::SemiContinuous { threshold },
        )
    }

    fn push_var(&mut self, name: String, lower: f64, upper: f64, kind: VarKind) -> VarId {
        let id = VarId(self.variables.len());
        self.variables.push(Variable {
            name,
            lower,
            upper,
            kind,
        });
        id
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.variables.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Read access to a variable record.
    pub fn var(&self, id: VarId) -> &Variable {
        &self.variables[id.0]
    }

    /// Iterates all variable records in index order.
    pub fn variables(&self) -> &[Variable] {
        &self.variables
    }

    /// Iterates all constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Tightens (replaces) the bounds of an existing variable.
    ///
    /// Used by branch & bound and by Conductor's re-planning step, which pins
    /// already-elapsed intervals of the plan to their observed values.
    pub fn set_bounds(&mut self, id: VarId, lower: f64, upper: f64) {
        let v = &mut self.variables[id.0];
        v.lower = lower;
        v.upper = upper;
    }

    /// Sets the objective from an iterator of `(variable, coefficient)` terms.
    pub fn set_objective<I: IntoIterator<Item = (VarId, f64)>>(&mut self, terms: I) {
        self.objective = LinExpr::from_terms(terms);
    }

    /// Sets the objective from a pre-built expression (its constant term is
    /// added to the reported objective value).
    pub fn set_objective_expr(&mut self, expr: LinExpr) {
        self.objective = expr;
    }

    /// The current objective expression.
    pub fn objective(&self) -> &LinExpr {
        &self.objective
    }

    /// Adds a constraint built from `(variable, coefficient)` terms.
    pub fn add_constraint<I: IntoIterator<Item = (VarId, f64)>>(
        &mut self,
        name: impl Into<String>,
        terms: I,
        op: ConstraintOp,
        rhs: f64,
    ) -> usize {
        self.add_constraint_expr(name, LinExpr::from_terms(terms), op, rhs)
    }

    /// Adds a constraint from a pre-built expression. The expression's
    /// constant term is moved to the right-hand side.
    pub fn add_constraint_expr(
        &mut self,
        name: impl Into<String>,
        expr: LinExpr,
        op: ConstraintOp,
        rhs: f64,
    ) -> usize {
        let idx = self.constraints.len();
        self.constraints.push(Constraint {
            name: name.into(),
            expr,
            op,
            rhs,
        });
        idx
    }

    /// Validates the model: bounds are consistent, every referenced variable
    /// exists and every coefficient is finite.
    pub fn validate(&self) -> Result<(), LpError> {
        for v in &self.variables {
            if v.lower.is_nan() || v.upper.is_nan() || v.lower > v.upper {
                return Err(LpError::InvalidBounds {
                    name: v.name.clone(),
                    lower: v.lower,
                    upper: v.upper,
                });
            }
            if let VarKind::SemiContinuous { threshold } = v.kind {
                if !threshold.is_finite() || threshold < 0.0 {
                    return Err(LpError::InvalidBounds {
                        name: v.name.clone(),
                        lower: threshold,
                        upper: v.upper,
                    });
                }
            }
        }
        let n = self.variables.len();
        if !self.objective.is_finite() {
            return Err(LpError::NonFiniteCoefficient {
                context: "objective".into(),
            });
        }
        if let Some(max) = self.objective.max_var_index() {
            if max >= n {
                return Err(LpError::UnknownVariable { index: max });
            }
        }
        for c in &self.constraints {
            if !c.expr.is_finite() || !c.rhs.is_finite() {
                return Err(LpError::NonFiniteCoefficient {
                    context: format!("constraint `{}`", c.name),
                });
            }
            if let Some(max) = c.expr.max_var_index() {
                if max >= n {
                    return Err(LpError::UnknownVariable { index: max });
                }
            }
        }
        Ok(())
    }

    /// Solves with default options.
    pub fn solve(&self) -> Result<Solution, LpError> {
        self.solve_with(&SolveOptions::default())
    }

    /// Solves with explicit options. Dispatches to plain simplex when no
    /// integer or semi-continuous variables are present, and to branch &
    /// bound otherwise.
    pub fn solve_with(&self, options: &SolveOptions) -> Result<Solution, LpError> {
        self.validate()?;
        branch_bound::solve(self, options)
    }

    /// Solves with explicit options through a [`branch_bound::SolveContext`],
    /// sharing one skeleton/factorization with the context's previous solves
    /// and warm-starting the root from the last final basis.
    pub fn solve_with_context(
        &self,
        options: &SolveOptions,
        ctx: &mut branch_bound::SolveContext,
    ) -> Result<Solution, LpError> {
        self.validate()?;
        branch_bound::solve_with_context(self, options, ctx)
    }

    /// `true` if any variable requires branch & bound (integer or semi-continuous).
    pub fn is_mip(&self) -> bool {
        self.variables
            .iter()
            .any(|v| !matches!(v.kind, VarKind::Continuous))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_counts() {
        let mut p = Problem::new("t", Sense::Minimize);
        let x = p.add_var("x", 0.0, 1.0);
        let y = p.add_int_var("y", 0.0, 10.0);
        let z = p.add_semicontinuous_var("z", 2.0, 8.0);
        assert_eq!(p.num_vars(), 3);
        assert_eq!(x.index(), 0);
        assert_eq!(y.index(), 1);
        assert_eq!(z.index(), 2);
        assert!(p.is_mip());
        p.add_constraint("c", [(x, 1.0), (y, 1.0)], ConstraintOp::Le, 5.0);
        assert_eq!(p.num_constraints(), 1);
        assert_eq!(p.var(z).kind, VarKind::SemiContinuous { threshold: 2.0 });
    }

    #[test]
    fn pure_lp_is_not_mip() {
        let mut p = Problem::new("t", Sense::Maximize);
        p.add_var("x", 0.0, 1.0);
        assert!(!p.is_mip());
    }

    #[test]
    fn validate_rejects_bad_bounds() {
        let mut p = Problem::new("t", Sense::Minimize);
        p.add_var("x", 2.0, 1.0);
        assert!(matches!(p.validate(), Err(LpError::InvalidBounds { .. })));
    }

    #[test]
    fn validate_rejects_nan_coefficients() {
        let mut p = Problem::new("t", Sense::Minimize);
        let x = p.add_var("x", 0.0, 1.0);
        p.add_constraint("c", [(x, f64::NAN)], ConstraintOp::Le, 1.0);
        assert!(matches!(
            p.validate(),
            Err(LpError::NonFiniteCoefficient { .. })
        ));
    }

    #[test]
    fn validate_rejects_foreign_variable() {
        let mut p = Problem::new("a", Sense::Minimize);
        let x = p.add_var("x", 0.0, 1.0);
        let mut q = Problem::new("b", Sense::Minimize);
        // `x` does not exist in `q`.
        q.set_objective([(x, 1.0)]);
        assert!(matches!(q.validate(), Err(LpError::UnknownVariable { .. })));
    }

    #[test]
    fn set_bounds_replaces() {
        let mut p = Problem::new("t", Sense::Minimize);
        let x = p.add_var("x", 0.0, 10.0);
        p.set_bounds(x, 3.0, 4.0);
        assert_eq!(p.var(x).lower, 3.0);
        assert_eq!(p.var(x).upper, 4.0);
    }

    #[test]
    fn default_options_match_paper_configuration() {
        let o = SolveOptions::default();
        assert!((o.relative_gap - 0.01).abs() < 1e-12);
        assert_eq!(o.time_limit, Duration::from_secs(180));
    }
}
