//! Solve results: status, variable values, statistics.

use crate::expr::VarId;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Quality of a returned solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolveStatus {
    /// Proven optimal (within the configured relative gap for MIPs).
    Optimal,
    /// A feasible solution was found but optimality was not proven before a
    /// node/time limit was hit — the paper's "best solution computed so far"
    /// behaviour (§4.8).
    Feasible,
}

/// Counters describing the work performed by the solver.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SolveStats {
    /// Total simplex iterations across all LP relaxations.
    pub simplex_iterations: usize,
    /// Branch & bound nodes explored (1 for a pure LP).
    pub nodes_explored: usize,
    /// Wall-clock time spent solving.
    pub solve_time: Duration,
    /// Final relative MIP gap (0 for pure LPs / proven-optimal MIPs).
    pub relative_gap: f64,
    /// Nodes whose parent basis was installed and primal feasible, skipping
    /// simplex phase 1 entirely.
    #[serde(default)]
    pub warm_start_hits: usize,
    /// Nodes that attempted a warm start but fell back to the cold two-phase
    /// path (parent basis infeasible or not installable).
    #[serde(default)]
    pub warm_start_misses: usize,
    /// LU factorizations of the simplex basis (revised engine only; 0 for
    /// the tableau engines, which carry the basis inverse in the tableau).
    #[serde(default)]
    pub basis_factorizations: usize,
    /// The subset of `basis_factorizations` triggered mid-stream by the
    /// eta-file limit or a drift check — the revised engine's refresh
    /// policy, replacing the dense engine's blind `REUSE_REFRESH` refill.
    #[serde(default)]
    pub basis_refactorizations: usize,
    /// Bound flips performed by the bounded-variable ratio test: the
    /// entering variable hit its own opposite bound before any basic
    /// variable blocked, so its status flipped with no basis change.
    /// Always 0 unless `SolveOptions::bounded_variables` is on.
    #[serde(default)]
    pub bound_flips: usize,
    /// Forrest–Tomlin factor updates applied in place of product-form eta
    /// appends. Always 0 unless `SolveOptions::forrest_tomlin` is on.
    #[serde(default)]
    pub ft_updates: usize,
}

impl SolveStats {
    /// Fraction of warm-start attempts that skipped phase 1 (`NaN`-free:
    /// returns 0 when no warm start was attempted).
    pub fn warm_start_rate(&self) -> f64 {
        let attempts = self.warm_start_hits + self.warm_start_misses;
        if attempts == 0 {
            0.0
        } else {
            self.warm_start_hits as f64 / attempts as f64
        }
    }
}

/// The result of a successful solve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Solution {
    status: SolveStatus,
    objective: f64,
    values: Vec<f64>,
    stats: SolveStats,
}

impl Solution {
    pub(crate) fn new(
        status: SolveStatus,
        objective: f64,
        values: Vec<f64>,
        stats: SolveStats,
    ) -> Self {
        Self {
            status,
            objective,
            values,
            stats,
        }
    }

    /// Solution quality.
    pub fn status(&self) -> SolveStatus {
        self.status
    }

    /// Objective value in the problem's original sense.
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Value of a variable. Panics if the handle does not belong to the
    /// problem this solution was produced from.
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.index()]
    }

    /// Dense vector of values indexed by `VarId::index`.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Solver work counters.
    pub fn stats(&self) -> &SolveStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_roundtrip() {
        let sol = Solution::new(
            SolveStatus::Optimal,
            42.0,
            vec![1.0, 2.0, 3.0],
            SolveStats {
                simplex_iterations: 7,
                nodes_explored: 1,
                ..Default::default()
            },
        );
        assert_eq!(sol.status(), SolveStatus::Optimal);
        assert_eq!(sol.objective(), 42.0);
        assert_eq!(sol.value(VarId(1)), 2.0);
        assert_eq!(sol.values().len(), 3);
        assert_eq!(sol.stats().simplex_iterations, 7);
    }
}
