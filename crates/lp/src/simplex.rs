//! Two-phase dense tableau simplex for LP relaxations.
//!
//! The solver works on a *standard form* rewrite of the user problem:
//! every variable is shifted/split so that it is non-negative, finite upper
//! bounds become extra rows, and each row receives a slack, surplus and/or
//! artificial column. Phase 1 minimizes the sum of artificials to find a
//! feasible basis; Phase 2 optimizes the user objective.
//!
//! Branch & bound calls [`solve_relaxation`] with per-variable bound
//! overrides, so branching never mutates the user's [`Problem`].

use crate::error::LpError;
use crate::problem::{ConstraintOp, Problem, Sense};

/// Numerical tolerances of the solver.
const PIVOT_TOL: f64 = 1e-9;
const COST_TOL: f64 = 1e-9;
const FEAS_TOL: f64 = 1e-7;

/// Result of solving one LP relaxation.
#[derive(Debug, Clone)]
pub struct SimplexResult {
    /// Values of the *original* problem variables, indexed by `VarId::index`.
    pub values: Vec<f64>,
    /// Objective value in the original sense (including the objective's constant term).
    pub objective: f64,
    /// Simplex iterations used (both phases).
    pub iterations: usize,
}

/// How an original variable was mapped into standard form.
#[derive(Debug, Clone, Copy)]
enum VarMap {
    /// `x = lower + x_std[col]`
    Shifted { col: usize, lower: f64 },
    /// `x = upper - x_std[col]` (used when only the upper bound is finite)
    Mirrored { col: usize, upper: f64 },
    /// `x = x_std[pos] - x_std[neg]` (free variable)
    Split { pos: usize, neg: usize },
    /// `x = value` (fixed variable, `lower == upper`)
    Fixed { value: f64 },
}

struct StandardForm {
    /// Dense row-major constraint matrix, `rows x cols`.
    a: Vec<Vec<f64>>,
    /// Right-hand sides, all non-negative.
    b: Vec<f64>,
    /// Phase-2 objective coefficients per column (minimization).
    c: Vec<f64>,
    /// Column index at which artificial variables start.
    artificial_start: usize,
    cols: usize,
    var_map: Vec<VarMap>,
    /// Constant added to the (minimization) objective by shifts and the
    /// objective's own constant term.
    obj_constant: f64,
    /// `+1` when the original problem minimizes, `-1` when it maximizes.
    sense_factor: f64,
    /// Initial basic column per row (the slack for `<=` rows, the artificial
    /// otherwise), giving phase 1 a head start.
    basis_hint: Vec<usize>,
}

/// Solves the continuous relaxation of `problem` using the supplied bound
/// overrides (`lower[i]`, `upper[i]` replace the declared bounds of variable
/// `i`; semi-continuous variables are treated as continuous within those
/// bounds).
pub fn solve_relaxation(
    problem: &Problem,
    lower: &[f64],
    upper: &[f64],
    max_iterations: usize,
) -> Result<SimplexResult, LpError> {
    // Fast consistency check on the overrides (branching can make them cross).
    for (i, v) in problem.variables().iter().enumerate() {
        let _ = v;
        if lower[i] > upper[i] + FEAS_TOL {
            return Err(LpError::Infeasible);
        }
    }

    let sf = build_standard_form(problem, lower, upper)?;
    let mut tableau = Tableau::new(&sf);
    let iterations = tableau.solve(max_iterations)?;
    let std_values = tableau.extract_values();

    // Map standard-form values back onto the original variables.
    let n = problem.num_vars();
    let mut values = vec![0.0; n];
    for (i, map) in sf.var_map.iter().enumerate() {
        values[i] = match *map {
            VarMap::Shifted { col, lower } => lower + std_values[col],
            VarMap::Mirrored { col, upper } => upper - std_values[col],
            VarMap::Split { pos, neg } => std_values[pos] - std_values[neg],
            VarMap::Fixed { value } => value,
        };
    }

    // Objective in the original sense.
    let min_obj = tableau.objective_value() + sf.obj_constant;
    let objective = min_obj * sf.sense_factor;

    Ok(SimplexResult { values, objective, iterations })
}

fn build_standard_form(
    problem: &Problem,
    lower: &[f64],
    upper: &[f64],
) -> Result<StandardForm, LpError> {
    let sense_factor = match problem.sense() {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };

    let n = problem.num_vars();
    let mut var_map = Vec::with_capacity(n);
    let mut next_col = 0usize;
    // Extra `x' <= span` rows for doubly-bounded variables.
    let mut ub_rows: Vec<(usize, f64)> = Vec::new();

    for i in 0..n {
        let (lo, hi) = (lower[i], upper[i]);
        let map = if lo.is_finite() && hi.is_finite() && (hi - lo).abs() <= 1e-12 {
            VarMap::Fixed { value: lo }
        } else if lo.is_finite() {
            let col = next_col;
            next_col += 1;
            if hi.is_finite() {
                ub_rows.push((col, hi - lo));
            }
            VarMap::Shifted { col, lower: lo }
        } else if hi.is_finite() {
            let col = next_col;
            next_col += 1;
            VarMap::Mirrored { col, upper: hi }
        } else {
            let pos = next_col;
            let neg = next_col + 1;
            next_col += 2;
            VarMap::Split { pos, neg }
        };
        var_map.push(map);
    }

    let num_struct = next_col;

    // Assemble rows: user constraints first, then upper-bound rows.
    struct Row {
        coeffs: Vec<(usize, f64)>,
        op: ConstraintOp,
        rhs: f64,
    }
    let mut rows: Vec<Row> = Vec::with_capacity(problem.num_constraints() + ub_rows.len());

    for c in problem.constraints() {
        let mut rhs = c.rhs - c.expr.constant();
        let mut coeffs: Vec<(usize, f64)> = Vec::with_capacity(c.expr.len());
        for (var, coef) in c.expr.terms() {
            match var_map[var.index()] {
                VarMap::Shifted { col, lower } => {
                    rhs -= coef * lower;
                    push_coeff(&mut coeffs, col, coef);
                }
                VarMap::Mirrored { col, upper } => {
                    rhs -= coef * upper;
                    push_coeff(&mut coeffs, col, -coef);
                }
                VarMap::Split { pos, neg } => {
                    push_coeff(&mut coeffs, pos, coef);
                    push_coeff(&mut coeffs, neg, -coef);
                }
                VarMap::Fixed { value } => {
                    rhs -= coef * value;
                }
            }
        }
        rows.push(Row { coeffs, op: c.op, rhs });
    }
    for &(col, span) in &ub_rows {
        rows.push(Row { coeffs: vec![(col, 1.0)], op: ConstraintOp::Le, rhs: span });
    }

    // Objective (minimization form).
    let mut c_struct = vec![0.0; num_struct];
    let mut obj_constant = problem.objective().constant() * sense_factor;
    for (var, coef) in problem.objective().terms() {
        let coef = coef * sense_factor;
        match var_map[var.index()] {
            VarMap::Shifted { col, lower } => {
                obj_constant += coef * lower;
                c_struct[col] += coef;
            }
            VarMap::Mirrored { col, upper } => {
                obj_constant += coef * upper;
                c_struct[col] -= coef;
            }
            VarMap::Split { pos, neg } => {
                c_struct[pos] += coef;
                c_struct[neg] -= coef;
            }
            VarMap::Fixed { value } => {
                obj_constant += coef * value;
            }
        }
    }

    // After normalizing RHS signs, `Le` rows get a slack that can serve as the
    // initial basic variable; only `Ge`/`Eq` rows need an artificial column.
    let m = rows.len();
    let mut num_slack = 0usize;
    let mut num_artificial = 0usize;
    let mut effective_ops = Vec::with_capacity(m);
    for r in &rows {
        let flip = r.rhs < 0.0;
        let effective_op = match (r.op, flip) {
            (ConstraintOp::Le, false) | (ConstraintOp::Ge, true) => ConstraintOp::Le,
            (ConstraintOp::Ge, false) | (ConstraintOp::Le, true) => ConstraintOp::Ge,
            (ConstraintOp::Eq, _) => ConstraintOp::Eq,
        };
        match effective_op {
            ConstraintOp::Le => num_slack += 1,
            ConstraintOp::Ge => {
                num_slack += 1;
                num_artificial += 1;
            }
            ConstraintOp::Eq => num_artificial += 1,
        }
        effective_ops.push((flip, effective_op));
    }
    let artificial_start = num_struct + num_slack;
    let cols = artificial_start + num_artificial;

    let mut a = vec![vec![0.0; cols]; m];
    let mut b = vec![0.0; m];
    let mut c = vec![0.0; cols];
    c[..num_struct].copy_from_slice(&c_struct);
    let mut basis_hint = vec![0usize; m];

    let mut slack_cursor = num_struct;
    let mut artificial_cursor = artificial_start;
    for (ri, row) in rows.iter().enumerate() {
        let (flip, effective_op) = effective_ops[ri];
        b[ri] = if flip { -row.rhs } else { row.rhs };
        let sign = if flip { -1.0 } else { 1.0 };
        for &(col, coef) in &row.coeffs {
            a[ri][col] += sign * coef;
        }
        match effective_op {
            ConstraintOp::Le => {
                a[ri][slack_cursor] = 1.0;
                // The slack is a valid starting basic variable: no artificial needed.
                basis_hint[ri] = slack_cursor;
                slack_cursor += 1;
            }
            ConstraintOp::Ge => {
                a[ri][slack_cursor] = -1.0;
                slack_cursor += 1;
                a[ri][artificial_cursor] = 1.0;
                basis_hint[ri] = artificial_cursor;
                artificial_cursor += 1;
            }
            ConstraintOp::Eq => {
                a[ri][artificial_cursor] = 1.0;
                basis_hint[ri] = artificial_cursor;
                artificial_cursor += 1;
            }
        }
    }

    Ok(StandardForm { a, b, c, artificial_start, cols, var_map, obj_constant, sense_factor, basis_hint })
}

fn push_coeff(coeffs: &mut Vec<(usize, f64)>, col: usize, coef: f64) {
    if let Some(entry) = coeffs.iter_mut().find(|(c, _)| *c == col) {
        entry.1 += coef;
    } else {
        coeffs.push((col, coef));
    }
}

/// Dense tableau with an explicit basis and an incrementally-maintained
/// reduced-cost row.
struct Tableau<'a> {
    sf: &'a StandardForm,
    /// `rows x (cols + 1)`; the last column is the current RHS.
    t: Vec<Vec<f64>>,
    /// Basic column for each row.
    basis: Vec<usize>,
    /// `is_basic[j]` mirrors membership of `j` in `basis`.
    is_basic: Vec<bool>,
    /// Reduced costs for the current phase's cost vector (`cols` entries).
    cost_row: Vec<f64>,
    /// Current phase-2 objective value (minimization, without constants).
    obj: f64,
}

impl<'a> Tableau<'a> {
    fn new(sf: &'a StandardForm) -> Tableau<'a> {
        let m = sf.a.len();
        let cols = sf.cols;
        let mut t = Vec::with_capacity(m);
        let mut basis = Vec::with_capacity(m);
        let mut is_basic = vec![false; cols];
        for (ri, row) in sf.a.iter().enumerate() {
            let mut tr = Vec::with_capacity(cols + 1);
            tr.extend_from_slice(row);
            tr.push(sf.b[ri]);
            t.push(tr);
            basis.push(sf.basis_hint[ri]);
            is_basic[sf.basis_hint[ri]] = true;
        }
        Tableau { sf, t, basis, is_basic, cost_row: vec![0.0; cols], obj: 0.0 }
    }

    /// Rebuilds the reduced-cost row `d_j = c_j - c_B^T * column_j` for a new
    /// cost vector (done once per phase; pivots keep it up to date after that).
    fn reset_cost_row(&mut self, cost: &[f64]) {
        let cols = self.sf.cols;
        self.cost_row.copy_from_slice(&cost[..cols]);
        for (i, row) in self.t.iter().enumerate() {
            let cb = cost[self.basis[i]];
            if cb != 0.0 {
                for j in 0..cols {
                    self.cost_row[j] -= cb * row[j];
                }
            }
        }
    }

    /// Runs phase 1 and phase 2; returns total iteration count.
    fn solve(&mut self, max_iterations: usize) -> Result<usize, LpError> {
        let m = self.t.len();
        if m == 0 {
            // No constraints: the optimum is every variable at its lower bound
            // (all standard-form columns at zero) unless some column could
            // still improve the objective, in which case the LP is unbounded.
            if self.sf.c.iter().any(|&c| c < -COST_TOL) {
                return Err(LpError::Unbounded);
            }
            return Ok(0);
        }
        let cols = self.sf.cols;

        // ---- Phase 1: minimize the sum of artificial variables.
        let mut phase1_cost = vec![0.0; cols];
        for j in self.sf.artificial_start..cols {
            phase1_cost[j] = 1.0;
        }
        let it1 = self.optimize(&phase1_cost, max_iterations, true)?;
        let phase1_obj = self.objective_for(&phase1_cost);
        if phase1_obj > FEAS_TOL * (1.0 + self.sf.b.iter().fold(0.0f64, |a, &x| a.max(x.abs()))) {
            return Err(LpError::Infeasible);
        }
        // Drive any artificial variables still basic (at zero) out of the basis.
        self.expel_artificials();

        // ---- Phase 2: minimize the user objective.
        let cost = self.sf.c.clone();
        let it2 = self.optimize(&cost, max_iterations.saturating_sub(it1), false)?;
        self.obj = self.objective_for(&cost);
        Ok(it1 + it2)
    }

    /// Primal simplex iterations for the given cost vector.
    ///
    /// `allow_artificials` controls whether artificial columns may enter the
    /// basis (phase 1 only).
    fn optimize(
        &mut self,
        cost: &[f64],
        max_iterations: usize,
        allow_artificials: bool,
    ) -> Result<usize, LpError> {
        let m = self.t.len();
        let cols = self.sf.cols;
        let enterable_end = if allow_artificials { cols } else { self.sf.artificial_start };
        // Switch to Bland's rule after this many iterations to guarantee termination.
        let bland_threshold = 4 * (m + cols);

        self.reset_cost_row(cost);

        let mut iterations = 0usize;
        loop {
            if iterations >= max_iterations {
                return Err(LpError::IterationLimit { iterations });
            }
            // Entering column: most negative reduced cost (Dantzig) or first
            // negative (Bland, anti-cycling).
            let mut entering: Option<usize> = None;
            let mut best = -COST_TOL;
            let use_bland = iterations >= bland_threshold;
            for j in 0..enterable_end {
                if self.is_basic[j] {
                    continue;
                }
                let d = self.cost_row[j];
                if use_bland {
                    if d < -COST_TOL {
                        entering = Some(j);
                        break;
                    }
                } else if d < best {
                    best = d;
                    entering = Some(j);
                }
            }
            let Some(enter) = entering else {
                return Ok(iterations);
            };

            // Ratio test.
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for (i, row) in self.t.iter().enumerate() {
                let a = row[enter];
                if a > PIVOT_TOL {
                    let ratio = row[cols] / a;
                    if ratio < best_ratio - 1e-12
                        || (ratio < best_ratio + 1e-12
                            && leave.is_some_and(|l| self.basis[i] < self.basis[l]))
                    {
                        best_ratio = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(leave) = leave else {
                return Err(LpError::Unbounded);
            };

            self.pivot(leave, enter);
            iterations += 1;
        }
    }

    /// Gauss-Jordan pivot on `(row, col)`; also updates the reduced-cost row.
    fn pivot(&mut self, row: usize, col: usize) {
        let cols = self.sf.cols;
        let pivot = self.t[row][col];
        debug_assert!(pivot.abs() > PIVOT_TOL);
        let inv = 1.0 / pivot;
        for v in self.t[row].iter_mut() {
            *v *= inv;
        }
        let pivot_row = self.t[row].clone();
        for (i, r) in self.t.iter_mut().enumerate() {
            if i == row {
                continue;
            }
            let factor = r[col];
            if factor.abs() > 0.0 {
                for j in 0..=cols {
                    r[j] -= factor * pivot_row[j];
                }
                // Clean tiny numerical noise on the pivot column.
                r[col] = 0.0;
            }
        }
        let d = self.cost_row[col];
        if d != 0.0 {
            for j in 0..cols {
                self.cost_row[j] -= d * pivot_row[j];
            }
            self.cost_row[col] = 0.0;
        }
        self.is_basic[self.basis[row]] = false;
        self.is_basic[col] = true;
        self.basis[row] = col;
    }

    /// After phase 1, pivot basic artificials (value ≈ 0) out of the basis,
    /// or leave them if their row is entirely zero (redundant constraint).
    fn expel_artificials(&mut self) {
        let m = self.t.len();
        for i in 0..m {
            if self.basis[i] < self.sf.artificial_start {
                continue;
            }
            // Find any non-artificial column with a usable pivot in this row.
            let target = (0..self.sf.artificial_start)
                .find(|&j| self.t[i][j].abs() > 1e-7 && !self.is_basic[j]);
            if let Some(j) = target {
                self.pivot(i, j);
            }
        }
    }

    fn objective_for(&self, cost: &[f64]) -> f64 {
        let cols = self.sf.cols;
        self.t
            .iter()
            .enumerate()
            .map(|(i, row)| cost[self.basis[i]] * row[cols])
            .sum()
    }

    fn objective_value(&self) -> f64 {
        self.obj
    }

    /// Values of all standard-form columns (non-basic columns are zero).
    fn extract_values(&self) -> Vec<f64> {
        let cols = self.sf.cols;
        let mut values = vec![0.0; cols];
        for (i, &bj) in self.basis.iter().enumerate() {
            values[bj] = self.t[i][cols].max(0.0);
        }
        values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::problem::{ConstraintOp, Problem, Sense};

    fn solve(p: &Problem) -> SimplexResult {
        let lower: Vec<f64> = p.variables().iter().map(|v| v.lower).collect();
        let upper: Vec<f64> = p.variables().iter().map(|v| v.upper).collect();
        solve_relaxation(p, &lower, &upper, 100_000).unwrap()
    }

    #[test]
    fn simple_minimization() {
        // min 2x + 3y  s.t. x + 2y >= 4, x + y <= 10, x,y >= 0  -> x=0, y=2, obj=6
        let mut p = Problem::new("t", Sense::Minimize);
        let x = p.add_var("x", 0.0, f64::INFINITY);
        let y = p.add_var("y", 0.0, f64::INFINITY);
        p.set_objective([(x, 2.0), (y, 3.0)]);
        p.add_constraint("c1", [(x, 1.0), (y, 2.0)], ConstraintOp::Ge, 4.0);
        p.add_constraint("c2", [(x, 1.0), (y, 1.0)], ConstraintOp::Le, 10.0);
        let r = solve(&p);
        assert!((r.objective - 6.0).abs() < 1e-6, "objective {}", r.objective);
        assert!((r.values[y.index()] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn simple_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> obj 36 at (2, 6)
        let mut p = Problem::new("t", Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY);
        let y = p.add_var("y", 0.0, f64::INFINITY);
        p.set_objective([(x, 3.0), (y, 5.0)]);
        p.add_constraint("c1", [(x, 1.0)], ConstraintOp::Le, 4.0);
        p.add_constraint("c2", [(y, 2.0)], ConstraintOp::Le, 12.0);
        p.add_constraint("c3", [(x, 3.0), (y, 2.0)], ConstraintOp::Le, 18.0);
        let r = solve(&p);
        assert!((r.objective - 36.0).abs() < 1e-6);
        assert!((r.values[x.index()] - 2.0).abs() < 1e-6);
        assert!((r.values[y.index()] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_problem() {
        let mut p = Problem::new("t", Sense::Minimize);
        let x = p.add_var("x", 0.0, f64::INFINITY);
        p.set_objective([(x, 1.0)]);
        p.add_constraint("c1", [(x, 1.0)], ConstraintOp::Le, 1.0);
        p.add_constraint("c2", [(x, 1.0)], ConstraintOp::Ge, 2.0);
        let lower = vec![0.0];
        let upper = vec![f64::INFINITY];
        assert!(matches!(
            solve_relaxation(&p, &lower, &upper, 10_000),
            Err(LpError::Infeasible)
        ));
    }

    #[test]
    fn unbounded_problem() {
        let mut p = Problem::new("t", Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY);
        p.set_objective([(x, 1.0)]);
        let lower = vec![0.0];
        let upper = vec![f64::INFINITY];
        assert!(matches!(
            solve_relaxation(&p, &lower, &upper, 10_000),
            Err(LpError::Unbounded)
        ));
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + y = 5, x - y = 1 -> x=3, y=2
        let mut p = Problem::new("t", Sense::Minimize);
        let x = p.add_var("x", 0.0, f64::INFINITY);
        let y = p.add_var("y", 0.0, f64::INFINITY);
        p.set_objective([(x, 1.0), (y, 1.0)]);
        p.add_constraint("sum", [(x, 1.0), (y, 1.0)], ConstraintOp::Eq, 5.0);
        p.add_constraint("diff", [(x, 1.0), (y, -1.0)], ConstraintOp::Eq, 1.0);
        let r = solve(&p);
        assert!((r.values[x.index()] - 3.0).abs() < 1e-6);
        assert!((r.values[y.index()] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn variable_upper_bounds_are_respected() {
        // max x + y with x <= 2 (bound), y <= 3 (bound), x + y <= 4
        let mut p = Problem::new("t", Sense::Maximize);
        let x = p.add_var("x", 0.0, 2.0);
        let y = p.add_var("y", 0.0, 3.0);
        p.set_objective([(x, 1.0), (y, 1.0)]);
        p.add_constraint("cap", [(x, 1.0), (y, 1.0)], ConstraintOp::Le, 4.0);
        let r = solve(&p);
        assert!((r.objective - 4.0).abs() < 1e-6);
        assert!(r.values[x.index()] <= 2.0 + 1e-9);
        assert!(r.values[y.index()] <= 3.0 + 1e-9);
    }

    #[test]
    fn nonzero_lower_bounds_shift_correctly() {
        // min x + y with x >= 2, y >= 3, x + y >= 7 -> obj 7
        let mut p = Problem::new("t", Sense::Minimize);
        let x = p.add_var("x", 2.0, f64::INFINITY);
        let y = p.add_var("y", 3.0, f64::INFINITY);
        p.set_objective([(x, 1.0), (y, 1.0)]);
        p.add_constraint("c", [(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 7.0);
        let r = solve(&p);
        assert!((r.objective - 7.0).abs() < 1e-6);
        assert!(r.values[x.index()] >= 2.0 - 1e-9);
        assert!(r.values[y.index()] >= 3.0 - 1e-9);
    }

    #[test]
    fn free_variables_can_go_negative() {
        // min x s.t. x >= -5 expressed via a constraint on a free variable.
        let mut p = Problem::new("t", Sense::Minimize);
        let x = p.add_var("x", f64::NEG_INFINITY, f64::INFINITY);
        p.set_objective([(x, 1.0)]);
        p.add_constraint("lb", [(x, 1.0)], ConstraintOp::Ge, -5.0);
        let r = solve(&p);
        assert!((r.objective + 5.0).abs() < 1e-6);
        assert!((r.values[x.index()] + 5.0).abs() < 1e-6);
    }

    #[test]
    fn mirrored_variable_only_upper_bound() {
        // max x with x <= 9 and no lower bound, but constraint x >= 1.
        let mut p = Problem::new("t", Sense::Maximize);
        let x = p.add_var("x", f64::NEG_INFINITY, 9.0);
        p.set_objective([(x, 1.0)]);
        p.add_constraint("lb", [(x, 1.0)], ConstraintOp::Ge, 1.0);
        let r = solve(&p);
        assert!((r.objective - 9.0).abs() < 1e-6);
    }

    #[test]
    fn fixed_variable_is_substituted() {
        let mut p = Problem::new("t", Sense::Minimize);
        let x = p.add_var("x", 4.0, 4.0);
        let y = p.add_var("y", 0.0, f64::INFINITY);
        p.set_objective([(x, 1.0), (y, 1.0)]);
        p.add_constraint("c", [(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 10.0);
        let r = solve(&p);
        assert!((r.values[x.index()] - 4.0).abs() < 1e-9);
        assert!((r.values[y.index()] - 6.0).abs() < 1e-6);
        assert!((r.objective - 10.0).abs() < 1e-6);
    }

    #[test]
    fn constant_in_constraint_expr_moves_to_rhs() {
        // (x + 1) <= 3  =>  x <= 2
        let mut p = Problem::new("t", Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY);
        p.set_objective([(x, 1.0)]);
        let mut e = LinExpr::from(x);
        e.add_constant(1.0);
        p.add_constraint_expr("c", e, ConstraintOp::Le, 3.0);
        let r = solve(&p);
        assert!((r.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn objective_constant_is_reported() {
        let mut p = Problem::new("t", Sense::Minimize);
        let x = p.add_var("x", 0.0, f64::INFINITY);
        let mut obj = LinExpr::from(x);
        obj.add_constant(100.0);
        p.set_objective_expr(obj);
        p.add_constraint("c", [(x, 1.0)], ConstraintOp::Ge, 1.0);
        let r = solve(&p);
        assert!((r.objective - 101.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degenerate LP; Bland fallback must prevent cycling.
        let mut p = Problem::new("t", Sense::Minimize);
        let x1 = p.add_var("x1", 0.0, f64::INFINITY);
        let x2 = p.add_var("x2", 0.0, f64::INFINITY);
        let x3 = p.add_var("x3", 0.0, f64::INFINITY);
        let x4 = p.add_var("x4", 0.0, f64::INFINITY);
        p.set_objective([(x1, -0.75), (x2, 150.0), (x3, -0.02), (x4, 6.0)]);
        p.add_constraint("c1", [(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)], ConstraintOp::Le, 0.0);
        p.add_constraint("c2", [(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)], ConstraintOp::Le, 0.0);
        p.add_constraint("c3", [(x3, 1.0)], ConstraintOp::Le, 1.0);
        let r = solve(&p);
        assert!((r.objective + 0.05).abs() < 1e-6, "objective {}", r.objective);
    }

    #[test]
    fn redundant_equalities_are_handled() {
        // x + y = 2 stated twice; still solvable.
        let mut p = Problem::new("t", Sense::Minimize);
        let x = p.add_var("x", 0.0, f64::INFINITY);
        let y = p.add_var("y", 0.0, f64::INFINITY);
        p.set_objective([(x, 1.0), (y, 2.0)]);
        p.add_constraint("c1", [(x, 1.0), (y, 1.0)], ConstraintOp::Eq, 2.0);
        p.add_constraint("c2", [(x, 1.0), (y, 1.0)], ConstraintOp::Eq, 2.0);
        let r = solve(&p);
        assert!((r.objective - 2.0).abs() < 1e-6);
        assert!((r.values[x.index()] - 2.0).abs() < 1e-6);
    }
}
