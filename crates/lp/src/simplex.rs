//! Two-phase dense tableau simplex for LP relaxations, rebuilt for
//! throughput.
//!
//! The solver works on a *standard form* rewrite of the user problem:
//! every variable is shifted/split so that it is non-negative, finite upper
//! bounds become extra rows, and each row receives a slack and/or artificial
//! column. Phase 1 minimizes the sum of artificials to find a feasible
//! basis; Phase 2 optimizes the user objective.
//!
//! Three things distinguish this implementation from the straightforward one
//! preserved in [`crate::seed_baseline`]:
//!
//! 1. **Flat tableau** — the tableau lives in one contiguous
//!    [`DenseMatrix`] (stride = `cols + 1`, last column is the RHS), so the
//!    pivot elimination loop is a linear scan the compiler vectorizes, and
//!    the buffer is reused across solves.
//! 2. **Standard-form skeleton** — [`StandardFormSkeleton`] performs the
//!    expensive standard-form rewrite (variable classification, sparse row
//!    scatter layout, slack/artificial column layout, objective mapping)
//!    *once per problem*. Branch & bound nodes only patch shifts and
//!    right-hand sides into the reused workspace, instead of re-walking
//!    every constraint expression per node.
//! 3. **Warm starts** — a node can seed the solve with a basis hint
//!    ([`solve_with_skeleton`]'s `basis_hint`, the parent's final basis in
//!    branch & bound). Because the objective never changes between nodes,
//!    the workspace's last optimal tableau stays *dual feasible* for every
//!    sibling node: the solver re-derives the node's right-hand side through
//!    the basis inverse embedded in the slack/artificial columns and repairs
//!    any negative entries with a handful of dual simplex pivots, skipping
//!    phase 1 (and usually phase 2) entirely. When the repair cannot be
//!    completed the solver falls back to the cold two-phase path. The
//!    outcome is reported in [`SimplexResult::warm`] so callers can track
//!    hit rates.
//!
//! The column layout is *stable across nodes of one skeleton*: branching
//! only tightens variable bounds, which the skeleton expresses as per-node
//! shifts and span-row RHS patches (a span row `x' + s = upper - lower`
//! exists for every branchable variable; an unbounded side simply makes the
//! RHS `+inf`, which the ratio test ignores). Stability is what makes a
//! parent basis directly meaningful to its children.

use crate::dense::DenseMatrix;
use crate::error::LpError;
use crate::problem::{ConstraintOp, Problem, Sense, VarKind};

/// Numerical tolerances of the solver.
pub(crate) const PIVOT_TOL: f64 = 1e-9;
pub(crate) const COST_TOL: f64 = 1e-9;
pub(crate) const FEAS_TOL: f64 = 1e-7;
/// Minimum pivot magnitude accepted by the dual-repair ratio test. Stricter
/// than `PIVOT_TOL`: reused tableaus accumulate drift across nodes, and a
/// tiny dual pivot amplifies it by its reciprocal.
pub(crate) const DUAL_PIVOT_TOL: f64 = 1e-7;
/// Reused tableau entries above this magnitude mean the basis inverse has
/// degraded too far to trust; the solve falls back to a cold refill.
pub(crate) const REUSE_HEALTH_LIMIT: f64 = 1e10;
/// Warm-started solves reuse the previous tableau; after this many
/// consecutive reuses a cold refill bounds accumulated floating-point drift.
const REUSE_REFRESH: usize = 32;
/// Cap on dual-simplex repair pivots before giving up on a warm start.
pub(crate) fn repair_pivot_cap(rows: usize, cols: usize) -> usize {
    4 * (rows + cols)
}

/// How a solve obtained its starting basis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarmStart {
    /// No basis hint was supplied (or no reusable tableau existed yet); the
    /// classic two-phase path ran.
    Cold,
    /// The previous optimal tableau was reused (RHS re-derived, dual-simplex
    /// repaired if needed): phase 1 was skipped.
    Hit,
    /// A warm start was attempted but could not be completed; the solver
    /// fell back to the cold two-phase path.
    Miss,
}

/// Result of solving one LP relaxation.
#[derive(Debug, Clone)]
pub struct SimplexResult {
    /// Values of the *original* problem variables, indexed by `VarId::index`.
    pub values: Vec<f64>,
    /// Objective value in the original sense (including the objective's constant term).
    pub objective: f64,
    /// Simplex iterations used (both phases, plus warm-start installation pivots).
    pub iterations: usize,
    /// Final basis (basic column per row) — feed to the next
    /// [`solve_with_skeleton`] call as a warm-start hint.
    pub basis: Vec<usize>,
    /// Whether this solve warm-started from a parent basis.
    pub warm: WarmStart,
}

/// How an original variable was mapped into standard form.
///
/// The classification is decided once per skeleton from the *root* bounds
/// and stays fixed for every node solved against that skeleton.
#[derive(Debug, Clone, Copy)]
pub(crate) enum VarMap {
    /// `x = shift + x_std[col]`, `shift` = the node's lower bound.
    Shifted { col: usize },
    /// `x = shift - x_std[col]`, `shift` = the node's upper bound
    /// (used when only the upper bound is finite).
    Mirrored { col: usize },
    /// `x = x_std[pos] - x_std[neg]` (free variable).
    Split { pos: usize, neg: usize },
    /// `x = shift` (fixed variable, `lower == upper`).
    Fixed,
}

/// One user constraint in skeleton form: a precomputed scatter list over
/// standard-form columns plus the original terms for per-node RHS patching.
#[derive(Debug, Clone)]
pub(crate) struct SkelRow {
    /// `(standard column, signed coefficient)` — signs already account for
    /// mirroring/splitting; row flips for negative RHS are applied at fill
    /// time.
    pub(crate) scatter: Vec<(usize, f64)>,
    /// `(variable index, original coefficient)` — the per-node RHS is
    /// `base_rhs - Σ coef · shift[var]`.
    pub(crate) terms: Vec<(usize, f64)>,
    pub(crate) op: ConstraintOp,
    pub(crate) base_rhs: f64,
}

/// The once-per-problem part of the standard-form rewrite.
///
/// Building this walks every constraint expression exactly once; solving a
/// node against it only touches the dense workspace.
#[derive(Debug, Clone)]
pub struct StandardFormSkeleton {
    pub(crate) var_map: Vec<VarMap>,
    /// Bounds the classification was derived from (used by
    /// [`StandardFormSkeleton::compatible`]).
    root_lower: Vec<f64>,
    root_upper: Vec<f64>,
    pub(crate) rows: Vec<SkelRow>,
    /// `(standard column, variable index)` for each span row
    /// `x_std[col] + slack = upper - lower`. Always empty in
    /// bounded-variable mode.
    pub(crate) span_rows: Vec<(usize, usize)>,
    /// Per standard structural column: `true` when a span row exists for it
    /// (O(1) lookup; `span_rows` is scanned per bound-override otherwise).
    span_cols: Vec<bool>,
    /// Bounded-variable mode: upper bounds are handled implicitly by the
    /// revised engine (nonbasic-at-upper statuses) instead of span rows.
    bounded: bool,
    pub(crate) num_struct: usize,
    /// Constraint rows (`rows.len()`), before span rows.
    pub(crate) m_constraints: usize,
    /// Total rows = constraints + span rows.
    pub(crate) m_total: usize,
    /// First artificial column; also `num_struct + m_total`.
    pub(crate) artificial_start: usize,
    /// Total standard-form columns (excluding the RHS).
    pub(crate) cols: usize,
    /// Phase-2 cost per column (minimization orientation), fixed per skeleton.
    pub(crate) c: Vec<f64>,
    /// `(variable index, sense-adjusted objective coefficient)` for the
    /// per-node objective constant `obj_base + Σ coef · shift[var]`.
    pub(crate) obj_terms: Vec<(usize, f64)>,
    pub(crate) obj_base: f64,
    /// `+1` when the original problem minimizes, `-1` when it maximizes.
    pub(crate) sense_factor: f64,
    /// `true` when every branchable (integer / semi-continuous) variable is
    /// `Shifted` with a span row, i.e. any branch-and-bound bound override
    /// stays expressible against this skeleton.
    nodes_stable: bool,
}

impl StandardFormSkeleton {
    /// Builds the skeleton for `problem` with the given root bound vectors
    /// (typically the declared variable bounds).
    pub fn new(problem: &Problem, lower: &[f64], upper: &[f64]) -> Result<Self, LpError> {
        Self::build(problem, lower, upper, false)
    }

    /// Builds a *bounded-variable* skeleton: no span rows are allocated —
    /// finite upper bounds (and branch & bound bound overrides) are handled
    /// implicitly by the revised engine as nonbasic-at-upper statuses, so
    /// `m_total == m_constraints` (about half the rows of [`Self::new`] on
    /// integer-heavy models). Only [`crate::revised`] understands this
    /// layout; the dense tableau engine rejects it.
    pub fn new_bounded(problem: &Problem, lower: &[f64], upper: &[f64]) -> Result<Self, LpError> {
        Self::build(problem, lower, upper, true)
    }

    /// `true` when this skeleton was built by [`Self::new_bounded`].
    pub fn is_bounded(&self) -> bool {
        self.bounded
    }

    fn build(
        problem: &Problem,
        lower: &[f64],
        upper: &[f64],
        bounded: bool,
    ) -> Result<Self, LpError> {
        let sense_factor = match problem.sense() {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };

        let n = problem.num_vars();
        let mut var_map = Vec::with_capacity(n);
        let mut span_vars: Vec<usize> = Vec::new();
        let mut next_col = 0usize;
        let mut nodes_stable = true;

        for (i, v) in problem.variables().iter().enumerate() {
            let (lo, hi) = (lower[i], upper[i]);
            if lo > hi + FEAS_TOL {
                return Err(LpError::Infeasible);
            }
            let branchable = !matches!(v.kind, VarKind::Continuous);
            let map = if lo.is_finite() && hi.is_finite() && (hi - lo).abs() <= 1e-12 {
                if branchable {
                    // Branching could move this away from the fixed point;
                    // nodes with widened-looking bounds fall back.
                    nodes_stable = false;
                }
                VarMap::Fixed
            } else if lo.is_finite() {
                let col = next_col;
                next_col += 1;
                if !bounded && (hi.is_finite() || branchable) {
                    // Branchable variables always get a span row so a later
                    // finite upper bound is a pure RHS patch (an unbounded
                    // side is RHS = +inf, which the ratio test ignores).
                    // Bounded-variable mode needs neither: any upper bound
                    // is an implicit column bound.
                    span_vars.push(i);
                }
                VarMap::Shifted { col }
            } else if hi.is_finite() {
                if branchable && !bounded {
                    // In bounded mode a later finite *lower* bound on a
                    // mirrored variable is an implicit column bound too, so
                    // branching stays expressible.
                    nodes_stable = false;
                }
                let col = next_col;
                next_col += 1;
                VarMap::Mirrored { col }
            } else {
                if branchable {
                    nodes_stable = false;
                }
                let pos = next_col;
                let neg = next_col + 1;
                next_col += 2;
                VarMap::Split { pos, neg }
            };
            var_map.push(map);
        }

        let num_struct = next_col;

        // Constraint rows: precompute the scatter list once.
        let mut rows = Vec::with_capacity(problem.num_constraints());
        for c in problem.constraints() {
            let mut scatter: Vec<(usize, f64)> = Vec::with_capacity(c.expr.len() + 1);
            let mut terms: Vec<(usize, f64)> = Vec::with_capacity(c.expr.len());
            for (var, coef) in c.expr.terms() {
                terms.push((var.index(), coef));
                match var_map[var.index()] {
                    VarMap::Shifted { col } => scatter.push((col, coef)),
                    VarMap::Mirrored { col } => scatter.push((col, -coef)),
                    VarMap::Split { pos, neg } => {
                        scatter.push((pos, coef));
                        scatter.push((neg, -coef));
                    }
                    VarMap::Fixed => {}
                }
            }
            rows.push(SkelRow {
                scatter,
                terms,
                op: c.op,
                base_rhs: c.rhs - c.expr.constant(),
            });
        }

        let span_rows: Vec<(usize, usize)> = span_vars
            .iter()
            .map(|&var| match var_map[var] {
                VarMap::Shifted { col } => (col, var),
                _ => unreachable!("span rows are only allocated for shifted variables"),
            })
            .collect();
        let mut span_cols = vec![false; num_struct];
        for &(col, _) in &span_rows {
            span_cols[col] = true;
        }

        let m_constraints = rows.len();
        let m_total = m_constraints + span_rows.len();
        let artificial_start = num_struct + m_total;
        // Every row owns a slack column; only constraint rows can need an
        // artificial (span rows are `<=` with non-negative RHS). Unused
        // columns stay all-zero, which keeps the layout independent of
        // per-node RHS signs — the price of a few inert columns buys basis
        // stability across the whole branch & bound tree.
        let cols = artificial_start + m_constraints;

        // Phase-2 cost vector (fixed: classification decides the signs).
        let mut c = vec![0.0; cols];
        let mut obj_terms = Vec::with_capacity(problem.objective().len());
        for (var, coef) in problem.objective().terms() {
            let coef = coef * sense_factor;
            obj_terms.push((var.index(), coef));
            match var_map[var.index()] {
                VarMap::Shifted { col } => c[col] += coef,
                VarMap::Mirrored { col } => c[col] -= coef,
                VarMap::Split { pos, neg } => {
                    c[pos] += coef;
                    c[neg] -= coef;
                }
                VarMap::Fixed => {}
            }
        }
        let obj_base = problem.objective().constant() * sense_factor;

        Ok(Self {
            var_map,
            root_lower: lower.to_vec(),
            root_upper: upper.to_vec(),
            rows,
            span_rows,
            span_cols,
            bounded,
            num_struct,
            m_constraints,
            m_total,
            artificial_start,
            cols,
            c,
            obj_terms,
            obj_base,
            sense_factor,
            nodes_stable,
        })
    }

    /// `true` when branch & bound can solve every node of this problem
    /// against this skeleton (all branchable variables have a finite lower
    /// bound at the root).
    pub fn nodes_stable(&self) -> bool {
        self.nodes_stable
    }

    /// Re-targets this skeleton at `problem` under new root bounds without
    /// rebuilding, provided the standard-form layout is unchanged: the same
    /// per-variable classification (span allocation included) and the same
    /// constraint scatter pattern (operators and coefficients, term for
    /// term). Only the parts a look-alike problem is allowed to vary — the
    /// per-row RHS, the objective, the sense and the stored root bounds —
    /// are refreshed in place.
    ///
    /// Returns `false` (leaving the skeleton untouched) on any structural
    /// mismatch; the caller should build a fresh skeleton instead. On
    /// success a workspace previously filled against this skeleton remains
    /// valid for warm reuse, because the constraint matrix is bit-for-bit
    /// identical — this is what lets a stream of admission solves share one
    /// factorization (see [`crate::branch_bound::SolveContext`]).
    pub fn rebind(&mut self, problem: &Problem, lower: &[f64], upper: &[f64]) -> bool {
        let n = problem.num_vars();
        if n != self.var_map.len()
            || lower.len() != n
            || upper.len() != n
            || problem.num_constraints() != self.rows.len()
        {
            return false;
        }
        // Verify the classification each (bound pattern, kind) pair would
        // get matches the existing layout. A bound flip that changes the
        // layout (or makes the root infeasible) must take the rebuild path.
        let mut nodes_stable = true;
        for (i, v) in problem.variables().iter().enumerate() {
            let (lo, hi) = (lower[i], upper[i]);
            if lo > hi + FEAS_TOL {
                return false;
            }
            let branchable = !matches!(v.kind, VarKind::Continuous);
            let fixed = lo.is_finite() && hi.is_finite() && (hi - lo).abs() <= 1e-12;
            let ok = match self.var_map[i] {
                VarMap::Fixed => {
                    if branchable {
                        nodes_stable = false;
                    }
                    fixed
                }
                VarMap::Shifted { col } => {
                    if self.bounded {
                        !fixed && lo.is_finite()
                    } else {
                        let wants_span = hi.is_finite() || branchable;
                        !fixed && lo.is_finite() && wants_span == self.span_cols[col]
                    }
                }
                VarMap::Mirrored { .. } => {
                    if self.bounded {
                        !fixed && hi.is_finite()
                    } else {
                        if branchable {
                            nodes_stable = false;
                        }
                        !fixed && !lo.is_finite() && hi.is_finite()
                    }
                }
                VarMap::Split { .. } => {
                    if branchable {
                        nodes_stable = false;
                    }
                    !lo.is_finite() && !hi.is_finite()
                }
            };
            if !ok {
                return false;
            }
        }
        // The constraint matrix must be identical term for term; only the
        // RHS may move.
        for (row, c) in self.rows.iter().zip(problem.constraints()) {
            if row.op != c.op || row.terms.len() != c.expr.len() {
                return false;
            }
            for (&(var, coef), (v2, c2)) in row.terms.iter().zip(c.expr.terms()) {
                if var != v2.index() || coef != c2 {
                    return false;
                }
            }
        }

        // Commit: refresh RHS, objective, sense and root bounds in place.
        let sense_factor = match problem.sense() {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        self.sense_factor = sense_factor;
        self.nodes_stable = nodes_stable;
        for (row, c) in self.rows.iter_mut().zip(problem.constraints()) {
            row.base_rhs = c.rhs - c.expr.constant();
        }
        for slot in self.c.iter_mut() {
            *slot = 0.0;
        }
        self.obj_terms.clear();
        for (var, coef) in problem.objective().terms() {
            let coef = coef * sense_factor;
            self.obj_terms.push((var.index(), coef));
            match self.var_map[var.index()] {
                VarMap::Shifted { col } => self.c[col] += coef,
                VarMap::Mirrored { col } => self.c[col] -= coef,
                VarMap::Split { pos, neg } => {
                    self.c[pos] += coef;
                    self.c[neg] -= coef;
                }
                VarMap::Fixed => {}
            }
        }
        self.obj_base = problem.objective().constant() * sense_factor;
        self.root_lower.clear();
        self.root_lower.extend_from_slice(lower);
        self.root_upper.clear();
        self.root_upper.extend_from_slice(upper);
        true
    }

    /// `true` when the given bound overrides are expressible against this
    /// skeleton's fixed layout (classification per variable unchanged).
    pub fn compatible(&self, lower: &[f64], upper: &[f64]) -> bool {
        if lower.len() != self.var_map.len() || upper.len() != self.var_map.len() {
            return false;
        }
        self.var_map.iter().enumerate().all(|(i, map)| match *map {
            VarMap::Shifted { col } => {
                lower[i].is_finite()
                    && (self.bounded || upper[i] == self.root_upper[i] || self.span_cols[col])
            }
            VarMap::Mirrored { .. } => {
                upper[i].is_finite() && (self.bounded || lower[i] == f64::NEG_INFINITY)
            }
            VarMap::Split { .. } => !lower[i].is_finite() && !upper[i].is_finite(),
            VarMap::Fixed => {
                (upper[i] - lower[i]).abs() <= 1e-12
                    && (lower[i] - self.root_lower[i]).abs() <= 1e-12
            }
        })
    }

    /// Number of standard-form rows (the length of basis vectors).
    pub fn num_rows(&self) -> usize {
        self.m_total
    }
}

/// Reusable buffers for [`solve_with_skeleton`]: the flat tableau, basis
/// bookkeeping, and scratch vectors. One workspace serves an entire branch &
/// bound run; after the first node, solving allocates nothing but the
/// returned result vectors.
#[derive(Debug, Clone, Default)]
pub struct SimplexWorkspace {
    t: DenseMatrix,
    basis: Vec<usize>,
    is_basic: Vec<bool>,
    cost_row: Vec<f64>,
    /// Per-variable mapping constant for the current node (see [`VarMap`]).
    shifts: Vec<f64>,
    /// Phase-1 cost vector (1 on artificial columns), rebuilt on reshape.
    phase1_cost: Vec<f64>,
    /// Largest finite |RHS|, used to scale the phase-1 feasibility test.
    b_scale: f64,
    /// Objective constant of the current node (minimization orientation).
    obj_constant: f64,
    /// `true` when the tableau holds a phase-2-optimal state that the next
    /// solve may warm-start from (reset by fills and by failed solves).
    reusable: bool,
    /// Identity of the skeleton the tableau was built from (guards against
    /// one workspace being shared across different skeletons).
    skeleton_tag: usize,
    /// Row-sign convention (`±1`) chosen by the fill that built the current
    /// tableau; RHS re-derivation must use the same convention.
    fill_flip: Vec<f64>,
    /// Per row: the `(column, sign)` whose tableau column equals
    /// `sign · B⁻¹ eⱼ` (the slack for `<=`/span rows, the artificial for
    /// `>=`/`=` rows) — the embedded basis inverse used to re-derive RHS.
    binv_cols: Vec<(usize, f64)>,
    /// Scratch: per-row `sign · flip · rhs` weights during RHS re-derivation.
    reuse_w: Vec<f64>,
    /// Scratch: the re-derived RHS column.
    reuse_rhs: Vec<f64>,
    /// Consecutive warm reuses since the last cold fill (drift bound).
    reuse_streak: usize,
    /// Lifetime warm-start hits (including dual-certified infeasible nodes).
    warm_hits: usize,
    /// Lifetime warm-start misses (fell back to the cold path).
    warm_misses: usize,
}

impl SimplexWorkspace {
    /// Cumulative `(hits, misses)` of warm-start attempts made through this
    /// workspace. A hit skipped phase 1 (tableau reuse, including nodes the
    /// dual repair certified infeasible); a miss fell back to the cold path.
    pub fn warm_start_counts(&self) -> (usize, usize) {
        (self.warm_hits, self.warm_misses)
    }
}

/// Outcome of a tableau-reuse attempt.
enum ReuseOutcome {
    /// Reused: primal feasibility restored after this many repair pivots.
    Reused(usize),
    /// The dual repair produced a certificate that the node is infeasible;
    /// the tableau stays dual feasible and therefore reusable.
    Infeasible,
    /// Reuse impossible (layout/numerical reasons); fall back to cold.
    Fallback,
}

/// Outcome of the dual-simplex repair loop.
enum RepairResult {
    /// Primal feasibility restored after this many pivots.
    Done(usize),
    /// A row certified the node primal infeasible.
    Infeasible,
    /// Pivot cap exceeded (likely numerical trouble); fall back to cold.
    GaveUp,
}

/// Solves the continuous relaxation described by `skeleton` under the given
/// bound overrides.
///
/// `basis_hint` (a basis returned by a previous solve against the *same*
/// skeleton) authorizes a warm start. The solver does not replay the hinted
/// basis pivot-by-pivot: it reuses the workspace's last optimal tableau —
/// which represents an optimal basis of the same constraint matrix, i.e. a
/// generalization of whatever basis the hint names — re-derives the RHS and
/// dual-repairs it. Passing `None` forces the cold two-phase path.
///
/// The caller must ensure `skeleton.compatible(lower, upper)` holds; branch
/// & bound guarantees it structurally, and [`solve_relaxation`] builds a
/// fresh skeleton per call.
pub fn solve_with_skeleton(
    skeleton: &StandardFormSkeleton,
    ws: &mut SimplexWorkspace,
    lower: &[f64],
    upper: &[f64],
    basis_hint: Option<&[usize]>,
    max_iterations: usize,
) -> Result<SimplexResult, LpError> {
    // Bounded-variable skeletons carry upper bounds as implicit column
    // bounds, which only the revised engine's ratio tests understand.
    assert!(
        !skeleton.bounded,
        "the dense tableau engine requires a span-row (legacy) skeleton"
    );
    // Branching can make bound pairs cross; that node is infeasible.
    for i in 0..lower.len() {
        if lower[i] > upper[i] + FEAS_TOL {
            return Err(LpError::Infeasible);
        }
    }
    debug_assert!(
        skeleton.compatible(lower, upper),
        "bound overrides changed the layout"
    );

    let tag = skeleton as *const StandardFormSkeleton as usize;
    let mut solver = Solver { sk: skeleton, ws };

    // Warm path: reuse the previous optimal tableau. The basis hint (the
    // parent's final basis in branch & bound) is the caller's signal that a
    // warm start makes sense; the live tableau generalizes it — any optimal
    // basis of the same constraint matrix is dual feasible for this node,
    // so re-deriving the RHS and running a short dual-simplex repair skips
    // phase 1 no matter which sibling was solved last.
    let mut warm = WarmStart::Cold;
    let mut warm_iterations: Option<usize> = None;
    if basis_hint.is_some()
        && solver.ws.reusable
        && solver.ws.skeleton_tag == tag
        && solver.ws.reuse_streak < REUSE_REFRESH
    {
        solver.ws.reusable = false; // re-armed only on success
        match solver.try_reuse(lower, upper) {
            ReuseOutcome::Reused(pivots) => {
                // The repaired basis is primal feasible and (numerically)
                // dual feasible; the phase-2 polish normally terminates in a
                // handful of iterations. A tight budget converts numerical
                // trouble (drifted tableau grinding forever) into a cold
                // restart instead of burning the whole iteration allowance.
                let m = skeleton.m_total;
                let polish_cap = (2 * (m + skeleton.cols)).max(64).min(max_iterations);
                match solver.optimize(&skeleton.c, polish_cap, false) {
                    Ok(n) => {
                        warm = WarmStart::Hit;
                        warm_iterations = Some(n + pivots);
                        solver.ws.warm_hits += 1;
                        solver.ws.reuse_streak += 1;
                    }
                    // Any trouble on the reused tableau (iteration budget,
                    // apparent unboundedness) is resolved by the cold path
                    // rather than trusted.
                    Err(_) => warm = WarmStart::Miss,
                }
            }
            ReuseOutcome::Infeasible => {
                // The dual certificate settles the node without a cold
                // solve, and the tableau (still dual feasible) remains
                // warm-startable for the next node.
                solver.ws.warm_hits += 1;
                solver.ws.reuse_streak += 1;
                solver.ws.reusable = true;
                return Err(LpError::Infeasible);
            }
            ReuseOutcome::Fallback => warm = WarmStart::Miss,
        }
        if warm == WarmStart::Miss {
            solver.ws.warm_misses += 1;
        }
    }

    let iterations = match warm_iterations {
        Some(n) => n,
        None => {
            solver.fill(lower, upper);
            solver.ws.skeleton_tag = tag;
            solver.ws.reuse_streak = 0;
            match solver.optimize_two_phase(max_iterations) {
                Ok(n) => n,
                Err(e) => {
                    solver.ws.reusable = false;
                    return Err(e);
                }
            }
        }
    };

    let values = solver.extract_original_values(lower, upper);
    let min_obj = solver.objective_for(&solver.sk.c) + solver.ws.obj_constant;
    let objective = min_obj * skeleton.sense_factor;
    let basis = solver.ws.basis.clone();
    solver.ws.reusable = true;

    Ok(SimplexResult {
        values,
        objective,
        iterations,
        basis,
        warm,
    })
}

/// Solves the continuous relaxation of `problem` using the supplied bound
/// overrides (`lower[i]`, `upper[i]` replace the declared bounds of variable
/// `i`; semi-continuous variables are treated as continuous within those
/// bounds).
///
/// One-shot convenience over [`StandardFormSkeleton`] +
/// [`solve_with_skeleton`]; branch & bound uses those directly so the
/// skeleton and workspace are shared across the whole tree.
pub fn solve_relaxation(
    problem: &Problem,
    lower: &[f64],
    upper: &[f64],
    max_iterations: usize,
) -> Result<SimplexResult, LpError> {
    let skeleton = StandardFormSkeleton::new(problem, lower, upper)?;
    let mut ws = SimplexWorkspace::default();
    solve_with_skeleton(&skeleton, &mut ws, lower, upper, None, max_iterations)
}

/// The solver proper: a skeleton plus the mutable workspace.
struct Solver<'a> {
    sk: &'a StandardFormSkeleton,
    ws: &'a mut SimplexWorkspace,
}

impl<'a> Solver<'a> {
    /// Computes the per-node variable shifts and objective constant (shared
    /// by the cold fill and the warm reuse path).
    fn compute_node_scalars(&mut self, lower: &[f64], upper: &[f64]) {
        let sk = self.sk;
        let ws = &mut *self.ws;
        ws.shifts.clear();
        ws.shifts.resize(sk.var_map.len(), 0.0);
        for (i, map) in sk.var_map.iter().enumerate() {
            ws.shifts[i] = match *map {
                VarMap::Shifted { .. } => lower[i],
                VarMap::Mirrored { .. } => upper[i],
                VarMap::Fixed => lower[i],
                VarMap::Split { .. } => 0.0,
            };
        }
        ws.obj_constant = sk.obj_base
            + sk.obj_terms
                .iter()
                .map(|&(var, coef)| coef * ws.shifts[var])
                .sum::<f64>();
    }

    /// Specializes the skeleton to one node's bounds: computes shifts,
    /// patches RHS values, scatters coefficients into the reused tableau and
    /// installs the default (slack/artificial) basis.
    fn fill(&mut self, lower: &[f64], upper: &[f64]) {
        self.compute_node_scalars(lower, upper);
        let sk = self.sk;
        let ws = &mut *self.ws;
        ws.reusable = false;
        let stride = sk.cols + 1;
        ws.t.reset(sk.m_total, stride);
        ws.basis.clear();
        ws.basis.resize(sk.m_total, 0);
        ws.is_basic.clear();
        ws.is_basic.resize(sk.cols, false);
        ws.cost_row.clear();
        ws.cost_row.resize(sk.cols, 0.0);
        // Rebuilt unconditionally: two skeletons can share `cols` yet differ
        // in `artificial_start`, so caching on length alone would leave stale
        // phase-1 costs when one workspace serves several skeletons.
        ws.phase1_cost.clear();
        ws.phase1_cost.resize(sk.cols, 0.0);
        for j in sk.artificial_start..sk.cols {
            ws.phase1_cost[j] = 1.0;
        }
        ws.b_scale = 0.0;
        ws.fill_flip.clear();
        ws.fill_flip.resize(sk.m_total, 1.0);
        ws.binv_cols.clear();
        ws.binv_cols.resize(sk.m_total, (0, 1.0));

        // Constraint rows.
        for (ri, row) in sk.rows.iter().enumerate() {
            let rhs = row.base_rhs
                - row
                    .terms
                    .iter()
                    .map(|&(var, coef)| coef * ws.shifts[var])
                    .sum::<f64>();
            let flip = rhs < 0.0;
            let sign = if flip { -1.0 } else { 1.0 };
            let effective_op = match (row.op, flip) {
                (ConstraintOp::Le, false) | (ConstraintOp::Ge, true) => ConstraintOp::Le,
                (ConstraintOp::Ge, false) | (ConstraintOp::Le, true) => ConstraintOp::Ge,
                (ConstraintOp::Eq, _) => ConstraintOp::Eq,
            };
            let slack_col = sk.num_struct + ri;
            let art_col = sk.artificial_start + ri;
            ws.fill_flip[ri] = sign;
            let r = ws.t.row_mut(ri);
            for &(col, coef) in &row.scatter {
                r[col] += sign * coef;
            }
            let b = sign * rhs;
            r[sk.cols] = b;
            if b.is_finite() {
                ws.b_scale = ws.b_scale.max(b.abs());
            }
            let basic = match effective_op {
                ConstraintOp::Le => {
                    r[slack_col] = 1.0;
                    ws.binv_cols[ri] = (slack_col, 1.0);
                    slack_col
                }
                ConstraintOp::Ge => {
                    r[slack_col] = -1.0;
                    r[art_col] = 1.0;
                    ws.binv_cols[ri] = (art_col, 1.0);
                    art_col
                }
                ConstraintOp::Eq => {
                    r[art_col] = 1.0;
                    ws.binv_cols[ri] = (art_col, 1.0);
                    art_col
                }
            };
            ws.basis[ri] = basic;
            ws.is_basic[basic] = true;
        }

        // Span rows: `x_std[col] + slack = upper - lower` (RHS may be +inf,
        // which the ratio test treats as "never binding").
        for (k, &(col, var)) in sk.span_rows.iter().enumerate() {
            let ri = sk.m_constraints + k;
            let span = (upper[var] - lower[var]).max(0.0);
            let slack_col = sk.num_struct + ri;
            ws.binv_cols[ri] = (slack_col, 1.0);
            let r = ws.t.row_mut(ri);
            r[col] = 1.0;
            r[slack_col] = 1.0;
            r[sk.cols] = span;
            if span.is_finite() {
                ws.b_scale = ws.b_scale.max(span);
            }
            ws.basis[ri] = slack_col;
            ws.is_basic[slack_col] = true;
        }
    }

    /// Warm start: reuse the previous optimal tableau for this node.
    ///
    /// The constraint *matrix* is identical for every node of a skeleton
    /// (bounds only move shifts and right-hand sides), so the tableau left
    /// behind by the last solve is a valid representation `B⁻¹A` for this
    /// node too — only the RHS column `B⁻¹b` must be re-derived, via the
    /// unit columns recorded in `binv_cols`. The result is dual feasible
    /// (the objective never changes), so any negative RHS entries are
    /// repaired with dual simplex pivots.
    fn try_reuse(&mut self, lower: &[f64], upper: &[f64]) -> ReuseOutcome {
        let sk = self.sk;
        let m = sk.m_total;
        if m == 0
            || self.ws.binv_cols.len() != m
            || self.ws.t.rows() != m
            || self.ws.t.stride() != sk.cols + 1
        {
            return ReuseOutcome::Fallback;
        }
        self.compute_node_scalars(lower, upper);
        let ws = &mut *self.ws;

        // Per-row weights `flip · raw_rhs` in the conventions of the fill
        // that built this tableau. Constraint rows are always finite
        // (validated coefficients, finite shifts); span rows may be +inf.
        ws.reuse_w.clear();
        ws.reuse_w.resize(m, 0.0);
        for (ri, row) in sk.rows.iter().enumerate() {
            let raw = row.base_rhs
                - row
                    .terms
                    .iter()
                    .map(|&(var, coef)| coef * ws.shifts[var])
                    .sum::<f64>();
            ws.reuse_w[ri] = ws.fill_flip[ri] * raw;
        }
        for (k, &(_, var)) in sk.span_rows.iter().enumerate() {
            ws.reuse_w[sk.m_constraints + k] = (upper[var] - lower[var]).max(0.0);
        }

        // Re-derive the RHS column: rhs[i] = Σ_j sign_j · T[i, col_j] · w_j.
        ws.reuse_rhs.clear();
        ws.reuse_rhs.resize(m, 0.0);
        let mut b_scale = 0.0f64;
        for i in 0..m {
            let row = ws.t.row(i);
            let mut acc = 0.0;
            let mut inf_positive = false;
            for j in 0..m {
                let (cj, sj) = ws.binv_cols[j];
                let w = ws.reuse_w[j];
                let mij = sj * row[cj];
                if mij.abs() > REUSE_HEALTH_LIMIT {
                    // The embedded basis inverse has blown up numerically;
                    // nothing derived from it can be trusted.
                    return ReuseOutcome::Fallback;
                }
                if w.is_finite() {
                    acc += mij * w;
                } else if mij > 1e-9 {
                    inf_positive = true;
                } else if mij < -1e-9 {
                    // A −inf contribution cannot be repaired; go cold.
                    return ReuseOutcome::Fallback;
                }
            }
            let rhs = if inf_positive { f64::INFINITY } else { acc };
            if rhs == f64::INFINITY && ws.basis[i] < sk.num_struct {
                // A structural variable pinned at +inf means this tableau
                // cannot represent the node; go cold.
                return ReuseOutcome::Fallback;
            }
            if rhs.is_finite() {
                b_scale = b_scale.max(rhs.abs());
            }
            ws.reuse_rhs[i] = rhs;
        }
        ws.b_scale = b_scale;
        let tol = FEAS_TOL * (1.0 + b_scale);
        for i in 0..m {
            ws.t.set(i, sk.cols, ws.reuse_rhs[i]);
        }
        // Basic artificials must stay at (numerical) zero; a positive value
        // is an equality violation dual simplex cannot repair.
        for i in 0..m {
            if ws.basis[i] >= sk.artificial_start && ws.t.get(i, sk.cols) > tol {
                return ReuseOutcome::Fallback;
            }
        }

        let pivots = match self.dual_repair(repair_pivot_cap(m, sk.cols)) {
            RepairResult::Done(pivots) => pivots,
            RepairResult::Infeasible => return ReuseOutcome::Infeasible,
            RepairResult::GaveUp => return ReuseOutcome::Fallback,
        };

        // Repair pivots move every RHS entry; re-check the artificial rows.
        let sk = self.sk;
        for i in 0..m {
            if self.ws.basis[i] >= sk.artificial_start && self.ws.t.get(i, sk.cols) > tol {
                return ReuseOutcome::Fallback;
            }
        }
        ReuseOutcome::Reused(pivots)
    }

    /// Dual simplex: restore primal feasibility while keeping dual
    /// feasibility, starting from a dual-feasible tableau whose RHS was just
    /// patched.
    fn dual_repair(&mut self, cap: usize) -> RepairResult {
        let sk = self.sk;
        let m = sk.m_total;
        let cols = sk.cols;
        let tol = FEAS_TOL * (1.0 + self.ws.b_scale);
        let mut pivots = 0usize;
        loop {
            // Leaving row: most negative (finite) RHS.
            let mut leave: Option<(usize, f64)> = None;
            for i in 0..m {
                let rhs = self.ws.t.get(i, cols);
                if rhs.is_finite() && rhs < -tol && leave.is_none_or(|(_, r)| rhs < r) {
                    leave = Some((i, rhs));
                }
            }
            let Some((r, _)) = leave else {
                return RepairResult::Done(pivots);
            };
            // Entering column: dual ratio test over nonbasic, non-artificial
            // columns with a negative entry in the leaving row.
            let row = self.ws.t.row(r);
            let mut enter: Option<(usize, f64)> = None;
            let mut saw_tiny_negative = false;
            for (j, &a) in row[..sk.artificial_start].iter().enumerate() {
                if self.ws.is_basic[j] {
                    continue;
                }
                if a < -DUAL_PIVOT_TOL {
                    let ratio = self.ws.cost_row[j].max(0.0) / -a;
                    if enter.is_none_or(|(_, best)| ratio < best - 1e-12) {
                        enter = Some((j, ratio));
                    }
                } else if a < -PIVOT_TOL {
                    // Usable in principle but too small to pivot on safely.
                    saw_tiny_negative = true;
                }
            }
            let Some((j, _)) = enter else {
                if saw_tiny_negative {
                    // Can't certify infeasibility (a tiny negative entry
                    // exists) and can't pivot safely: let the cold path decide.
                    return RepairResult::GaveUp;
                }
                // Row `r` reads `x_basic + Σ aⱼxⱼ = rhs < 0` with every
                // usable aⱼ ≥ 0 and xⱼ ≥ 0: a certificate of infeasibility.
                return RepairResult::Infeasible;
            };
            self.pivot(r, j);
            pivots += 1;
            if pivots >= cap {
                return RepairResult::GaveUp;
            }
        }
    }

    /// Runs phase 1 (when artificials are basic) and phase 2; returns the
    /// total iteration count.
    fn optimize_two_phase(&mut self, max_iterations: usize) -> Result<usize, LpError> {
        let sk = self.sk;
        if sk.m_total == 0 {
            // No constraints: the optimum is every variable at its mapping
            // origin (all standard-form columns at zero) unless some column
            // could still improve the objective, in which case the LP is
            // unbounded.
            if sk.c.iter().any(|&c| c < -COST_TOL) {
                return Err(LpError::Unbounded);
            }
            return Ok(0);
        }

        let mut it1 = 0usize;
        let needs_phase1 = self.ws.basis.iter().any(|&b| b >= sk.artificial_start);
        if needs_phase1 {
            let phase1_cost = std::mem::take(&mut self.ws.phase1_cost);
            let r = self.optimize(&phase1_cost, max_iterations, true);
            let phase1_obj = self.objective_for(&phase1_cost);
            self.ws.phase1_cost = phase1_cost;
            it1 = r?;
            if phase1_obj > FEAS_TOL * (1.0 + self.ws.b_scale) {
                return Err(LpError::Infeasible);
            }
            self.expel_artificials();
        }

        let cost = &self.sk.c;
        let it2 = self.optimize(cost, max_iterations.saturating_sub(it1), false)?;
        Ok(it1 + it2)
    }

    /// Rebuilds the reduced-cost row `d_j = c_j - c_B^T * column_j` for a new
    /// cost vector (done once per phase; pivots keep it up to date after
    /// that).
    fn reset_cost_row(&mut self, cost: &[f64]) {
        let cols = self.sk.cols;
        self.ws.cost_row.copy_from_slice(&cost[..cols]);
        for i in 0..self.sk.m_total {
            let cb = cost[self.ws.basis[i]];
            if cb != 0.0 {
                let row = self.ws.t.row(i);
                for (d, &a) in self.ws.cost_row.iter_mut().zip(row[..cols].iter()) {
                    *d -= cb * a;
                }
            }
        }
    }

    /// Primal simplex iterations for the given cost vector.
    ///
    /// `allow_artificials` controls whether artificial columns may enter the
    /// basis (phase 1 only).
    fn optimize(
        &mut self,
        cost: &[f64],
        max_iterations: usize,
        allow_artificials: bool,
    ) -> Result<usize, LpError> {
        let sk = self.sk;
        let m = sk.m_total;
        let cols = sk.cols;
        let enterable_end = if allow_artificials {
            cols
        } else {
            sk.artificial_start
        };
        // Switch to Bland's rule after this many iterations to guarantee
        // termination on degenerate problems.
        let bland_threshold = 4 * (m + cols);

        self.reset_cost_row(cost);

        let mut iterations = 0usize;
        loop {
            if iterations >= max_iterations {
                return Err(LpError::IterationLimit { iterations });
            }
            // Entering column: most negative reduced cost (Dantzig) or first
            // negative (Bland, anti-cycling).
            let use_bland = iterations >= bland_threshold;
            let mut entering: Option<usize> = None;
            let mut best = -COST_TOL;
            for (j, &d) in self.ws.cost_row[..enterable_end].iter().enumerate() {
                if self.ws.is_basic[j] {
                    continue;
                }
                if use_bland {
                    if d < -COST_TOL {
                        entering = Some(j);
                        break;
                    }
                } else if d < best {
                    best = d;
                    entering = Some(j);
                }
            }
            let Some(enter) = entering else {
                return Ok(iterations);
            };
            #[cfg(feature = "solver-trace")]
            if iterations > max_iterations.saturating_sub(20) {
                eprintln!(
                    "it {iterations}: enter {enter} d {} basic? {}",
                    self.ws.cost_row[enter], self.ws.is_basic[enter]
                );
            }

            // Ratio test, two passes (infinite RHS rows never bind).
            // Pass 1 finds the minimum ratio; pass 2 picks the row among
            // near-ties — the *largest* pivot element under Dantzig (tiny
            // pivots multiply the tableau by their reciprocal and blow it up
            // numerically), the smallest basic index under Bland
            // (anti-cycling).
            let mut best_ratio = f64::INFINITY;
            for i in 0..m {
                let row = self.ws.t.row(i);
                let a = row[enter];
                if a > PIVOT_TOL {
                    let ratio = row[cols] / a;
                    if ratio < best_ratio {
                        best_ratio = ratio;
                    }
                }
            }
            if best_ratio.is_infinite() {
                return Err(LpError::Unbounded);
            }
            let tie_window = best_ratio.abs() * 1e-9 + 1e-12;
            let mut leave: Option<usize> = None;
            let mut best_pivot = 0.0f64;
            for i in 0..m {
                let row = self.ws.t.row(i);
                let a = row[enter];
                if a > PIVOT_TOL && row[cols] / a <= best_ratio + tie_window {
                    let better = if use_bland {
                        leave.is_none_or(|l| self.ws.basis[i] < self.ws.basis[l])
                    } else {
                        a > best_pivot
                    };
                    if better {
                        best_pivot = a;
                        leave = Some(i);
                    }
                }
            }
            let Some(leave) = leave else {
                return Err(LpError::Unbounded);
            };

            self.pivot(leave, enter);
            iterations += 1;
        }
    }

    /// Gauss-Jordan pivot on `(row, col)`; also updates the reduced-cost row.
    /// This is the hot loop: all updates are linear scans over contiguous
    /// slices of the flat tableau.
    fn pivot(&mut self, row: usize, col: usize) {
        let cols = self.sk.cols;
        let m = self.sk.m_total;
        let pivot = self.ws.t.get(row, col);
        debug_assert!(pivot.abs() > PIVOT_TOL);
        let inv = 1.0 / pivot;
        for v in self.ws.t.row_mut(row).iter_mut() {
            *v *= inv;
        }
        for i in 0..m {
            if i == row {
                continue;
            }
            let factor = self.ws.t.get(i, col);
            if factor != 0.0 {
                let (pivot_row, r) = self.ws.t.row_pair_mut(row, i);
                for (x, &p) in r.iter_mut().zip(pivot_row.iter()) {
                    *x -= factor * p;
                }
                // Clean tiny numerical noise on the pivot column.
                r[col] = 0.0;
            }
        }
        let d = self.ws.cost_row[col];
        if d != 0.0 {
            let pivot_row = self.ws.t.row(row);
            for (x, &p) in self.ws.cost_row.iter_mut().zip(pivot_row[..cols].iter()) {
                *x -= d * p;
            }
            self.ws.cost_row[col] = 0.0;
        }
        let old_basic = self.ws.basis[row];
        self.ws.is_basic[old_basic] = false;
        self.ws.is_basic[col] = true;
        self.ws.basis[row] = col;
    }

    /// After phase 1, pivot basic artificials (value ≈ 0) out of the basis,
    /// or leave them if their row is entirely zero (redundant constraint).
    fn expel_artificials(&mut self) {
        let sk = self.sk;
        for i in 0..sk.m_total {
            if self.ws.basis[i] < sk.artificial_start {
                continue;
            }
            let row = self.ws.t.row(i);
            let target =
                (0..sk.artificial_start).find(|&j| row[j].abs() > 1e-7 && !self.ws.is_basic[j]);
            if let Some(j) = target {
                self.pivot(i, j);
            }
        }
    }

    /// `Σ cost[basis[i]] · rhs[i]` — the current objective under `cost`
    /// (zero-cost basic columns are skipped so inert infinite span RHS never
    /// pollutes the sum).
    fn objective_for(&self, cost: &[f64]) -> f64 {
        let cols = self.sk.cols;
        let mut total = 0.0;
        for i in 0..self.sk.m_total {
            let cb = cost[self.ws.basis[i]];
            if cb != 0.0 {
                total += cb * self.ws.t.get(i, cols);
            }
        }
        total
    }

    /// Maps the standard-form solution back onto the original variables.
    fn extract_original_values(&self, lower: &[f64], upper: &[f64]) -> Vec<f64> {
        let sk = self.sk;
        let cols = sk.cols;
        // Dense standard-form values (non-basic columns are zero).
        let mut std_values = vec![0.0; sk.num_struct];
        for i in 0..sk.m_total {
            let b = self.ws.basis[i];
            if b < sk.num_struct {
                std_values[b] = self.ws.t.get(i, cols).max(0.0);
            }
        }
        let mut values = vec![0.0; sk.var_map.len()];
        for (i, map) in sk.var_map.iter().enumerate() {
            values[i] = match *map {
                VarMap::Shifted { col } => lower[i] + std_values[col],
                VarMap::Mirrored { col } => upper[i] - std_values[col],
                VarMap::Split { pos, neg } => std_values[pos] - std_values[neg],
                VarMap::Fixed => lower[i],
            };
        }
        values
    }
}

// --- Checkpoint codec -------------------------------------------------------

use crate::state::{Reader, StateError, Writer};

impl VarMap {
    fn encode_state(&self, w: &mut Writer) {
        match *self {
            VarMap::Shifted { col } => {
                w.u8(0);
                w.usize(col);
            }
            VarMap::Mirrored { col } => {
                w.u8(1);
                w.usize(col);
            }
            VarMap::Split { pos, neg } => {
                w.u8(2);
                w.usize(pos);
                w.usize(neg);
            }
            VarMap::Fixed => w.u8(3),
        }
    }

    fn decode_state(r: &mut Reader<'_>) -> Result<Self, StateError> {
        Ok(match r.u8()? {
            0 => VarMap::Shifted { col: r.usize()? },
            1 => VarMap::Mirrored { col: r.usize()? },
            2 => VarMap::Split {
                pos: r.usize()?,
                neg: r.usize()?,
            },
            3 => VarMap::Fixed,
            other => return Err(StateError::new(format!("invalid VarMap tag {other}"))),
        })
    }
}

fn encode_op(op: ConstraintOp, w: &mut Writer) {
    w.u8(match op {
        ConstraintOp::Le => 0,
        ConstraintOp::Ge => 1,
        ConstraintOp::Eq => 2,
    });
}

fn decode_op(r: &mut Reader<'_>) -> Result<ConstraintOp, StateError> {
    Ok(match r.u8()? {
        0 => ConstraintOp::Le,
        1 => ConstraintOp::Ge,
        2 => ConstraintOp::Eq,
        other => return Err(StateError::new(format!("invalid ConstraintOp tag {other}"))),
    })
}

impl SkelRow {
    fn encode_state(&self, w: &mut Writer) {
        w.vec_idx_f64(&self.scatter);
        w.vec_idx_f64(&self.terms);
        encode_op(self.op, w);
        w.f64(self.base_rhs);
    }

    fn decode_state(r: &mut Reader<'_>) -> Result<Self, StateError> {
        Ok(Self {
            scatter: r.vec_idx_f64()?,
            terms: r.vec_idx_f64()?,
            op: decode_op(r)?,
            base_rhs: r.f64()?,
        })
    }
}

impl StandardFormSkeleton {
    /// Checkpoint encoding. A skeleton is plain data derived from the last
    /// problem it was (re)bound to, so the whole struct travels verbatim —
    /// the decoded copy rebinds to the next matching problem exactly like
    /// the live one would have.
    pub(crate) fn encode_state(&self, w: &mut Writer) {
        w.seq(&self.var_map, |w, m| m.encode_state(w));
        w.vec_f64(&self.root_lower);
        w.vec_f64(&self.root_upper);
        w.seq(&self.rows, |w, row| row.encode_state(w));
        w.seq(&self.span_rows, |w, &(col, var)| {
            w.usize(col);
            w.usize(var);
        });
        w.vec_bool(&self.span_cols);
        w.bool(self.bounded);
        w.usize(self.num_struct);
        w.usize(self.m_constraints);
        w.usize(self.m_total);
        w.usize(self.artificial_start);
        w.usize(self.cols);
        w.vec_f64(&self.c);
        w.vec_idx_f64(&self.obj_terms);
        w.f64(self.obj_base);
        w.f64(self.sense_factor);
        w.bool(self.nodes_stable);
    }

    pub(crate) fn decode_state(r: &mut Reader<'_>) -> Result<Self, StateError> {
        Ok(Self {
            var_map: r.seq(VarMap::decode_state)?,
            root_lower: r.vec_f64()?,
            root_upper: r.vec_f64()?,
            rows: r.seq(SkelRow::decode_state)?,
            span_rows: r.seq(|r| Ok((r.usize()?, r.usize()?)))?,
            span_cols: r.vec_bool()?,
            bounded: r.bool()?,
            num_struct: r.usize()?,
            m_constraints: r.usize()?,
            m_total: r.usize()?,
            artificial_start: r.usize()?,
            cols: r.usize()?,
            c: r.vec_f64()?,
            obj_terms: r.vec_idx_f64()?,
            obj_base: r.f64()?,
            sense_factor: r.f64()?,
            nodes_stable: r.bool()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::problem::{ConstraintOp, Problem, Sense};

    fn solve(p: &Problem) -> SimplexResult {
        let lower: Vec<f64> = p.variables().iter().map(|v| v.lower).collect();
        let upper: Vec<f64> = p.variables().iter().map(|v| v.upper).collect();
        solve_relaxation(p, &lower, &upper, 100_000).unwrap()
    }

    #[test]
    fn simple_minimization() {
        // min 2x + 3y  s.t. x + 2y >= 4, x + y <= 10, x,y >= 0  -> x=0, y=2, obj=6
        let mut p = Problem::new("t", Sense::Minimize);
        let x = p.add_var("x", 0.0, f64::INFINITY);
        let y = p.add_var("y", 0.0, f64::INFINITY);
        p.set_objective([(x, 2.0), (y, 3.0)]);
        p.add_constraint("c1", [(x, 1.0), (y, 2.0)], ConstraintOp::Ge, 4.0);
        p.add_constraint("c2", [(x, 1.0), (y, 1.0)], ConstraintOp::Le, 10.0);
        let r = solve(&p);
        assert!(
            (r.objective - 6.0).abs() < 1e-6,
            "objective {}",
            r.objective
        );
        assert!((r.values[y.index()] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn simple_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> obj 36 at (2, 6)
        let mut p = Problem::new("t", Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY);
        let y = p.add_var("y", 0.0, f64::INFINITY);
        p.set_objective([(x, 3.0), (y, 5.0)]);
        p.add_constraint("c1", [(x, 1.0)], ConstraintOp::Le, 4.0);
        p.add_constraint("c2", [(y, 2.0)], ConstraintOp::Le, 12.0);
        p.add_constraint("c3", [(x, 3.0), (y, 2.0)], ConstraintOp::Le, 18.0);
        let r = solve(&p);
        assert!((r.objective - 36.0).abs() < 1e-6);
        assert!((r.values[x.index()] - 2.0).abs() < 1e-6);
        assert!((r.values[y.index()] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_problem() {
        let mut p = Problem::new("t", Sense::Minimize);
        let x = p.add_var("x", 0.0, f64::INFINITY);
        p.set_objective([(x, 1.0)]);
        p.add_constraint("c1", [(x, 1.0)], ConstraintOp::Le, 1.0);
        p.add_constraint("c2", [(x, 1.0)], ConstraintOp::Ge, 2.0);
        let lower = vec![0.0];
        let upper = vec![f64::INFINITY];
        assert!(matches!(
            solve_relaxation(&p, &lower, &upper, 10_000),
            Err(LpError::Infeasible)
        ));
    }

    #[test]
    fn unbounded_problem() {
        let mut p = Problem::new("t", Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY);
        p.set_objective([(x, 1.0)]);
        let lower = vec![0.0];
        let upper = vec![f64::INFINITY];
        assert!(matches!(
            solve_relaxation(&p, &lower, &upper, 10_000),
            Err(LpError::Unbounded)
        ));
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + y = 5, x - y = 1 -> x=3, y=2
        let mut p = Problem::new("t", Sense::Minimize);
        let x = p.add_var("x", 0.0, f64::INFINITY);
        let y = p.add_var("y", 0.0, f64::INFINITY);
        p.set_objective([(x, 1.0), (y, 1.0)]);
        p.add_constraint("sum", [(x, 1.0), (y, 1.0)], ConstraintOp::Eq, 5.0);
        p.add_constraint("diff", [(x, 1.0), (y, -1.0)], ConstraintOp::Eq, 1.0);
        let r = solve(&p);
        assert!((r.values[x.index()] - 3.0).abs() < 1e-6);
        assert!((r.values[y.index()] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn variable_upper_bounds_are_respected() {
        // max x + y with x <= 2 (bound), y <= 3 (bound), x + y <= 4
        let mut p = Problem::new("t", Sense::Maximize);
        let x = p.add_var("x", 0.0, 2.0);
        let y = p.add_var("y", 0.0, 3.0);
        p.set_objective([(x, 1.0), (y, 1.0)]);
        p.add_constraint("cap", [(x, 1.0), (y, 1.0)], ConstraintOp::Le, 4.0);
        let r = solve(&p);
        assert!((r.objective - 4.0).abs() < 1e-6);
        assert!(r.values[x.index()] <= 2.0 + 1e-9);
        assert!(r.values[y.index()] <= 3.0 + 1e-9);
    }

    #[test]
    fn nonzero_lower_bounds_shift_correctly() {
        // min x + y with x >= 2, y >= 3, x + y >= 7 -> obj 7
        let mut p = Problem::new("t", Sense::Minimize);
        let x = p.add_var("x", 2.0, f64::INFINITY);
        let y = p.add_var("y", 3.0, f64::INFINITY);
        p.set_objective([(x, 1.0), (y, 1.0)]);
        p.add_constraint("c", [(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 7.0);
        let r = solve(&p);
        assert!((r.objective - 7.0).abs() < 1e-6);
        assert!(r.values[x.index()] >= 2.0 - 1e-9);
        assert!(r.values[y.index()] >= 3.0 - 1e-9);
    }

    #[test]
    fn free_variables_can_go_negative() {
        // min x s.t. x >= -5 expressed via a constraint on a free variable.
        let mut p = Problem::new("t", Sense::Minimize);
        let x = p.add_var("x", f64::NEG_INFINITY, f64::INFINITY);
        p.set_objective([(x, 1.0)]);
        p.add_constraint("lb", [(x, 1.0)], ConstraintOp::Ge, -5.0);
        let r = solve(&p);
        assert!((r.objective + 5.0).abs() < 1e-6);
        assert!((r.values[x.index()] + 5.0).abs() < 1e-6);
    }

    #[test]
    fn mirrored_variable_only_upper_bound() {
        // max x with x <= 9 and no lower bound, but constraint x >= 1.
        let mut p = Problem::new("t", Sense::Maximize);
        let x = p.add_var("x", f64::NEG_INFINITY, 9.0);
        p.set_objective([(x, 1.0)]);
        p.add_constraint("lb", [(x, 1.0)], ConstraintOp::Ge, 1.0);
        let r = solve(&p);
        assert!((r.objective - 9.0).abs() < 1e-6);
    }

    #[test]
    fn fixed_variable_is_substituted() {
        let mut p = Problem::new("t", Sense::Minimize);
        let x = p.add_var("x", 4.0, 4.0);
        let y = p.add_var("y", 0.0, f64::INFINITY);
        p.set_objective([(x, 1.0), (y, 1.0)]);
        p.add_constraint("c", [(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 10.0);
        let r = solve(&p);
        assert!((r.values[x.index()] - 4.0).abs() < 1e-9);
        assert!((r.values[y.index()] - 6.0).abs() < 1e-6);
        assert!((r.objective - 10.0).abs() < 1e-6);
    }

    #[test]
    fn constant_in_constraint_expr_moves_to_rhs() {
        // (x + 1) <= 3  =>  x <= 2
        let mut p = Problem::new("t", Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY);
        p.set_objective([(x, 1.0)]);
        let mut e = LinExpr::from(x);
        e.add_constant(1.0);
        p.add_constraint_expr("c", e, ConstraintOp::Le, 3.0);
        let r = solve(&p);
        assert!((r.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn objective_constant_is_reported() {
        let mut p = Problem::new("t", Sense::Minimize);
        let x = p.add_var("x", 0.0, f64::INFINITY);
        let mut obj = LinExpr::from(x);
        obj.add_constant(100.0);
        p.set_objective_expr(obj);
        p.add_constraint("c", [(x, 1.0)], ConstraintOp::Ge, 1.0);
        let r = solve(&p);
        assert!((r.objective - 101.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degenerate LP; Bland fallback must prevent cycling.
        let mut p = Problem::new("t", Sense::Minimize);
        let x1 = p.add_var("x1", 0.0, f64::INFINITY);
        let x2 = p.add_var("x2", 0.0, f64::INFINITY);
        let x3 = p.add_var("x3", 0.0, f64::INFINITY);
        let x4 = p.add_var("x4", 0.0, f64::INFINITY);
        p.set_objective([(x1, -0.75), (x2, 150.0), (x3, -0.02), (x4, 6.0)]);
        p.add_constraint(
            "c1",
            [(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
            ConstraintOp::Le,
            0.0,
        );
        p.add_constraint(
            "c2",
            [(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
            ConstraintOp::Le,
            0.0,
        );
        p.add_constraint("c3", [(x3, 1.0)], ConstraintOp::Le, 1.0);
        let r = solve(&p);
        assert!(
            (r.objective + 0.05).abs() < 1e-6,
            "objective {}",
            r.objective
        );
    }

    #[test]
    fn redundant_equalities_are_handled() {
        // x + y = 2 stated twice; still solvable.
        let mut p = Problem::new("t", Sense::Minimize);
        let x = p.add_var("x", 0.0, f64::INFINITY);
        let y = p.add_var("y", 0.0, f64::INFINITY);
        p.set_objective([(x, 1.0), (y, 2.0)]);
        p.add_constraint("c1", [(x, 1.0), (y, 1.0)], ConstraintOp::Eq, 2.0);
        p.add_constraint("c2", [(x, 1.0), (y, 1.0)], ConstraintOp::Eq, 2.0);
        let r = solve(&p);
        assert!((r.objective - 2.0).abs() < 1e-6);
        assert!((r.values[x.index()] - 2.0).abs() < 1e-6);
    }

    // ----- skeleton / warm-start specific coverage -----

    /// A small knapsack-ish MIP whose branch nodes exercise span-row patches.
    fn knapsack() -> (Problem, Vec<f64>, Vec<f64>) {
        let mut p = Problem::new("k", Sense::Maximize);
        let a = p.add_int_var("a", 0.0, 1.0);
        let b = p.add_int_var("b", 0.0, 1.0);
        let c = p.add_int_var("c", 0.0, 1.0);
        p.set_objective([(a, 8.0), (b, 11.0), (c, 6.0)]);
        p.add_constraint(
            "cap",
            [(a, 5.0), (b, 7.0), (c, 4.0)],
            ConstraintOp::Le,
            10.0,
        );
        let lower: Vec<f64> = p.variables().iter().map(|v| v.lower).collect();
        let upper: Vec<f64> = p.variables().iter().map(|v| v.upper).collect();
        (p, lower, upper)
    }

    #[test]
    fn skeleton_solve_matches_one_shot() {
        let (p, lower, upper) = knapsack();
        let sk = StandardFormSkeleton::new(&p, &lower, &upper).unwrap();
        assert!(sk.nodes_stable());
        let mut ws = SimplexWorkspace::default();
        let a = solve_with_skeleton(&sk, &mut ws, &lower, &upper, None, 10_000).unwrap();
        let b = solve_relaxation(&p, &lower, &upper, 10_000).unwrap();
        assert!((a.objective - b.objective).abs() < 1e-9);
        assert_eq!(a.warm, WarmStart::Cold);
    }

    #[test]
    fn warm_start_child_matches_cold_child() {
        let (p, lower, upper) = knapsack();
        let sk = StandardFormSkeleton::new(&p, &lower, &upper).unwrap();
        let mut ws = SimplexWorkspace::default();
        let root = solve_with_skeleton(&sk, &mut ws, &lower, &upper, None, 10_000).unwrap();

        // Branch b (index 1) down to 0 and up to 1, warm-starting each child.
        for (lo_b, hi_b) in [(0.0, 0.0), (1.0, 1.0)] {
            let mut lo = lower.clone();
            let mut hi = upper.clone();
            lo[1] = lo_b;
            hi[1] = hi_b;
            assert!(sk.compatible(&lo, &hi));
            let warm =
                solve_with_skeleton(&sk, &mut ws, &lo, &hi, Some(&root.basis), 10_000).unwrap();
            let cold = solve_with_skeleton(&sk, &mut ws, &lo, &hi, None, 10_000).unwrap();
            assert!(
                (warm.objective - cold.objective).abs() < 1e-7,
                "warm {} vs cold {} for b in [{lo_b}, {hi_b}]",
                warm.objective,
                cold.objective
            );
            assert_ne!(warm.warm, WarmStart::Cold);
        }
    }

    #[test]
    fn span_row_with_infinite_upper_is_inert() {
        // Integer variable with no upper bound: the skeleton still allocates
        // a span row (RHS = +inf) so children can tighten it later.
        let mut p = Problem::new("inf-span", Sense::Minimize);
        let x = p.add_int_var("x", 0.0, f64::INFINITY);
        p.set_objective([(x, 1.0)]);
        p.add_constraint("lb", [(x, 1.0)], ConstraintOp::Ge, 3.0);
        let lower = vec![0.0];
        let upper = vec![f64::INFINITY];
        let sk = StandardFormSkeleton::new(&p, &lower, &upper).unwrap();
        assert_eq!(sk.num_rows(), 2, "constraint row + span row");
        let mut ws = SimplexWorkspace::default();
        let r = solve_with_skeleton(&sk, &mut ws, &lower, &upper, None, 10_000).unwrap();
        assert!((r.objective - 3.0).abs() < 1e-6);
        // Tightening the upper bound is a pure RHS patch on the span row.
        let r2 = solve_with_skeleton(&sk, &mut ws, &lower, &[5.0], Some(&r.basis), 10_000).unwrap();
        assert!((r2.objective - 3.0).abs() < 1e-6);
    }

    #[test]
    fn incompatible_bounds_are_detected() {
        let (p, lower, upper) = knapsack();
        let sk = StandardFormSkeleton::new(&p, &lower, &upper).unwrap();
        // An infinite lower bound changes the classification of variable 0.
        let mut lo = lower.clone();
        lo[0] = f64::NEG_INFINITY;
        assert!(!sk.compatible(&lo, &upper));
        assert!(sk.compatible(&lower, &upper));
    }

    #[test]
    fn workspace_shared_across_skeletons_with_equal_cols_stays_correct() {
        // Skeleton A: one free variable in one `>=` row — 2 structural
        // columns + 1 slack + 1 artificial... padded with a second free var
        // to land on the same total column count as skeleton B below, whose
        // artificial_start differs. A stale phase-1 cost vector (cached on
        // length alone) would let B's infeasibility go undetected.
        let mut a = Problem::new("a", Sense::Minimize);
        let x = a.add_var("x", f64::NEG_INFINITY, f64::INFINITY);
        let y = a.add_var("y", f64::NEG_INFINITY, f64::INFINITY);
        a.set_objective([(x, 1.0), (y, 0.0)]);
        a.add_constraint("lo", [(x, 1.0)], ConstraintOp::Ge, 1.0);
        let (la, ua) = (vec![f64::NEG_INFINITY; 2], vec![f64::INFINITY; 2]);
        let sk_a = StandardFormSkeleton::new(&a, &la, &ua).unwrap();

        let mut b = Problem::new("b", Sense::Minimize);
        let z = b.add_var("z", f64::NEG_INFINITY, f64::INFINITY);
        b.set_objective([(z, 1.0)]);
        b.add_constraint("e1", [(z, 1.0)], ConstraintOp::Eq, 5.0);
        b.add_constraint("e2", [(z, 1.0)], ConstraintOp::Eq, 3.0);
        let (lb, ub) = (vec![f64::NEG_INFINITY], vec![f64::INFINITY]);
        let sk_b = StandardFormSkeleton::new(&b, &lb, &ub).unwrap();

        let mut ws = SimplexWorkspace::default();
        let ra = solve_with_skeleton(&sk_a, &mut ws, &la, &ua, None, 1_000).unwrap();
        assert!((ra.objective - 1.0).abs() < 1e-6);
        // Contradictory equalities: must be infeasible even though the
        // workspace was just used for a different skeleton.
        let rb = solve_with_skeleton(&sk_b, &mut ws, &lb, &ub, None, 1_000);
        assert!(matches!(rb, Err(LpError::Infeasible)), "{rb:?}");
    }

    #[test]
    fn workspace_is_reusable_across_many_solves() {
        let (p, lower, upper) = knapsack();
        let sk = StandardFormSkeleton::new(&p, &lower, &upper).unwrap();
        let mut ws = SimplexWorkspace::default();
        let reference = solve_with_skeleton(&sk, &mut ws, &lower, &upper, None, 10_000)
            .unwrap()
            .objective;
        for _ in 0..50 {
            let r = solve_with_skeleton(&sk, &mut ws, &lower, &upper, None, 10_000).unwrap();
            assert!((r.objective - reference).abs() < 1e-9);
        }
    }
}
