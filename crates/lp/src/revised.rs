//! Sparse revised simplex with an LU-factorized basis.
//!
//! Third solver engine next to [`crate::seed_baseline`] and the dense
//! tableau of [`crate::simplex`]. It shares the dense engine's
//! [`StandardFormSkeleton`] (same variable mapping, row layout, span rows and
//! per-node RHS patching) but replaces the O(m·cols)-per-pivot tableau with:
//!
//! * the constraint matrix held once in CSC form ([`crate::sparse`]),
//! * the basis kept as a sparse LU factorization with product-form eta
//!   updates and periodic refactorization ([`crate::lu`]),
//! * sparse FTRAN/BTRAN solves for the entering column and the pricing
//!   duals, and
//! * **partial pricing** in the classic *multiple pricing* form: a full
//!   Dantzig scan every few iterations shortlists the most negative
//!   reduced-cost columns, and the iterations in between price only that
//!   shortlist. Pivot quality stays near-Dantzig (the entering column right
//!   after a scan *is* the global most-negative one, so branch & bound sees
//!   the same vertices as the dense engine) while the per-iteration pricing
//!   cost drops from O(nnz(A)) to O(shortlist).
//!
//! Per-iteration cost drops from O(m·cols) to O(nnz). Warm starts across
//! branch & bound nodes re-derive the node RHS *through the factorization*
//! (`x_B = B⁻¹·b`) instead of through a basis inverse embedded in a reused
//! tableau, so there is no analogue of the dense engine's `REUSE_REFRESH`
//! drift ceiling: every refactorization recomputes `x_B` from scratch, and
//! an explicit residual check (`‖B·x_B − b‖∞`) at each reuse converts drift
//! into a counted refresh instead of a blind cold refill.
//!
//! Infinite span-row right-hand sides (branchable variables with no upper
//! bound) cannot flow through LU solves the way they flow through dense
//! tableau arithmetic, so the RHS is carried as the pair `b = b_f + ∞·b_w`
//! and the basic solution as `x = x_f + ∞·x_w`; a basic value is "infinite"
//! exactly when its `x_w` weight is positive, which is what the ratio tests
//! check.
//!
//! Three optional upgrades, each flagged in
//! [`crate::problem::SolveOptions`], modernize the hot path:
//!
//! * **Bounded-variable simplex** (skeleton built with
//!   [`StandardFormSkeleton::new_bounded`]): upper bounds live as a
//!   nonbasic-at-upper status plus a bound-flip ratio test instead of
//!   explicit span rows, so the effective RHS is
//!   `b_eff = b − Σ_{j at upper} u_j·A_j` and branch & bound bound
//!   overrides become status flips rather than span-RHS patches. The split
//!   `∞·b_w` machinery is inert here (`has_inf` is never set).
//! * **Forrest–Tomlin updates** ([`BasisFactorization::set_ft_mode`]):
//!   basis changes rewrite U in place instead of appending product-form
//!   etas, stretching the refactorization interval.
//! * **Dual steepest-edge pricing** for the warm-start repair: leaving rows
//!   are ranked by `δ²/γ` with reference-framework weights (`γ = 1` at
//!   repair start) maintained by the Forrest–Goldfarb update formula.

use crate::error::LpError;
use crate::lu::BasisFactorization;
use crate::problem::ConstraintOp;
use crate::problem::Problem;
use crate::simplex::{
    repair_pivot_cap, SimplexResult, StandardFormSkeleton, VarMap, WarmStart, COST_TOL,
    DUAL_PIVOT_TOL, FEAS_TOL, PIVOT_TOL, REUSE_HEALTH_LIMIT,
};
use crate::sparse::CscMatrix;

/// `x_w` weights below this magnitude count as exactly finite.
const INF_W_TOL: f64 = 1e-9;

/// Debug aid: set `REVISED_TRACE=1` to log why warm-start reuses fall back
/// to the cold path (each label marks one bail-out site in `try_reuse`).
fn trace(label: &str) {
    if std::env::var_os("REVISED_TRACE").is_some() {
        eprintln!("reuse-fallback: {label}");
    }
}

/// Eta-file length (as a multiple of [`eta_limit`]) beyond which a solve
/// whose refactorizations keep failing is declared numerically lost.
const ETA_GIVE_UP_FACTOR: usize = 6;

/// Internal abort reason: either a real LP outcome or numerical trouble
/// that warrants one stabilized cold restart.
enum SolveAbort {
    Lp(LpError),
    Numerical,
}

impl From<LpError> for SolveAbort {
    fn from(e: LpError) -> Self {
        SolveAbort::Lp(e)
    }
}

/// Reusable state of the revised engine: the CSC matrix, the factorized
/// basis, the split RHS/solution vectors and all scratch buffers. One
/// workspace serves an entire branch & bound tree.
#[derive(Debug, Clone, Default)]
pub struct RevisedWorkspace {
    a: CscMatrix,
    triplets: Vec<(usize, usize, f64)>,
    bf: BasisFactorization,
    basis: Vec<usize>,
    is_basic: Vec<bool>,
    /// Node RHS, row space: actual value is `b_f + ∞·b_w`.
    b_f: Vec<f64>,
    b_w: Vec<f64>,
    /// Basic solution, basis-position space: `x_f + ∞·x_w`.
    x_f: Vec<f64>,
    x_w: Vec<f64>,
    /// Per-variable mapping constant for the current node.
    shifts: Vec<f64>,
    obj_constant: f64,
    b_scale: f64,
    has_inf: bool,
    /// Row-sign convention chosen by the fill that built the CSC matrix.
    fill_flip: Vec<f64>,
    /// Phase-1 cost (1 on artificial columns).
    phase1_cost: Vec<f64>,
    // Scratch (retained across solves).
    y: Vec<f64>,
    w: Vec<f64>,
    d: Vec<f64>,
    alpha: Vec<f64>,
    resid: Vec<f64>,
    /// Multiple-pricing shortlist: the most negative reduced-cost columns
    /// found by the last full pricing scan, re-priced (cheaply) each
    /// iteration until the list dries up.
    candidates: Vec<usize>,
    /// Eta count at which the next refactorization attempt is allowed
    /// (backed off after a failed attempt so a temporarily singular basis
    /// cannot trigger an O(m²) factorization per pivot).
    refactor_after: usize,
    /// Force Bland's rule from iteration 0 (set for the stabilized retry
    /// after numerical trouble).
    force_bland: bool,
    /// `true` when the factorized state is phase-2 optimal and the next
    /// solve may warm-start from it.
    reusable: bool,
    skeleton_tag: usize,
    warm_hits: usize,
    warm_misses: usize,
    // Bounded-variable mode (skeletons built with
    // `StandardFormSkeleton::new_bounded`).
    /// Per standard column: its implicit upper bound for the current node
    /// (`+∞` when unbounded; recomputed per node from the bound overrides).
    col_upper: Vec<f64>,
    /// Per standard column: `true` when nonbasic at its (finite) upper
    /// bound. This is the status the bound-flip ratio test toggles and the
    /// status branch & bound bound overrides flip.
    at_upper: Vec<bool>,
    /// Effective RHS `b_f − Σ_{j at upper} u_j·A_j`, kept in sync with
    /// `at_upper`; equals `b_f` bitwise when no column is at its upper.
    b_eff: Vec<f64>,
    /// Dual steepest-edge weights `γ_i ≈ ‖B⁻ᵀe_i‖²` (reference framework:
    /// reset to 1 at each repair start) and the `τ = B⁻¹ρ_r` scratch of the
    /// Forrest–Goldfarb update.
    dse_gamma: Vec<f64>,
    dse_tau: Vec<f64>,
    /// Use dual steepest-edge row selection in the warm-start repair.
    use_dse: bool,
    /// Bound flips performed by the bounded-variable ratio test.
    bound_flips: usize,
}

impl RevisedWorkspace {
    /// Cumulative `(hits, misses)` of warm-start attempts.
    pub fn warm_start_counts(&self) -> (usize, usize) {
        (self.warm_hits, self.warm_misses)
    }

    /// Cumulative `(factorizations, refactorizations)`: total LU builds and
    /// the subset triggered mid-stream by the eta limit or a drift check.
    pub fn factorization_counts(&self) -> (usize, usize) {
        (self.bf.factorizations, self.bf.refactorizations)
    }

    /// The basis left by the last successful solve (empty before any).
    /// A caller holding this basis is authorized to pass it as the
    /// `basis_hint` of a later solve against the *same* skeleton.
    pub fn last_basis(&self) -> &[usize] {
        &self.basis
    }

    /// Declares the factorized state stale so the next solve takes the cold
    /// path. Must be called whenever the skeleton this workspace was filled
    /// against is dropped or rebuilt: the warm-reuse guard compares skeleton
    /// *addresses*, and a fresh allocation can legally reuse a freed one.
    pub fn invalidate(&mut self) {
        self.reusable = false;
        self.skeleton_tag = 0;
    }

    /// Selects the factor-update scheme and the repair pricing rule for
    /// every subsequent solve. Switching the Forrest–Tomlin mode changes
    /// the factor representation, so the next solve is forced onto the cold
    /// path (whose fill refactorizes from scratch); toggling steepest-edge
    /// pricing needs no invalidation.
    pub fn configure(&mut self, forrest_tomlin: bool, dual_steepest_edge: bool) {
        if forrest_tomlin != self.bf.ft_mode() {
            self.bf.set_ft_mode(forrest_tomlin);
            self.reusable = false;
        }
        self.use_dse = dual_steepest_edge;
    }

    /// Cumulative `(bound_flips, ft_updates)`: bound-flip ratio-test hits
    /// (bounded-variable mode) and Forrest–Tomlin factor updates.
    pub fn pivot_counts(&self) -> (usize, usize) {
        (self.bound_flips, self.bf.ft_updates)
    }
}

/// Outcome of a warm-start attempt (mirrors the dense engine).
enum ReuseOutcome {
    Reused(usize),
    Infeasible,
    Fallback,
}

enum RepairResult {
    Done(usize),
    Infeasible,
    GaveUp,
}

/// Solves the continuous relaxation described by `skeleton` under the given
/// bound overrides with the sparse revised simplex.
///
/// Drop-in equivalent of [`crate::simplex::solve_with_skeleton`]: same
/// skeleton, same warm-start contract (`basis_hint` authorizes reusing the
/// workspace's last optimal basis), same result type.
pub fn solve_with_skeleton_revised(
    skeleton: &StandardFormSkeleton,
    ws: &mut RevisedWorkspace,
    lower: &[f64],
    upper: &[f64],
    basis_hint: Option<&[usize]>,
    max_iterations: usize,
) -> Result<SimplexResult, LpError> {
    for i in 0..lower.len() {
        if lower[i] > upper[i] + FEAS_TOL {
            return Err(LpError::Infeasible);
        }
    }
    debug_assert!(
        skeleton.compatible(lower, upper),
        "bound overrides changed the layout"
    );

    let tag = skeleton as *const StandardFormSkeleton as usize;
    let mut solver = RSolver { sk: skeleton, ws };

    let mut warm = WarmStart::Cold;
    let mut warm_iterations: Option<usize> = None;
    if basis_hint.is_some() && solver.ws.reusable && solver.ws.skeleton_tag == tag {
        solver.ws.reusable = false; // re-armed only on success
        match solver.try_reuse(lower, upper) {
            ReuseOutcome::Reused(pivots) => {
                let m = skeleton.m_total;
                let polish_cap = (2 * (m + skeleton.cols)).max(64).min(max_iterations);
                match solver.optimize(&skeleton.c, polish_cap, false) {
                    Ok(n) => {
                        warm = WarmStart::Hit;
                        warm_iterations = Some(n + pivots);
                        solver.ws.warm_hits += 1;
                    }
                    Err(_) => {
                        trace("polish-err");
                        warm = WarmStart::Miss
                    }
                }
            }
            ReuseOutcome::Infeasible => {
                solver.ws.warm_hits += 1;
                solver.ws.reusable = true;
                return Err(LpError::Infeasible);
            }
            ReuseOutcome::Fallback => warm = WarmStart::Miss,
        }
        if warm == WarmStart::Miss {
            solver.ws.warm_misses += 1;
        }
    }

    let iterations = match warm_iterations {
        Some(n) => n,
        None => {
            solver.fill(lower, upper);
            solver.ws.skeleton_tag = tag;
            match solver.optimize_two_phase(max_iterations) {
                Ok(n) => n,
                Err(SolveAbort::Lp(e)) => {
                    solver.ws.reusable = false;
                    return Err(e);
                }
                Err(SolveAbort::Numerical) => {
                    // Numerical trouble (a basis the LU cannot trust, e.g.
                    // after a noise-level pivot): restart once from a fresh
                    // slack/artificial basis under Bland's rule, the most
                    // conservative pivot regime.
                    solver.fill(lower, upper);
                    solver.ws.force_bland = true;
                    let retry = solver.optimize_two_phase(max_iterations);
                    solver.ws.force_bland = false;
                    match retry {
                        Ok(n) => n,
                        Err(SolveAbort::Lp(e)) => {
                            solver.ws.reusable = false;
                            return Err(e);
                        }
                        Err(SolveAbort::Numerical) => {
                            solver.ws.reusable = false;
                            return Err(LpError::IterationLimit {
                                iterations: max_iterations,
                            });
                        }
                    }
                }
            }
        }
    };

    let values = solver.extract_original_values(lower, upper);
    let min_obj = solver.objective_for(&solver.sk.c) + solver.ws.obj_constant;
    let objective = min_obj * skeleton.sense_factor;
    let basis = solver.ws.basis.clone();
    solver.ws.reusable = true;

    Ok(SimplexResult {
        values,
        objective,
        iterations,
        basis,
        warm,
    })
}

/// One-shot convenience mirroring [`crate::simplex::solve_relaxation`].
pub fn solve_relaxation_revised(
    problem: &Problem,
    lower: &[f64],
    upper: &[f64],
    max_iterations: usize,
) -> Result<SimplexResult, LpError> {
    let skeleton = StandardFormSkeleton::new(problem, lower, upper)?;
    let mut ws = RevisedWorkspace::default();
    solve_with_skeleton_revised(&skeleton, &mut ws, lower, upper, None, max_iterations)
}

struct RSolver<'a> {
    sk: &'a StandardFormSkeleton,
    ws: &'a mut RevisedWorkspace,
}

impl<'a> RSolver<'a> {
    fn compute_node_scalars(&mut self, lower: &[f64], upper: &[f64]) {
        let sk = self.sk;
        let ws = &mut *self.ws;
        ws.shifts.clear();
        ws.shifts.resize(sk.var_map.len(), 0.0);
        for (i, map) in sk.var_map.iter().enumerate() {
            ws.shifts[i] = match *map {
                VarMap::Shifted { .. } => lower[i],
                VarMap::Mirrored { .. } => upper[i],
                VarMap::Fixed => lower[i],
                VarMap::Split { .. } => 0.0,
            };
        }
        ws.obj_constant = sk.obj_base
            + sk.obj_terms
                .iter()
                .map(|&(var, coef)| coef * ws.shifts[var])
                .sum::<f64>();
        // Per-node implicit column bounds. Slacks and artificials are
        // unbounded above; in legacy (span-row) mode every column is, which
        // makes the bounded-variable code paths degrade to the exact legacy
        // arithmetic.
        ws.col_upper.clear();
        ws.col_upper.resize(sk.cols, f64::INFINITY);
        if sk.is_bounded() {
            for (i, map) in sk.var_map.iter().enumerate() {
                match *map {
                    VarMap::Shifted { col } | VarMap::Mirrored { col } => {
                        ws.col_upper[col] = (upper[i] - lower[i]).max(0.0);
                    }
                    _ => {}
                }
            }
        }
    }

    /// Cold fill: rebuilds the CSC matrix (with this node's row-sign
    /// convention), the split RHS, the slack/artificial basis and the
    /// trivial (identity) factorization.
    fn fill(&mut self, lower: &[f64], upper: &[f64]) {
        self.compute_node_scalars(lower, upper);
        let sk = self.sk;
        let ws = &mut *self.ws;
        ws.reusable = false;
        let m = sk.m_total;
        ws.triplets.clear();
        ws.fill_flip.clear();
        ws.fill_flip.resize(m, 1.0);
        ws.b_f.clear();
        ws.b_f.resize(m, 0.0);
        ws.b_w.clear();
        ws.b_w.resize(m, 0.0);
        ws.basis.clear();
        ws.basis.resize(m, 0);
        ws.is_basic.clear();
        ws.is_basic.resize(sk.cols, false);
        ws.phase1_cost.clear();
        ws.phase1_cost.resize(sk.cols, 0.0);
        for j in sk.artificial_start..sk.cols {
            ws.phase1_cost[j] = 1.0;
        }
        ws.b_scale = 0.0;
        ws.has_inf = false;
        ws.refactor_after = 0;

        for (ri, row) in sk.rows.iter().enumerate() {
            let rhs = row.base_rhs
                - row
                    .terms
                    .iter()
                    .map(|&(var, coef)| coef * ws.shifts[var])
                    .sum::<f64>();
            let flip = rhs < 0.0;
            let sign = if flip { -1.0 } else { 1.0 };
            let effective_op = match (row.op, flip) {
                (ConstraintOp::Le, false) | (ConstraintOp::Ge, true) => ConstraintOp::Le,
                (ConstraintOp::Ge, false) | (ConstraintOp::Le, true) => ConstraintOp::Ge,
                (ConstraintOp::Eq, _) => ConstraintOp::Eq,
            };
            ws.fill_flip[ri] = sign;
            for &(col, coef) in &row.scatter {
                ws.triplets.push((col, ri, sign * coef));
            }
            let slack_col = sk.num_struct + ri;
            let art_col = sk.artificial_start + ri;
            let b = sign * rhs;
            ws.b_f[ri] = b;
            ws.b_scale = ws.b_scale.max(b.abs());
            let basic = match effective_op {
                ConstraintOp::Le => {
                    ws.triplets.push((slack_col, ri, 1.0));
                    slack_col
                }
                ConstraintOp::Ge => {
                    ws.triplets.push((slack_col, ri, -1.0));
                    ws.triplets.push((art_col, ri, 1.0));
                    art_col
                }
                ConstraintOp::Eq => {
                    ws.triplets.push((art_col, ri, 1.0));
                    art_col
                }
            };
            ws.basis[ri] = basic;
            ws.is_basic[basic] = true;
        }

        for (k, &(col, var)) in sk.span_rows.iter().enumerate() {
            let ri = sk.m_constraints + k;
            let slack_col = sk.num_struct + ri;
            ws.triplets.push((col, ri, 1.0));
            ws.triplets.push((slack_col, ri, 1.0));
            let span = (upper[var] - lower[var]).max(0.0);
            if span.is_finite() {
                ws.b_f[ri] = span;
                ws.b_scale = ws.b_scale.max(span);
            } else {
                ws.b_w[ri] = 1.0;
                ws.has_inf = true;
            }
            ws.basis[ri] = slack_col;
            ws.is_basic[slack_col] = true;
        }

        ws.a.assemble(m, sk.cols, &ws.triplets);
        // Cold fills start every column at its lower bound, so the
        // effective RHS is the raw one.
        ws.at_upper.clear();
        ws.at_upper.resize(sk.cols, false);
        ws.b_eff.clear();
        ws.b_eff.extend_from_slice(&ws.b_f);
        // The slack/artificial basis is the identity; the factorization of
        // an identity cannot fail.
        ws.bf
            .refactorize(&ws.a, &ws.basis, false)
            .expect("identity basis factorization");
        ws.x_f.clear();
        ws.x_f.extend_from_slice(&ws.b_f);
        ws.x_w.clear();
        ws.x_w.extend_from_slice(&ws.b_w);
    }

    /// Rebuilds `b_eff = b_f − Σ_{j at upper} u_j·A_j` from scratch (used
    /// when the node RHS or the bound set changed wholesale).
    fn rebuild_effective_rhs(&mut self) {
        let ws = &mut *self.ws;
        ws.b_eff.clear();
        ws.b_eff.extend_from_slice(&ws.b_f);
        for j in 0..ws.at_upper.len() {
            if ws.at_upper[j] {
                let u = ws.col_upper[j];
                if u != 0.0 {
                    ws.a.axpy_col(j, -u, &mut ws.b_eff);
                }
            }
        }
    }

    /// Flips column `j`'s nonbasic status and keeps `b_eff` in sync.
    fn set_at_upper(&mut self, j: usize, to_upper: bool) {
        let ws = &mut *self.ws;
        if ws.at_upper[j] == to_upper {
            return;
        }
        ws.at_upper[j] = to_upper;
        let u = ws.col_upper[j];
        debug_assert!(!to_upper || u.is_finite());
        if u != 0.0 && u.is_finite() {
            let s = if to_upper { -u } else { u };
            ws.a.axpy_col(j, s, &mut ws.b_eff);
        }
    }

    /// Refactorizes and recomputes `x = B⁻¹·b` from scratch. Returns `false`
    /// (leaving the still-valid eta representation in place) if the basis is
    /// numerically singular.
    fn refactor_and_recompute(&mut self, refresh: bool) -> bool {
        let ws = &mut *self.ws;
        if ws.bf.refactorize(&ws.a, &ws.basis, refresh).is_err() {
            return false;
        }
        ws.refactor_after = 0;
        ws.x_f.clear();
        ws.x_f.extend_from_slice(&ws.b_eff);
        ws.bf.ftran(&mut ws.x_f);
        ws.x_w.clear();
        ws.x_w.resize(ws.b_w.len(), 0.0);
        if ws.has_inf {
            ws.x_w.copy_from_slice(&ws.b_w);
            ws.bf.ftran(&mut ws.x_w);
            for v in ws.x_w.iter_mut() {
                if v.abs() <= INF_W_TOL {
                    *v = 0.0;
                }
            }
        }
        true
    }

    /// Applies the pivot `(leave row, entering column)` given the FTRAN'd
    /// entering column in `ws.w`: updates the basic solution, the basis
    /// bookkeeping and the eta file, refactorizing at the eta limit.
    ///
    /// Returns `Err(SolveAbort::Numerical)` when the eta file has grown far
    /// past the limit because refactorizations keep failing — the basis has
    /// degenerated numerically and the caller must restart.
    fn pivot(&mut self, leave: usize, enter: usize) -> Result<(), SolveAbort> {
        let m = self.sk.m_total;
        {
            let ws = &mut *self.ws;
            let wr = ws.w[leave];
            debug_assert!(wr.abs() > PIVOT_TOL);
            let theta_f = ws.x_f[leave] / wr;
            let theta_w = ws.x_w[leave] / wr;
            for i in 0..m {
                if i == leave {
                    continue;
                }
                let wi = ws.w[i];
                if wi != 0.0 {
                    ws.x_f[i] -= theta_f * wi;
                    ws.x_w[i] -= theta_w * wi;
                    if ws.x_w[i].abs() <= INF_W_TOL {
                        ws.x_w[i] = 0.0;
                    }
                }
            }
            ws.x_f[leave] = theta_f;
            ws.x_w[leave] = if theta_w.abs() <= INF_W_TOL {
                0.0
            } else {
                theta_w
            };
            let old = ws.basis[leave];
            ws.is_basic[old] = false;
            ws.basis[leave] = enter;
            ws.is_basic[enter] = true;
        }
        self.update_factors(leave)
    }

    /// Shared factor-update tail of every basis change: `ws.w` must hold
    /// the FTRAN'd entering column (`B_old⁻¹·a_enter`) and the basis
    /// bookkeeping must already reflect the new basis. Applies the update
    /// (product-form eta or Forrest–Tomlin, per the factorization's mode)
    /// and refactorizes at the scheme's update limit.
    fn update_factors(&mut self, leave: usize) -> Result<(), SolveAbort> {
        let m = self.sk.m_total;
        if self.ws.bf.update(leave, &self.ws.w).is_err() {
            // Forrest–Tomlin rejected the replacement as numerically
            // singular. The basis bookkeeping already changed, so the old
            // factors no longer match it: refactorize from scratch now.
            if !self.refactor_and_recompute(true) {
                return Err(SolveAbort::Numerical);
            }
            return Ok(());
        }
        let limit = self.ws.bf.update_limit(m);
        let count = self.ws.bf.eta_count();
        if count >= limit && count >= self.ws.refactor_after {
            if self.refactor_and_recompute(true) {
                self.ws.refactor_after = 0;
            } else {
                // The update representation stays valid; back off so a
                // (temporarily) singular basis cannot cost an O(m²)
                // factorization attempt on every pivot.
                self.ws.refactor_after = count + limit;
                if count >= ETA_GIVE_UP_FACTOR * limit {
                    return Err(SolveAbort::Numerical);
                }
            }
        }
        Ok(())
    }

    /// Bounded-variable basis change: the entering column moves by `t` in
    /// direction `dir` (+1 when entering from its lower bound, −1 from its
    /// upper) until the basic variable in `leave` hits the bound selected
    /// by `leave_to_upper`. `ws.w` must hold `B⁻¹·a_enter`. The `∞·x_w`
    /// machinery is untouched: bounded skeletons never produce infinite
    /// RHS components.
    fn pivot_step(
        &mut self,
        leave: usize,
        enter: usize,
        dir: f64,
        leave_to_upper: bool,
    ) -> Result<(), SolveAbort> {
        let m = self.sk.m_total;
        let old = self.ws.basis[leave];
        {
            let ws = &mut *self.ws;
            let wr = dir * ws.w[leave];
            debug_assert!(wr.abs() > PIVOT_TOL);
            let target = if leave_to_upper {
                ws.col_upper[old]
            } else {
                0.0
            };
            let t = (ws.x_f[leave] - target) / wr;
            for i in 0..m {
                if i == leave {
                    continue;
                }
                let wi = dir * ws.w[i];
                if wi != 0.0 {
                    ws.x_f[i] -= t * wi;
                }
            }
            ws.x_f[leave] = if dir > 0.0 {
                t
            } else {
                ws.col_upper[enter] - t
            };
        }
        if self.ws.at_upper[enter] {
            self.set_at_upper(enter, false);
        }
        {
            let ws = &mut *self.ws;
            ws.is_basic[old] = false;
            ws.basis[leave] = enter;
            ws.is_basic[enter] = true;
        }
        if leave_to_upper {
            self.set_at_upper(old, true);
        }
        self.update_factors(leave)
    }

    /// Bound flip: the entering column hit its own opposite bound before
    /// any basic variable blocked. No basis change — only the basic values
    /// and the column's status move. `ws.w` must hold `B⁻¹·a_enter`.
    fn bound_flip(&mut self, enter: usize, dir: f64) {
        let m = self.sk.m_total;
        let span = self.ws.col_upper[enter];
        debug_assert!(span.is_finite());
        {
            let ws = &mut *self.ws;
            for i in 0..m {
                let wi = dir * ws.w[i];
                if wi != 0.0 {
                    ws.x_f[i] -= span * wi;
                }
            }
        }
        let now_upper = !self.ws.at_upper[enter];
        self.set_at_upper(enter, now_upper);
        self.ws.bound_flips += 1;
    }

    /// Primal revised simplex iterations for the given cost vector.
    fn optimize(
        &mut self,
        cost: &[f64],
        max_iterations: usize,
        allow_artificials: bool,
    ) -> Result<usize, SolveAbort> {
        let sk = self.sk;
        let m = sk.m_total;
        let cols = sk.cols;
        let enterable_end = if allow_artificials {
            cols
        } else {
            sk.artificial_start
        };
        let bland_threshold = 4 * (m + cols);
        // The shortlist is only meaningful for one cost vector / phase.
        self.ws.candidates.clear();

        let mut iterations = 0usize;
        loop {
            if iterations >= max_iterations {
                return Err(LpError::IterationLimit { iterations }.into());
            }
            // Pricing duals y = B⁻ᵀ·c_B.
            {
                let ws = &mut *self.ws;
                ws.y.clear();
                ws.y.extend(ws.basis.iter().map(|&b| cost[b]));
                ws.bf.btran(&mut ws.y);
            }
            let use_bland = self.ws.force_bland || iterations >= bland_threshold;
            let entering = if use_bland {
                self.price_bland(cost, enterable_end)
            } else {
                self.price_partial(cost, enterable_end)
            };
            let Some(enter) = entering else {
                return Ok(iterations);
            };

            // Entering column w = B⁻¹·a_enter.
            {
                let ws = &mut *self.ws;
                ws.w.clear();
                ws.w.resize(m, 0.0);
                ws.a.scatter_col(enter, &mut ws.w);
                ws.bf.ftran(&mut ws.w);
            }

            // Two-pass ratio test with the dense engine's exact semantics
            // (minimum ratio, largest pivot among near-ties) so both engines
            // walk the same vertices — plus a Harris-style fallback: when
            // the exact rule would pivot on a noise-level entry (|w| ≲ 1e-7,
            // which de-conditions the LU factorization), the minimum ratio
            // is relaxed by the feasibility tolerance to reach a safe pivot.
            // A tiny `w_i` inflates its relaxed ratio by `tol / w_i`, so the
            // fallback escapes the noise row whenever a healthy pivot exists.
            //
            // In bounded-variable mode the test is two-sided: the entering
            // column moves in `dir` (−1 when entering from its upper
            // bound), basic variables can block at their own upper bounds
            // (`dir·w < 0` rows), and the entering column's own span is a
            // blocking "row" of its own — hitting it first is a bound flip,
            // not a pivot. With every `col_upper` infinite (legacy
            // skeletons) all of this degrades to the exact legacy
            // arithmetic.
            let dir = if self.ws.at_upper[enter] { -1.0 } else { 1.0 };
            let enter_span = self.ws.col_upper[enter];
            let mut best_ratio = f64::INFINITY;
            for i in 0..m {
                if self.ws.x_w[i] != 0.0 {
                    continue;
                }
                let a = dir * self.ws.w[i];
                if a > PIVOT_TOL {
                    let ratio = self.ws.x_f[i] / a;
                    if ratio < best_ratio {
                        best_ratio = ratio;
                    }
                } else if a < -PIVOT_TOL {
                    let u = self.ws.col_upper[self.ws.basis[i]];
                    if u.is_finite() {
                        let ratio = (self.ws.x_f[i] - u) / a;
                        if ratio < best_ratio {
                            best_ratio = ratio;
                        }
                    }
                }
            }
            if best_ratio.is_infinite() && enter_span.is_infinite() {
                return Err(LpError::Unbounded.into());
            }
            if enter_span <= best_ratio {
                self.bound_flip(enter, dir);
                iterations += 1;
                continue;
            }
            let pick = |bound: f64, ws: &RevisedWorkspace| -> (Option<(usize, bool)>, f64) {
                let mut leave: Option<(usize, bool)> = None;
                let mut best_pivot = 0.0f64;
                for i in 0..m {
                    if ws.x_w[i] != 0.0 {
                        continue;
                    }
                    let a = dir * ws.w[i];
                    let (ratio, to_upper);
                    if a > PIVOT_TOL {
                        ratio = ws.x_f[i] / a;
                        to_upper = false;
                    } else if a < -PIVOT_TOL {
                        let u = ws.col_upper[ws.basis[i]];
                        if !u.is_finite() {
                            continue;
                        }
                        ratio = (ws.x_f[i] - u) / a;
                        to_upper = true;
                    } else {
                        continue;
                    }
                    if ratio <= bound {
                        let better = if use_bland {
                            leave.is_none_or(|(l, _)| ws.basis[i] < ws.basis[l])
                        } else {
                            a.abs() > best_pivot
                        };
                        if better {
                            best_pivot = a.abs();
                            leave = Some((i, to_upper));
                        }
                    }
                }
                (leave, best_pivot)
            };
            let tie_window = best_ratio.abs() * 1e-9 + 1e-12;
            let (mut leave, chosen_pivot) = pick(best_ratio + tie_window, self.ws);
            if leave.is_none_or(|_| chosen_pivot <= 1e-7) && !use_bland {
                // Dangerous (or no) pivot under the exact rule: relax the
                // step bound by the feasibility tolerance and retry. The
                // relaxed step stays capped by the entering span so a
                // "safer" pivot cannot push the entering column past its
                // own bound by more than the tolerance.
                let feas_tol = FEAS_TOL * (1.0 + self.ws.b_scale);
                let mut theta_max = enter_span;
                for i in 0..m {
                    if self.ws.x_w[i] != 0.0 {
                        continue;
                    }
                    let a = dir * self.ws.w[i];
                    if a > PIVOT_TOL {
                        let relaxed = (self.ws.x_f[i] + feas_tol) / a;
                        if relaxed < theta_max {
                            theta_max = relaxed;
                        }
                    } else if a < -PIVOT_TOL {
                        let u = self.ws.col_upper[self.ws.basis[i]];
                        if u.is_finite() {
                            let relaxed = (self.ws.x_f[i] - u - feas_tol) / a;
                            if relaxed < theta_max {
                                theta_max = relaxed;
                            }
                        }
                    }
                }
                let (relaxed_leave, relaxed_pivot) = pick(theta_max, self.ws);
                if relaxed_leave.is_some() && relaxed_pivot > chosen_pivot {
                    leave = relaxed_leave;
                }
            }
            let Some((leave, leave_to_upper)) = leave else {
                return Err(LpError::Unbounded.into());
            };

            if self.sk.is_bounded() {
                self.pivot_step(leave, enter, dir, leave_to_upper)?;
            } else {
                debug_assert!(dir > 0.0 && !leave_to_upper);
                self.pivot(leave, enter)?;
            }
            iterations += 1;
        }
    }

    /// Multiple pricing. Re-price the current shortlist (a handful of
    /// `col_dot`s) and take its most negative member; when the shortlist
    /// dries up, run one full Dantzig scan to rebuild it — the entering
    /// column of that iteration is then the *global* most negative, and
    /// optimality is certified exactly when a full scan finds nothing.
    fn price_partial(&mut self, cost: &[f64], enterable_end: usize) -> Option<usize> {
        /// Shortlist capacity: enough to amortize the full scans without
        /// letting pivots drift far from the Dantzig choice.
        const SHORTLIST: usize = 24;
        let RevisedWorkspace {
            candidates,
            a,
            is_basic,
            y,
            at_upper,
            ..
        } = &mut *self.ws;

        // A column nonbasic at its upper bound improves the objective by
        // *decreasing*, so its pricing score is the negated reduced cost;
        // at-lower columns keep the plain Dantzig score. (`at_upper` is
        // all-false on legacy skeletons.)
        let score_of = |j: usize, d: f64| if at_upper[j] { -d } else { d };

        // Cheap pass over the existing shortlist.
        let mut best: Option<(usize, f64)> = None;
        candidates.retain(|&j| {
            if j >= enterable_end || is_basic[j] {
                return false;
            }
            let d = score_of(j, cost[j] - a.col_dot(j, y));
            if d < -COST_TOL {
                if best.is_none_or(|(_, b)| d < b) {
                    best = Some((j, d));
                }
                true
            } else {
                false
            }
        });
        if let Some((j, _)) = best {
            return Some(j);
        }

        // Full scan: rebuild the shortlist with the most negative columns
        // (simple bounded insertion keeps the worst member at the tail).
        candidates.clear();
        let mut scored: Vec<(usize, f64)> = Vec::with_capacity(SHORTLIST + 1);
        for j in 0..enterable_end {
            if is_basic[j] {
                continue;
            }
            let d = score_of(j, cost[j] - a.col_dot(j, y));
            if d < -COST_TOL {
                let at = scored.partition_point(|&(_, s)| s <= d);
                if at < SHORTLIST {
                    scored.insert(at, (j, d));
                    scored.truncate(SHORTLIST);
                }
            }
        }
        candidates.extend(scored.iter().map(|&(j, _)| j));
        scored.first().map(|&(j, _)| j)
    }

    /// Bland's rule (anti-cycling): first non-basic column with a negative
    /// reduced cost, scanning from column 0.
    fn price_bland(&mut self, cost: &[f64], enterable_end: usize) -> Option<usize> {
        let ws = &mut *self.ws;
        (0..enterable_end).find(|&j| {
            if ws.is_basic[j] {
                return false;
            }
            let d = cost[j] - ws.a.col_dot(j, &ws.y);
            let score = if ws.at_upper[j] { -d } else { d };
            score < -COST_TOL
        })
    }

    fn optimize_two_phase(&mut self, max_iterations: usize) -> Result<usize, SolveAbort> {
        let sk = self.sk;
        if sk.m_total == 0 {
            if sk.c.iter().any(|&c| c < -COST_TOL) {
                return Err(LpError::Unbounded.into());
            }
            return Ok(0);
        }

        let mut it1 = 0usize;
        let needs_phase1 = self.ws.basis.iter().any(|&b| b >= sk.artificial_start);
        if needs_phase1 {
            let phase1_cost = std::mem::take(&mut self.ws.phase1_cost);
            let r = self.optimize(&phase1_cost, max_iterations, true);
            let phase1_obj = self.objective_for(&phase1_cost);
            self.ws.phase1_cost = phase1_cost;
            it1 = r?;
            if phase1_obj > FEAS_TOL * (1.0 + self.ws.b_scale) {
                return Err(LpError::Infeasible.into());
            }
            self.expel_artificials()?;
        }

        let it2 = self.optimize(&self.sk.c, max_iterations.saturating_sub(it1), false)?;
        Ok(it1 + it2)
    }

    /// After phase 1, pivot basic artificials (value ≈ 0) out of the basis
    /// where a usable non-artificial pivot exists in their row.
    fn expel_artificials(&mut self) -> Result<(), SolveAbort> {
        let sk = self.sk;
        let m = sk.m_total;
        for i in 0..m {
            if self.ws.basis[i] < sk.artificial_start {
                continue;
            }
            // Row i of B⁻¹·A via BTRAN(e_i).
            {
                let ws = &mut *self.ws;
                ws.y.clear();
                ws.y.resize(m, 0.0);
                ws.y[i] = 1.0;
                ws.bf.btran(&mut ws.y);
            }
            let target = (0..sk.artificial_start)
                .find(|&j| !self.ws.is_basic[j] && self.ws.a.col_dot(j, &self.ws.y).abs() > 1e-7);
            if let Some(j) = target {
                let ws = &mut *self.ws;
                ws.w.clear();
                ws.w.resize(m, 0.0);
                ws.a.scatter_col(j, &mut ws.w);
                ws.bf.ftran(&mut ws.w);
                // The degenerate pivot must itself be safely sized, or it
                // would be exactly the noise pivot the ratio test avoids.
                if ws.w[i].abs() > 1e-7 {
                    self.pivot(i, j)?;
                }
            }
        }
        Ok(())
    }

    /// Warm start: re-derive this node's RHS through the factorized basis,
    /// verify the factorization against the node (residual drift check), and
    /// dual-repair any negative basic values.
    fn try_reuse(&mut self, lower: &[f64], upper: &[f64]) -> ReuseOutcome {
        let sk = self.sk;
        let m = sk.m_total;
        if m == 0
            || self.ws.basis.len() != m
            || self.ws.a.rows() != m
            || self.ws.a.cols() != sk.cols
            || self.ws.at_upper.len() != sk.cols
        {
            trace("shape");
            return ReuseOutcome::Fallback;
        }
        self.compute_node_scalars(lower, upper);

        // Long update files both slow solves and accumulate error: refresh
        // before trusting the factorization with a new node. (Only the
        // factorization is rebuilt here — this node's RHS is written, and
        // x = B⁻¹·b computed from it, just below.)
        if self.ws.bf.eta_count() >= self.ws.bf.update_limit(m) {
            let ws = &mut *self.ws;
            if ws.bf.refactorize(&ws.a, &ws.basis, true).is_err() {
                trace("refactor");
                return ReuseOutcome::Fallback;
            }
            ws.refactor_after = 0;
        }

        let ws = &mut *self.ws;
        ws.has_inf = false;
        for (ri, row) in sk.rows.iter().enumerate() {
            let raw = row.base_rhs
                - row
                    .terms
                    .iter()
                    .map(|&(var, coef)| coef * ws.shifts[var])
                    .sum::<f64>();
            ws.b_f[ri] = ws.fill_flip[ri] * raw;
            ws.b_w[ri] = 0.0;
        }
        for (k, &(_, var)) in sk.span_rows.iter().enumerate() {
            let ri = sk.m_constraints + k;
            let span = (upper[var] - lower[var]).max(0.0);
            if span.is_finite() {
                ws.b_f[ri] = span;
                ws.b_w[ri] = 0.0;
            } else {
                ws.b_f[ri] = 0.0;
                ws.b_w[ri] = 1.0;
                ws.has_inf = true;
            }
        }
        if sk.is_bounded() {
            // This is the bounded-variable warm start in full: the node's
            // bound overrides arrive as fresh `col_upper` values with the
            // *statuses* carried over — a status flip, not an RHS patch. A
            // status can outlive the bound that made it meaningful (a node
            // widening an upper back to ∞): demote it to at-lower and let
            // the dual repair re-establish feasibility.
            for j in 0..sk.cols {
                if ws.at_upper[j] && !ws.col_upper[j].is_finite() {
                    ws.at_upper[j] = false;
                }
            }
        }
        self.rebuild_effective_rhs();

        // x = B⁻¹·b through the factorization.
        let ws = &mut *self.ws;
        ws.x_f.clear();
        ws.x_f.extend_from_slice(&ws.b_eff);
        ws.bf.ftran(&mut ws.x_f);
        ws.x_w.clear();
        ws.x_w.resize(m, 0.0);
        if ws.has_inf {
            ws.x_w.copy_from_slice(&ws.b_w);
            ws.bf.ftran(&mut ws.x_w);
        }
        let mut b_scale = 0.0f64;
        for i in 0..m {
            if ws.x_f[i].abs() > REUSE_HEALTH_LIMIT {
                trace("health");
                return ReuseOutcome::Fallback;
            }
            if ws.x_w[i].abs() <= INF_W_TOL {
                ws.x_w[i] = 0.0;
            }
            // Rows with x_w ≠ 0 sit at ±∞ in the big-M reading of the
            // infinite span rows. A −∞ row (a branch just turned this
            // variable's span finite) is simply the most negative leaving
            // candidate of the dual repair; +∞ rows usually cancel back to
            // finite once the negative rows are repaired. Irreparable
            // leftovers (±∞ on structural or artificial rows) are caught by
            // the post-repair validation below.
            if ws.x_w[i] == 0.0 {
                b_scale = b_scale.max(ws.x_f[i].abs());
            }
        }
        ws.b_scale = b_scale;
        let tol = FEAS_TOL * (1.0 + b_scale);

        // Drift check: the factorization must still reproduce B·x_f = b_f.
        // (The finite and infinite components are independent, so checking
        // the finite part covers every row.) A failed check triggers one
        // counted refresh; failing again means the basis is untrustworthy.
        if !self.node_residual_ok()
            && (!self.refactor_and_recompute(true) || !self.node_residual_ok())
        {
            trace("residual");
            return ReuseOutcome::Fallback;
        }

        for i in 0..m {
            if self.ws.basis[i] >= sk.artificial_start && self.ws.x_f[i] > tol {
                trace("art-pre");
                return ReuseOutcome::Fallback;
            }
        }

        let pivots = match self.dual_repair(repair_pivot_cap(m, sk.cols)) {
            RepairResult::Done(p) => p,
            RepairResult::Infeasible => return ReuseOutcome::Infeasible,
            RepairResult::GaveUp => {
                trace("repair-gaveup");
                return ReuseOutcome::Fallback;
            }
        };

        let sk = self.sk;
        for i in 0..m {
            if self.ws.basis[i] >= sk.artificial_start
                && (self.ws.x_f[i] > tol || self.ws.x_w[i] != 0.0)
            {
                trace("art-post");
                return ReuseOutcome::Fallback;
            }
            // Repair pivots on −∞ rows can park a variable at +∞; that is
            // fine for slacks (an unbinding row) but unrepresentable for
            // structural variables.
            if self.ws.basis[i] < sk.num_struct && self.ws.x_w[i] != 0.0 {
                trace("struct-post");
                return ReuseOutcome::Fallback;
            }
        }
        ReuseOutcome::Reused(pivots)
    }

    /// `‖B·x_f − b_eff‖∞ ≤ tol` — does the factorized basis still
    /// reproduce the (effective) node RHS it claims to solve? (`b_eff`
    /// equals `b_f` bitwise outside bounded-variable mode.)
    fn node_residual_ok(&mut self) -> bool {
        let ws = &mut *self.ws;
        ws.resid.clear();
        ws.resid.extend_from_slice(&ws.b_eff);
        for (i, &b) in ws.basis.iter().enumerate() {
            let x = ws.x_f[i];
            if x != 0.0 {
                ws.a.axpy_col(b, -x, &mut ws.resid);
            }
        }
        let tol = FEAS_TOL * (1.0 + ws.b_scale);
        ws.resid.iter().all(|v| v.abs() <= tol)
    }

    /// Dual simplex repair: restore primal feasibility while keeping the
    /// phase-2 dual feasibility inherited from the last optimal solve.
    ///
    /// In bounded-variable mode a basic value can violate either of its
    /// bounds (`δ < 0` below lower, `δ > 0` above upper — the latter is how
    /// a tightened branch bound surfaces after a status-flip warm start),
    /// and nonbasic-at-upper columns join the ratio test with negated
    /// signs. With dual steepest-edge enabled, leaving rows are ranked by
    /// `δ²/γ` (reference framework: `γ = 1` at repair start, maintained by
    /// the Forrest–Goldfarb update) instead of by worst violation.
    fn dual_repair(&mut self, cap: usize) -> RepairResult {
        let sk = self.sk;
        let m = sk.m_total;
        let tol = FEAS_TOL * (1.0 + self.ws.b_scale);
        let use_dse = self.ws.use_dse;
        // Exact Forrest–Goldfarb weight maintenance costs one extra FTRAN
        // per pivot. On every measured fig16/admission model (m ≤ 255) that
        // FTRAN cost more than the pivots the sharper weights saved, so up
        // to this size the weights use the FTRAN-free Devex-style
        // approximation over the same reference framework; the exact update
        // is kept for very large bases, where one FTRAN amortizes over the
        // O(m) candidate rows it helps rank.
        const DSE_EXACT_MIN_ROWS: usize = 512;
        let dse_exact = use_dse && m >= DSE_EXACT_MIN_ROWS;
        if use_dse {
            let ws = &mut *self.ws;
            ws.dse_gamma.clear();
            ws.dse_gamma.resize(m, 1.0);
        }

        // Reduced costs of the non-basic, non-artificial columns.
        {
            let ws = &mut *self.ws;
            ws.y.clear();
            ws.y.extend(ws.basis.iter().map(|&b| sk.c[b]));
            ws.bf.btran(&mut ws.y);
            ws.d.clear();
            ws.d.resize(sk.cols, 0.0);
            for j in 0..sk.artificial_start {
                if !ws.is_basic[j] {
                    ws.d[j] = sk.c[j] - ws.a.col_dot(j, &ws.y);
                }
            }
        }

        let mut pivots = 0usize;
        loop {
            // Leaving row: any −∞ basic value first (most negative infinite
            // weight, then most negative finite part as tie-break), else the
            // worst finite bound violation. Selecting on (x_w, x_f)
            // lexicographically is exactly the dual simplex rule for the
            // big-M limit the split representation encodes; under DSE the
            // violation is scored against the row's steepest-edge weight.
            let mut leave: Option<(usize, f64)> = None; // (row, δ)
            {
                let ws = &*self.ws;
                if use_dse {
                    let any_inf = ws.x_w.iter().any(|&w| w < 0.0);
                    let mut best_score = 0.0f64;
                    for i in 0..m {
                        let delta;
                        if any_inf {
                            if ws.x_w[i] >= 0.0 {
                                continue;
                            }
                            delta = ws.x_w[i];
                        } else if ws.x_w[i] != 0.0 {
                            continue;
                        } else if ws.x_f[i] < -tol {
                            delta = ws.x_f[i];
                        } else {
                            let u = ws.col_upper[ws.basis[i]];
                            if ws.x_f[i] > u + tol {
                                delta = ws.x_f[i] - u;
                            } else {
                                continue;
                            }
                        }
                        let score = delta * delta / ws.dse_gamma[i];
                        if score > best_score {
                            best_score = score;
                            leave = Some((i, delta));
                        }
                    }
                } else {
                    let mut best: Option<(f64, f64)> = None; // (weight, key)
                    for i in 0..m {
                        let (wgt, fin) = (ws.x_w[i], ws.x_f[i]);
                        let (delta, key);
                        if wgt < 0.0 {
                            delta = wgt;
                            key = fin;
                        } else if wgt != 0.0 {
                            continue;
                        } else if fin < -tol {
                            delta = fin;
                            key = fin;
                        } else {
                            let u = ws.col_upper[ws.basis[i]];
                            if fin > u + tol {
                                delta = fin - u;
                                key = -(fin - u);
                            } else {
                                continue;
                            }
                        }
                        if best.is_none_or(|(bw, bk)| wgt < bw || (wgt == bw && key < bk)) {
                            best = Some((wgt, key));
                            leave = Some((i, delta));
                        }
                    }
                }
            }
            let Some((r, delta)) = leave else {
                return RepairResult::Done(pivots);
            };
            // `s` orients the ratio test: −1 drives the leaving value up to
            // its lower bound, +1 down to its upper.
            let s = if delta > 0.0 { 1.0 } else { -1.0 };

            // Row r of B⁻¹·A via BTRAN(e_r), then the dual ratio test.
            {
                let ws = &mut *self.ws;
                ws.y.clear();
                ws.y.resize(m, 0.0);
                ws.y[r] = 1.0;
                ws.bf.btran(&mut ws.y);
                ws.alpha.clear();
                ws.alpha.resize(sk.artificial_start, 0.0);
                for j in 0..sk.artificial_start {
                    if !ws.is_basic[j] {
                        ws.alpha[j] = ws.a.col_dot(j, &ws.y);
                    }
                }
            }
            // Sign-aware dual ratio test: a candidate must move the leaving
            // value toward its violated bound while keeping every reduced
            // cost on its feasible side (`d ≥ 0` at lower, `d ≤ 0` at
            // upper). With all columns at lower and `s = −1` this is the
            // legacy `α < −tol`, `d/−α` test verbatim.
            let mut enter: Option<(usize, f64)> = None;
            let mut saw_tiny_negative = false;
            for j in 0..sk.artificial_start {
                if self.ws.is_basic[j] {
                    continue;
                }
                let e = if self.ws.at_upper[j] { -1.0 } else { 1.0 };
                let a = s * e * self.ws.alpha[j];
                if a > DUAL_PIVOT_TOL {
                    let ratio = (e * self.ws.d[j]).max(0.0) / a;
                    if enter.is_none_or(|(_, best)| ratio < best - 1e-12) {
                        enter = Some((j, ratio));
                    }
                } else if a > PIVOT_TOL {
                    saw_tiny_negative = true;
                }
            }
            let Some((q, _)) = enter else {
                if saw_tiny_negative {
                    return RepairResult::GaveUp;
                }
                return RepairResult::Infeasible;
            };

            // Reduced-cost update (standard dual pivot algebra), then the
            // basis/solution update through the shared pivot path.
            {
                let ws = &mut *self.ws;
                let theta_d = ws.d[q] / ws.alpha[q];
                for j in 0..sk.artificial_start {
                    if !ws.is_basic[j] && j != q {
                        ws.d[j] -= theta_d * ws.alpha[j];
                    }
                }
                let leaving_col = ws.basis[r];
                if leaving_col < sk.artificial_start {
                    ws.d[leaving_col] = -theta_d;
                }
                ws.d[q] = 0.0;
                ws.w.clear();
                ws.w.resize(m, 0.0);
                ws.a.scatter_col(q, &mut ws.w);
                ws.bf.ftran(&mut ws.w);
                if ws.w[r].abs() <= PIVOT_TOL {
                    // FTRAN disagrees with the BTRAN row badly enough that
                    // pivoting would be unsafe; let the cold path decide.
                    return RepairResult::GaveUp;
                }
            }
            let gamma_r = if dse_exact {
                // Forrest–Goldfarb needs `τ = B⁻¹ρ_r`; `ws.y` still holds
                // the row's BTRAN `ρ_r`, and the factors are still the
                // pre-pivot ones here.
                let ws = &mut *self.ws;
                ws.dse_tau.clear();
                ws.dse_tau.extend_from_slice(&ws.y);
                ws.bf.ftran(&mut ws.dse_tau);
                ws.dse_gamma[r]
            } else if use_dse {
                self.ws.dse_gamma[r]
            } else {
                0.0
            };
            let pivot_ok = if sk.is_bounded() {
                let dir = if self.ws.at_upper[q] { -1.0 } else { 1.0 };
                self.pivot_step(r, q, dir, delta > 0.0).is_ok()
            } else {
                self.pivot(r, q).is_ok()
            };
            if !pivot_ok {
                return RepairResult::GaveUp;
            }
            if use_dse {
                // Exact: γ'_i = γ_i − 2(w_i/w_r)τ_i + (w_i/w_r)²γ_r for
                // i ≠ r, γ'_r = γ_r/w_r² — clamped positive against drift.
                // Devex fallback: γ'_i = max(γ_i, (w_i/w_r)²γ_r), weights
                // kept ≥ 1 over the reference framework.
                let ws = &mut *self.ws;
                let wr = ws.w[r];
                for i in 0..m {
                    if i == r {
                        continue;
                    }
                    let wi = ws.w[i];
                    if wi == 0.0 {
                        continue;
                    }
                    let t = wi / wr;
                    if dse_exact {
                        let g = ws.dse_gamma[i] - 2.0 * t * ws.dse_tau[i] + t * t * gamma_r;
                        ws.dse_gamma[i] = g.max(1e-10);
                    } else {
                        ws.dse_gamma[i] = ws.dse_gamma[i].max(t * t * gamma_r);
                    }
                }
                let floor = if dse_exact { 1e-10 } else { 1.0 };
                ws.dse_gamma[r] = (gamma_r / (wr * wr)).max(floor);
            }
            pivots += 1;
            if pivots >= cap {
                return RepairResult::GaveUp;
            }
        }
    }

    /// `Σ cost[basis[i]] · x_f[i]` skipping zero-cost basic columns, so
    /// inert infinite span slacks never pollute the sum. Columns nonbasic
    /// at their upper bound (bounded-variable mode) contribute `c_j·u_j`.
    fn objective_for(&self, cost: &[f64]) -> f64 {
        let mut total = 0.0;
        for (i, &b) in self.ws.basis.iter().enumerate() {
            let cb = cost[b];
            if cb != 0.0 {
                total += cb * self.ws.x_f[i];
            }
        }
        for (j, &up) in self.ws.at_upper.iter().enumerate() {
            if up {
                let cj = cost[j];
                if cj != 0.0 {
                    total += cj * self.ws.col_upper[j];
                }
            }
        }
        total
    }

    fn extract_original_values(&self, lower: &[f64], upper: &[f64]) -> Vec<f64> {
        let sk = self.sk;
        let mut std_values = vec![0.0; sk.num_struct];
        for (i, &b) in self.ws.basis.iter().enumerate() {
            if b < sk.num_struct {
                std_values[b] = self.ws.x_f[i].max(0.0);
            }
        }
        for (j, v) in std_values.iter_mut().enumerate() {
            if self.ws.at_upper[j] {
                *v = self.ws.col_upper[j];
            }
        }
        let mut values = vec![0.0; sk.var_map.len()];
        for (i, map) in sk.var_map.iter().enumerate() {
            values[i] = match *map {
                VarMap::Shifted { col } => lower[i] + std_values[col],
                VarMap::Mirrored { col } => upper[i] - std_values[col],
                VarMap::Split { pos, neg } => std_values[pos] - std_values[neg],
                VarMap::Fixed => lower[i],
            };
        }
        values
    }
}

// --- Checkpoint codec -------------------------------------------------------

use crate::state::{Reader, StateError, Writer};

impl RevisedWorkspace {
    /// Checkpoint encoding. Every field travels as exact bytes — the
    /// factorized basis and the accumulated eta/Forrest–Tomlin updates are
    /// path-dependent floats a rebuild cannot reproduce. The address-based
    /// `skeleton_tag` cannot survive a round-trip literally, so it is
    /// encoded as "did it match `skeleton`?" and re-derived on decode from
    /// the restored skeleton's new address.
    pub(crate) fn encode_state(&self, skeleton: &StandardFormSkeleton, out: &mut Writer) {
        self.a.encode_state(out);
        out.seq(&self.triplets, |o, &(r, c, v)| {
            o.usize(r);
            o.usize(c);
            o.f64(v);
        });
        self.bf.encode_state(out);
        out.vec_usize(&self.basis);
        out.vec_bool(&self.is_basic);
        out.vec_f64(&self.b_f);
        out.vec_f64(&self.b_w);
        out.vec_f64(&self.x_f);
        out.vec_f64(&self.x_w);
        out.vec_f64(&self.shifts);
        out.f64(self.obj_constant);
        out.f64(self.b_scale);
        out.bool(self.has_inf);
        out.vec_f64(&self.fill_flip);
        out.vec_f64(&self.phase1_cost);
        out.vec_f64(&self.y);
        out.vec_f64(&self.w);
        out.vec_f64(&self.d);
        out.vec_f64(&self.alpha);
        out.vec_f64(&self.resid);
        out.vec_usize(&self.candidates);
        out.usize(self.refactor_after);
        out.bool(self.force_bland);
        out.bool(self.reusable);
        out.bool(self.skeleton_tag == skeleton as *const StandardFormSkeleton as usize);
        out.usize(self.warm_hits);
        out.usize(self.warm_misses);
        out.vec_f64(&self.col_upper);
        out.vec_bool(&self.at_upper);
        out.vec_f64(&self.b_eff);
        out.vec_f64(&self.dse_gamma);
        out.vec_f64(&self.dse_tau);
        out.bool(self.use_dse);
        out.usize(self.bound_flips);
    }

    /// Decodes a workspace checkpoint, binding the tag to `skeleton`'s
    /// (new) address when the encoded state recorded a match.
    pub(crate) fn decode_state(
        r: &mut Reader<'_>,
        skeleton: &StandardFormSkeleton,
    ) -> Result<Self, StateError> {
        let a = CscMatrix::decode_state(r)?;
        let triplets = r.seq(|r| Ok((r.usize()?, r.usize()?, r.f64()?)))?;
        let bf = BasisFactorization::decode_state(r)?;
        let basis = r.vec_usize()?;
        let is_basic = r.vec_bool()?;
        let b_f = r.vec_f64()?;
        let b_w = r.vec_f64()?;
        let x_f = r.vec_f64()?;
        let x_w = r.vec_f64()?;
        let shifts = r.vec_f64()?;
        let obj_constant = r.f64()?;
        let b_scale = r.f64()?;
        let has_inf = r.bool()?;
        let fill_flip = r.vec_f64()?;
        let phase1_cost = r.vec_f64()?;
        let y = r.vec_f64()?;
        let w = r.vec_f64()?;
        let d = r.vec_f64()?;
        let alpha = r.vec_f64()?;
        let resid = r.vec_f64()?;
        let candidates = r.vec_usize()?;
        let refactor_after = r.usize()?;
        let force_bland = r.bool()?;
        let reusable = r.bool()?;
        let tag_matched = r.bool()?;
        let skeleton_tag = if tag_matched {
            skeleton as *const StandardFormSkeleton as usize
        } else {
            0
        };
        Ok(Self {
            a,
            triplets,
            bf,
            basis,
            is_basic,
            b_f,
            b_w,
            x_f,
            x_w,
            shifts,
            obj_constant,
            b_scale,
            has_inf,
            fill_flip,
            phase1_cost,
            y,
            w,
            d,
            alpha,
            resid,
            candidates,
            refactor_after,
            force_bland,
            reusable,
            skeleton_tag,
            warm_hits: r.usize()?,
            warm_misses: r.usize()?,
            col_upper: r.vec_f64()?,
            at_upper: r.vec_bool()?,
            b_eff: r.vec_f64()?,
            dse_gamma: r.vec_f64()?,
            dse_tau: r.vec_f64()?,
            use_dse: r.bool()?,
            bound_flips: r.usize()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{ConstraintOp, Problem, Sense};
    use crate::simplex;

    fn bounds(p: &Problem) -> (Vec<f64>, Vec<f64>) {
        (
            p.variables().iter().map(|v| v.lower).collect(),
            p.variables().iter().map(|v| v.upper).collect(),
        )
    }

    fn assert_matches_dense(p: &Problem) {
        let (lower, upper) = bounds(p);
        let dense = simplex::solve_relaxation(p, &lower, &upper, 100_000);
        let revised = solve_relaxation_revised(p, &lower, &upper, 100_000);
        match (dense, revised) {
            (Ok(d), Ok(r)) => {
                assert!(
                    (d.objective - r.objective).abs() < 1e-7,
                    "dense {} vs revised {}",
                    d.objective,
                    r.objective
                );
            }
            (Err(de), Err(re)) => assert_eq!(
                std::mem::discriminant(&de),
                std::mem::discriminant(&re),
                "dense {de:?} vs revised {re:?}"
            ),
            (d, r) => panic!("dense {d:?} vs revised {r:?}"),
        }
    }

    #[test]
    fn agrees_with_dense_on_small_lps() {
        // min 2x + 3y s.t. x + 2y >= 4, x + y <= 10.
        let mut p = Problem::new("t", Sense::Minimize);
        let x = p.add_var("x", 0.0, f64::INFINITY);
        let y = p.add_var("y", 0.0, f64::INFINITY);
        p.set_objective([(x, 2.0), (y, 3.0)]);
        p.add_constraint("c1", [(x, 1.0), (y, 2.0)], ConstraintOp::Ge, 4.0);
        p.add_constraint("c2", [(x, 1.0), (y, 1.0)], ConstraintOp::Le, 10.0);
        assert_matches_dense(&p);

        // Maximization with equality and free variables.
        let mut q = Problem::new("t2", Sense::Maximize);
        let a = q.add_var("a", f64::NEG_INFINITY, f64::INFINITY);
        let b = q.add_var("b", 0.0, 5.0);
        q.set_objective([(a, 1.0), (b, 2.0)]);
        q.add_constraint("e", [(a, 1.0), (b, 1.0)], ConstraintOp::Eq, 4.0);
        assert_matches_dense(&q);
    }

    #[test]
    fn detects_infeasible_and_unbounded_like_dense() {
        let mut inf = Problem::new("inf", Sense::Minimize);
        let x = inf.add_var("x", 0.0, f64::INFINITY);
        inf.set_objective([(x, 1.0)]);
        inf.add_constraint("lo", [(x, 1.0)], ConstraintOp::Ge, 5.0);
        inf.add_constraint("hi", [(x, 1.0)], ConstraintOp::Le, 4.0);
        assert_matches_dense(&inf);

        let mut unb = Problem::new("unb", Sense::Maximize);
        let y = unb.add_var("y", 0.0, f64::INFINITY);
        unb.set_objective([(y, 1.0)]);
        assert_matches_dense(&unb);
    }

    #[test]
    fn degenerate_beale_terminates() {
        let mut p = Problem::new("beale", Sense::Minimize);
        let x1 = p.add_var("x1", 0.0, f64::INFINITY);
        let x2 = p.add_var("x2", 0.0, f64::INFINITY);
        let x3 = p.add_var("x3", 0.0, f64::INFINITY);
        let x4 = p.add_var("x4", 0.0, f64::INFINITY);
        p.set_objective([(x1, -0.75), (x2, 150.0), (x3, -0.02), (x4, 6.0)]);
        p.add_constraint(
            "c1",
            [(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
            ConstraintOp::Le,
            0.0,
        );
        p.add_constraint(
            "c2",
            [(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
            ConstraintOp::Le,
            0.0,
        );
        p.add_constraint("c3", [(x3, 1.0)], ConstraintOp::Le, 1.0);
        let (lower, upper) = bounds(&p);
        let r = solve_relaxation_revised(&p, &lower, &upper, 100_000).unwrap();
        assert!(
            (r.objective + 0.05).abs() < 1e-6,
            "objective {}",
            r.objective
        );
    }

    #[test]
    fn warm_start_across_branching_children_matches_cold() {
        let mut p = Problem::new("k", Sense::Maximize);
        let a = p.add_int_var("a", 0.0, 1.0);
        let b = p.add_int_var("b", 0.0, 1.0);
        let c = p.add_int_var("c", 0.0, 1.0);
        p.set_objective([(a, 8.0), (b, 11.0), (c, 6.0)]);
        p.add_constraint(
            "cap",
            [(a, 5.0), (b, 7.0), (c, 4.0)],
            ConstraintOp::Le,
            10.0,
        );
        let (lower, upper) = bounds(&p);
        let sk = StandardFormSkeleton::new(&p, &lower, &upper).unwrap();
        let mut ws = RevisedWorkspace::default();
        let root = solve_with_skeleton_revised(&sk, &mut ws, &lower, &upper, None, 10_000).unwrap();
        assert_eq!(root.warm, WarmStart::Cold);

        for (var, lo, hi) in [(1usize, 0.0, 0.0), (1, 1.0, 1.0), (0, 1.0, 1.0)] {
            let mut l = lower.clone();
            let mut u = upper.clone();
            l[var] = lo;
            u[var] = hi;
            let warm = solve_with_skeleton_revised(&sk, &mut ws, &l, &u, Some(&root.basis), 10_000)
                .unwrap();
            let mut cold_ws = RevisedWorkspace::default();
            let cold =
                solve_with_skeleton_revised(&sk, &mut cold_ws, &l, &u, None, 10_000).unwrap();
            assert!(
                (warm.objective - cold.objective).abs() < 1e-7,
                "var {var} in [{lo},{hi}]: warm {} cold {}",
                warm.objective,
                cold.objective
            );
            assert_ne!(warm.warm, WarmStart::Cold);
        }
        let (hits, misses) = ws.warm_start_counts();
        assert!(hits > 0, "hits {hits} misses {misses}");
        let (factorizations, _) = ws.factorization_counts();
        assert!(factorizations >= 1);
    }

    #[test]
    fn infinite_span_rows_stay_inert_and_patchable() {
        let mut p = Problem::new("inf-span", Sense::Minimize);
        let x = p.add_int_var("x", 0.0, f64::INFINITY);
        p.set_objective([(x, 1.0)]);
        p.add_constraint("lb", [(x, 1.0)], ConstraintOp::Ge, 3.0);
        let (lower, upper) = bounds(&p);
        let sk = StandardFormSkeleton::new(&p, &lower, &upper).unwrap();
        let mut ws = RevisedWorkspace::default();
        let r = solve_with_skeleton_revised(&sk, &mut ws, &lower, &upper, None, 10_000).unwrap();
        assert!((r.objective - 3.0).abs() < 1e-6);
        let r2 = solve_with_skeleton_revised(&sk, &mut ws, &lower, &[5.0], Some(&r.basis), 10_000)
            .unwrap();
        assert!((r2.objective - 3.0).abs() < 1e-6);
        // Tightening below the optimum moves it.
        let r3 = solve_with_skeleton_revised(
            &sk,
            &mut ws,
            &[4.0],
            &[f64::INFINITY],
            Some(&r2.basis),
            10_000,
        )
        .unwrap();
        assert!((r3.objective - 4.0).abs() < 1e-6);
    }

    /// Solves `p` through a bounded-variable skeleton with the given update
    /// and pricing flags, from a cold workspace.
    fn solve_bounded_with(
        p: &Problem,
        lower: &[f64],
        upper: &[f64],
        ft: bool,
        dse: bool,
    ) -> Result<SimplexResult, LpError> {
        let sk = StandardFormSkeleton::new_bounded(p, lower, upper)?;
        let mut ws = RevisedWorkspace::default();
        ws.configure(ft, dse);
        solve_with_skeleton_revised(&sk, &mut ws, lower, upper, None, 100_000)
    }

    fn assert_bounded_matches_dense(p: &Problem) {
        let (lower, upper) = bounds(p);
        let dense = simplex::solve_relaxation(p, &lower, &upper, 100_000);
        for (ft, dse) in [(false, false), (true, false), (false, true), (true, true)] {
            let bounded = solve_bounded_with(p, &lower, &upper, ft, dse);
            match (&dense, &bounded) {
                (Ok(d), Ok(r)) => assert!(
                    (d.objective - r.objective).abs() < 1e-7,
                    "ft={ft} dse={dse}: dense {} vs bounded {}",
                    d.objective,
                    r.objective
                ),
                (Err(de), Err(re)) => assert_eq!(
                    std::mem::discriminant(de),
                    std::mem::discriminant(re),
                    "ft={ft} dse={dse}: dense {de:?} vs bounded {re:?}"
                ),
                (d, r) => panic!("ft={ft} dse={dse}: dense {d:?} vs bounded {r:?}"),
            }
        }
    }

    /// A fig16-class model: branchable doubly-bounded variables under shared
    /// capacity rows. In the legacy skeleton every such variable needs a span
    /// row; the bounded skeleton keeps only the structural constraints.
    fn fig16_class_model(vars: usize, rows: usize) -> Problem {
        let mut p = Problem::new("fig16-class", Sense::Maximize);
        let ids: Vec<_> = (0..vars)
            .map(|i| p.add_int_var(format!("x{i}"), 0.0, 3.0 + (i % 4) as f64))
            .collect();
        p.set_objective(
            ids.iter()
                .enumerate()
                .map(|(i, &v)| (v, 1.0 + (i % 5) as f64)),
        );
        for k in 0..rows {
            p.add_constraint(
                format!("cap{k}"),
                ids.iter()
                    .enumerate()
                    .filter(|(i, _)| (i + k) % 3 != 0)
                    .map(|(i, &v)| (v, 1.0 + ((i * 7 + k) % 4) as f64)),
                ConstraintOp::Le,
                20.0 + 3.0 * k as f64,
            );
        }
        p
    }

    #[test]
    fn bounded_skeleton_eliminates_span_rows() {
        let p = fig16_class_model(12, 5);
        let (lower, upper) = bounds(&p);
        let legacy = StandardFormSkeleton::new(&p, &lower, &upper).unwrap();
        let bounded = StandardFormSkeleton::new_bounded(&p, &lower, &upper).unwrap();
        // Every branchable doubly-bounded variable costs the legacy skeleton
        // a span row; the bounded skeleton holds the structural rows only.
        assert_eq!(legacy.num_rows(), 5 + 12);
        assert_eq!(bounded.num_rows(), 5);
        assert!(bounded.is_bounded() && !legacy.is_bounded());
    }

    #[test]
    fn bounded_mode_agrees_with_dense_on_doubly_bounded_lps() {
        // Doubly-bounded variables with binding upper bounds at the optimum.
        let mut p = Problem::new("bx", Sense::Maximize);
        let x = p.add_var("x", 0.0, 5.0);
        let y = p.add_var("y", 0.0, 4.0);
        let z = p.add_var("z", 1.0, 9.0);
        p.set_objective([(x, 3.0), (y, 2.0), (z, 1.0)]);
        p.add_constraint("c", [(x, 1.0), (y, 1.0), (z, 2.0)], ConstraintOp::Le, 14.0);
        assert_bounded_matches_dense(&p);

        // Free variable plus a mirrored (upper-bounded-only) variable.
        let mut q = Problem::new("free", Sense::Minimize);
        let a = q.add_var("a", f64::NEG_INFINITY, f64::INFINITY);
        let b = q.add_var("b", f64::NEG_INFINITY, 6.0);
        q.set_objective([(a, 1.0), (b, -1.0)]);
        q.add_constraint("e", [(a, 1.0), (b, 1.0)], ConstraintOp::Eq, 4.0);
        q.add_constraint("g", [(a, 1.0), (b, -1.0)], ConstraintOp::Ge, -2.0);
        assert_bounded_matches_dense(&q);

        // Infeasible and unbounded instances keep their classification.
        let mut inf = Problem::new("inf", Sense::Minimize);
        let v = inf.add_var("v", 0.0, 3.0);
        inf.set_objective([(v, 1.0)]);
        inf.add_constraint("lo", [(v, 1.0)], ConstraintOp::Ge, 5.0);
        assert_bounded_matches_dense(&inf);

        let mut unb = Problem::new("unb", Sense::Maximize);
        let w = unb.add_var("w", 0.0, f64::INFINITY);
        let u = unb.add_var("u", 0.0, 2.0);
        unb.set_objective([(w, 1.0), (u, 1.0)]);
        unb.add_constraint("c", [(u, 1.0)], ConstraintOp::Le, 2.0);
        assert_bounded_matches_dense(&unb);

        assert_bounded_matches_dense(&fig16_class_model(9, 4));
    }

    #[test]
    fn bound_flips_replace_span_pivots() {
        // Both upper bounds are slack against the capacity row, so the
        // bounded engine reaches the optimum by flipping x and y to their
        // upper bounds instead of pivoting through span rows.
        let mut p = Problem::new("flip", Sense::Maximize);
        let x = p.add_var("x", 0.0, 5.0);
        let y = p.add_var("y", 0.0, 4.0);
        p.set_objective([(x, 3.0), (y, 2.0)]);
        p.add_constraint("c", [(x, 1.0), (y, 1.0)], ConstraintOp::Le, 20.0);
        let (lower, upper) = bounds(&p);
        let sk = StandardFormSkeleton::new_bounded(&p, &lower, &upper).unwrap();
        let mut ws = RevisedWorkspace::default();
        let r = solve_with_skeleton_revised(&sk, &mut ws, &lower, &upper, None, 10_000).unwrap();
        assert!(
            (r.objective - 23.0).abs() < 1e-7,
            "objective {}",
            r.objective
        );
        assert!((r.values[0] - 5.0).abs() < 1e-7 && (r.values[1] - 4.0).abs() < 1e-7);
        let (bound_flips, _) = ws.pivot_counts();
        assert!(bound_flips >= 2, "bound_flips {bound_flips}");
    }

    #[test]
    fn exact_forrest_goldfarb_path_repairs_large_bases() {
        // 520 constraints puts the basis past DSE_EXACT_MIN_ROWS, so the
        // warm-start dual repair maintains exact steepest-edge weights
        // (extra FTRAN per pivot) instead of the Devex approximation.
        const N: usize = 520;
        let mut p = Problem::new("dse-large", Sense::Maximize);
        let vars: Vec<_> = (0..N)
            .map(|i| p.add_var(format!("x{i}"), 0.0, 2.0 + (i % 3) as f64))
            .collect();
        p.set_objective(
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (v, 1.0 + (i % 7) as f64)),
        );
        for i in 0..N {
            p.add_constraint(
                format!("c{i}"),
                [(vars[i], 1.0), (vars[(i + 1) % N], 1.0)],
                ConstraintOp::Le,
                3.0 + (i % 4) as f64,
            );
        }
        let (lower, upper) = bounds(&p);
        let sk = StandardFormSkeleton::new_bounded(&p, &lower, &upper).unwrap();
        let mut ws = RevisedWorkspace::default();
        ws.configure(true, true);
        let root =
            solve_with_skeleton_revised(&sk, &mut ws, &lower, &upper, None, 100_000).unwrap();
        // Tighten a handful of upper bounds: the warm start flips statuses
        // and the ensuing violations drive the exact-weight dual repair.
        let mut u = upper.clone();
        for i in (0..N).step_by(7) {
            u[i] = 1.0;
        }
        let warm =
            solve_with_skeleton_revised(&sk, &mut ws, &lower, &u, Some(&root.basis), 100_000)
                .unwrap();
        let mut cold_ws = RevisedWorkspace::default();
        let cold =
            solve_with_skeleton_revised(&sk, &mut cold_ws, &lower, &u, None, 100_000).unwrap();
        assert!(
            (warm.objective - cold.objective).abs() < 1e-6 * (1.0 + cold.objective.abs()),
            "warm {} vs cold {}",
            warm.objective,
            cold.objective
        );
        let (hits, _) = ws.warm_start_counts();
        assert!(hits > 0);
    }

    #[test]
    fn bounded_warm_start_branching_is_a_status_flip() {
        let p = fig16_class_model(8, 3);
        let (lower, upper) = bounds(&p);
        let sk = StandardFormSkeleton::new_bounded(&p, &lower, &upper).unwrap();
        let mut ws = RevisedWorkspace::default();
        ws.configure(true, true);
        let root = solve_with_skeleton_revised(&sk, &mut ws, &lower, &upper, None, 10_000).unwrap();
        assert_eq!(root.warm, WarmStart::Cold);

        let mut basis = root.basis;
        for (var, lo, hi) in [
            (0usize, 0.0, 2.0),
            (3, 1.0, 3.0),
            (5, 0.0, 0.0),
            (1, 2.0, 2.0),
            (7, 0.0, 1.0),
        ] {
            let mut l = lower.clone();
            let mut u = upper.clone();
            l[var] = lo;
            u[var] = hi;
            // Tightened child bounds reach the engine as implicit column
            // bounds — no RHS patch, no skeleton rebuild.
            assert!(sk.compatible(&l, &u));
            let warm =
                solve_with_skeleton_revised(&sk, &mut ws, &l, &u, Some(&basis), 10_000).unwrap();
            let dense = simplex::solve_relaxation(&p, &l, &u, 10_000).unwrap();
            assert!(
                (warm.objective - dense.objective).abs() < 1e-6,
                "var {var} in [{lo},{hi}]: warm {} dense {}",
                warm.objective,
                dense.objective
            );
            basis = warm.basis;
        }
        let (hits, misses) = ws.warm_start_counts();
        assert!(hits > 0, "hits {hits} misses {misses}");
    }

    #[test]
    fn repeated_solves_do_not_drift() {
        let mut p = Problem::new("drift", Sense::Maximize);
        let vars: Vec<_> = (0..6)
            .map(|i| p.add_int_var(format!("x{i}"), 0.0, 4.0))
            .collect();
        p.set_objective(vars.iter().enumerate().map(|(i, &v)| (v, 1.0 + i as f64)));
        for k in 0..3 {
            p.add_constraint(
                format!("cap{k}"),
                vars.iter()
                    .enumerate()
                    .map(|(i, &v)| (v, 1.0 + ((i + k) % 3) as f64)),
                ConstraintOp::Le,
                9.0 + k as f64,
            );
        }
        let (lower, upper) = bounds(&p);
        let sk = StandardFormSkeleton::new(&p, &lower, &upper).unwrap();
        let mut ws = RevisedWorkspace::default();
        let reference = solve_with_skeleton_revised(&sk, &mut ws, &lower, &upper, None, 10_000)
            .unwrap()
            .objective;
        let mut last_basis =
            solve_with_skeleton_revised(&sk, &mut ws, &lower, &upper, None, 10_000)
                .unwrap()
                .basis;
        for round in 0..300 {
            let var = round % vars.len();
            let mut l = lower.clone();
            let mut u = upper.clone();
            // Alternate tightenings that keep the root optimum attainable.
            if round % 2 == 0 {
                u[var] = 4.0;
            } else {
                l[var] = 0.0;
            }
            let r = solve_with_skeleton_revised(&sk, &mut ws, &l, &u, Some(&last_basis), 10_000)
                .unwrap();
            assert!(
                (r.objective - reference).abs() < 1e-6,
                "round {round}: {} vs {reference}",
                r.objective
            );
            last_basis = r.basis;
        }
    }
}
