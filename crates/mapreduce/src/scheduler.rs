//! Task schedulers: Hadoop's locality-preferring default and Conductor's
//! plan-following location-aware scheduler (§5.3).
//!
//! The original Hadoop scheduler will happily run a task on a non-local node
//! and stream its input over the network, which can violate the execution
//! plan (unplanned transfers congest the uplink and add cost). Conductor's
//! scheduler only marks a task runnable when its input data sits at a
//! location the plan allows for that compute resource.

use crate::cluster::SimNode;
use crate::engine::DataLocation;
use crate::task::Task;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Which scheduler implementation is in use (for reports and ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// Hadoop's default behaviour: locality preferred, remote reads allowed.
    Locality,
    /// Conductor's extension: only plan-approved locations are acceptable.
    PlanFollowing,
}

/// Decides whether a task may run on a node given where its input currently
/// lives, and ranks candidate locations by preference.
///
/// Implementations must decide from `(location, node)` alone — the `task`
/// argument is context, not a discriminator. The engine's dispatch index
/// buckets pending tasks per location and probes one representative task
/// per bucket, which is only equivalent to scanning every task under this
/// contract (both schedulers here honor it).
pub trait Scheduler {
    /// `true` if a task whose input is available at `location` may be
    /// dispatched to `node` right now. Must not vary across tasks at the
    /// same `location` (see the trait docs).
    fn may_run(&self, task: &Task, location: DataLocation, node: &SimNode) -> bool;

    /// Preference score for running a task whose data is at `location` on
    /// `node` (higher is better); used to break ties between runnable tasks.
    fn preference(&self, location: DataLocation, node: &SimNode) -> i32;

    /// Which implementation this is.
    fn kind(&self) -> SchedulerKind;

    /// A serializable image of this scheduler's configuration;
    /// [`SchedulerSnapshot::rebuild`] reconstructs an equivalent scheduler.
    /// Both implementations are pure policy over small data, so the image
    /// is the kind plus (for the plan follower) the permission map.
    fn snapshot(&self) -> SchedulerSnapshot;
}

/// Serializable scheduler configuration for checkpoints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SchedulerSnapshot {
    /// [`LocalityScheduler`].
    Locality,
    /// [`PlanFollowingScheduler`] with its permission map.
    PlanFollowing {
        /// Allowed input locations per instance-type name.
        allowed: BTreeMap<String, Vec<DataLocation>>,
    },
}

impl SchedulerSnapshot {
    /// Reconstructs a scheduler equivalent to the one the snapshot was
    /// taken from.
    pub fn rebuild(&self) -> Box<dyn Scheduler + Send + 'static> {
        match self {
            SchedulerSnapshot::Locality => Box::new(LocalityScheduler),
            SchedulerSnapshot::PlanFollowing { allowed } => Box::new(PlanFollowingScheduler {
                allowed: allowed.clone(),
            }),
        }
    }
}

// Delegation through references, so a borrowed scheduler can be boxed into
// a `Box<dyn Scheduler + '_>` (the execution process owns its scheduler;
// `Engine::run` passes one in by reference).
impl<S: Scheduler + ?Sized> Scheduler for &S {
    fn may_run(&self, task: &Task, location: DataLocation, node: &SimNode) -> bool {
        (**self).may_run(task, location, node)
    }

    fn preference(&self, location: DataLocation, node: &SimNode) -> i32 {
        (**self).preference(location, node)
    }

    fn kind(&self) -> SchedulerKind {
        (**self).kind()
    }

    fn snapshot(&self) -> SchedulerSnapshot {
        (**self).snapshot()
    }
}

/// Hadoop's default scheduler: every available task is runnable anywhere;
/// data-local placements are merely preferred.
#[derive(Debug, Clone, Default)]
pub struct LocalityScheduler;

impl Scheduler for LocalityScheduler {
    fn may_run(&self, _task: &Task, _location: DataLocation, _node: &SimNode) -> bool {
        true
    }

    fn preference(&self, location: DataLocation, node: &SimNode) -> i32 {
        match location {
            DataLocation::InstanceDisk if !node.is_local => 3,
            DataLocation::LocalDisk if node.is_local => 3,
            DataLocation::S3 => 2,
            DataLocation::ClientSite => 0,
            _ => 1,
        }
    }

    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Locality
    }

    fn snapshot(&self) -> SchedulerSnapshot {
        SchedulerSnapshot::Locality
    }
}

/// Conductor's plan-following scheduler: per compute resource (instance type),
/// only the locations listed in the execution plan are acceptable input
/// sources. Tasks whose data is anywhere else stay queued (§5.3: "the
/// scheduler sets tasks runnable when their input data is either stored
/// locally to that resource or on a different storage resource specified in
/// the plan").
#[derive(Debug, Clone, Default)]
pub struct PlanFollowingScheduler {
    /// Allowed input locations per instance-type name.
    allowed: BTreeMap<String, Vec<DataLocation>>,
}

impl PlanFollowingScheduler {
    /// Creates a scheduler with no permissions (nothing runnable).
    pub fn new() -> Self {
        Self::default()
    }

    /// Allows tasks running on `instance_type` nodes to read input from
    /// `location`.
    pub fn allow(&mut self, instance_type: impl Into<String>, location: DataLocation) -> &mut Self {
        self.allowed
            .entry(instance_type.into())
            .or_default()
            .push(location);
        self
    }

    /// Convenience: the permission set Conductor derives from a typical
    /// cloud-only plan (EC2 nodes may read from their own disks and from S3).
    pub fn cloud_only_defaults() -> Self {
        let mut s = Self::new();
        for itype in ["m1.large", "m1.xlarge", "c1.xlarge"] {
            s.allow(itype, DataLocation::InstanceDisk);
            s.allow(itype, DataLocation::S3);
        }
        s
    }

    /// Convenience: permissions for a hybrid plan (cloud nodes as above, local
    /// nodes read from the local disks).
    pub fn hybrid_defaults() -> Self {
        let mut s = Self::cloud_only_defaults();
        s.allow("local", DataLocation::LocalDisk);
        s.allow("local", DataLocation::ClientSite);
        s
    }

    /// The allowed locations for an instance type (empty if none configured).
    pub fn allowed_for(&self, instance_type: &str) -> &[DataLocation] {
        self.allowed
            .get(instance_type)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

impl Scheduler for PlanFollowingScheduler {
    fn may_run(&self, _task: &Task, location: DataLocation, node: &SimNode) -> bool {
        self.allowed_for(&node.instance_type).contains(&location)
    }

    fn preference(&self, location: DataLocation, node: &SimNode) -> i32 {
        // Same locality preference as Hadoop among the allowed locations.
        LocalityScheduler.preference(location, node)
    }

    fn kind(&self) -> SchedulerKind {
        SchedulerKind::PlanFollowing
    }

    fn snapshot(&self) -> SchedulerSnapshot {
        SchedulerSnapshot::PlanFollowing {
            allowed: self.allowed.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::NodeId;
    use crate::task::{TaskId, TaskKind};

    fn ec2_node() -> SimNode {
        SimNode {
            id: NodeId(0),
            instance_type: "m1.large".into(),
            throughput_gbph: 0.44,
            disk_gb: 850.0,
            joined_at: 0.0,
            is_local: false,
        }
    }

    fn local_node() -> SimNode {
        SimNode {
            id: NodeId(1),
            instance_type: "local".into(),
            throughput_gbph: 0.44,
            disk_gb: 250.0,
            joined_at: 0.0,
            is_local: true,
        }
    }

    fn task() -> Task {
        Task::new(TaskId(0), TaskKind::Map, 0.0625)
    }

    #[test]
    fn locality_scheduler_runs_anything_but_prefers_local_data() {
        let s = LocalityScheduler;
        let node = ec2_node();
        assert!(s.may_run(&task(), DataLocation::ClientSite, &node));
        assert!(s.may_run(&task(), DataLocation::S3, &node));
        assert!(
            s.preference(DataLocation::InstanceDisk, &node) > s.preference(DataLocation::S3, &node)
        );
        assert!(
            s.preference(DataLocation::S3, &node) > s.preference(DataLocation::ClientSite, &node)
        );
        assert_eq!(s.kind(), SchedulerKind::Locality);
    }

    #[test]
    fn plan_following_scheduler_blocks_unplanned_locations() {
        let s = PlanFollowingScheduler::cloud_only_defaults();
        let node = ec2_node();
        assert!(s.may_run(&task(), DataLocation::InstanceDisk, &node));
        assert!(s.may_run(&task(), DataLocation::S3, &node));
        // Reading from the customer site was not part of the plan.
        assert!(!s.may_run(&task(), DataLocation::ClientSite, &node));
        assert_eq!(s.kind(), SchedulerKind::PlanFollowing);
    }

    #[test]
    fn hybrid_defaults_let_local_nodes_read_local_data() {
        let s = PlanFollowingScheduler::hybrid_defaults();
        assert!(s.may_run(&task(), DataLocation::LocalDisk, &local_node()));
        assert!(s.may_run(&task(), DataLocation::ClientSite, &local_node()));
        assert!(!s.may_run(&task(), DataLocation::LocalDisk, &ec2_node()));
    }

    #[test]
    fn empty_plan_permits_nothing() {
        let s = PlanFollowingScheduler::new();
        assert!(!s.may_run(&task(), DataLocation::InstanceDisk, &ec2_node()));
        assert!(s.allowed_for("m1.large").is_empty());
    }

    #[test]
    fn allow_accumulates_locations() {
        let mut s = PlanFollowingScheduler::new();
        s.allow("m1.large", DataLocation::S3);
        s.allow("m1.large", DataLocation::InstanceDisk);
        assert_eq!(s.allowed_for("m1.large").len(), 2);
    }
}
