//! An analytical model of HDFS and the other Hadoop storage paths, used as
//! the baseline in the storage-layer throughput comparison of Figure 15.
//!
//! The paper copies 32 GB of 64 MB files into each storage option on large
//! EC2 instances and measures sustained throughput: HDFS is fastest
//! (~21 MB/s), Conductor's storage layer loses ~25% to its abstraction
//! overhead, S3 via `s3cmd` is comparable to Conductor, and S3 through
//! Hadoop's built-in driver is much slower because it defaults to SSL
//! transfers. [`HdfsModel`] captures those paths so the benchmark can
//! regenerate the figure and so the HDFS baseline deployments in §6.2/§6.3
//! have a throughput model.

use serde::{Deserialize, Serialize};

/// Which write path is being modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StoragePath {
    /// Hadoop's own HDFS with pipeline replication.
    Hdfs,
    /// Amazon S3 through Hadoop's integrated driver (SSL by default).
    S3ViaHadoop,
    /// Amazon S3 through the dedicated `s3cmd` client.
    S3ViaS3cmd,
}

/// Analytical throughput model for the baseline storage paths.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HdfsModel {
    /// Raw disk/network bandwidth available to one writer, MB/s.
    pub raw_bandwidth_mbps: f64,
    /// Replication factor (3 in the paper's setup).
    pub replication: u32,
    /// Fraction of raw bandwidth lost to pipelining/checksumming overhead.
    pub pipeline_overhead: f64,
    /// Fraction of bandwidth lost to SSL when Hadoop's S3 driver is used.
    pub ssl_penalty: f64,
    /// Per-object request latency in seconds (dominates small objects on S3).
    pub per_object_latency_s: f64,
}

impl Default for HdfsModel {
    fn default() -> Self {
        Self {
            // Chosen so the modelled HDFS throughput lands near the ~21 MB/s
            // the paper measures on large EC2 instances.
            raw_bandwidth_mbps: 24.0,
            replication: 3,
            pipeline_overhead: 0.12,
            ssl_penalty: 0.55,
            per_object_latency_s: 0.15,
        }
    }
}

impl HdfsModel {
    /// Sustained write throughput in MB/s for the given path and object size.
    pub fn write_throughput_mbps(&self, path: StoragePath, object_size_mb: f64) -> f64 {
        let base = self.raw_bandwidth_mbps * (1.0 - self.pipeline_overhead);
        match path {
            StoragePath::Hdfs => base,
            StoragePath::S3ViaS3cmd => {
                // Request latency amortized over the object size.
                let transfer_s = object_size_mb / (base * 0.75);
                object_size_mb / (transfer_s + self.per_object_latency_s)
            }
            StoragePath::S3ViaHadoop => {
                let effective = base * 0.75 * (1.0 - self.ssl_penalty);
                let transfer_s = object_size_mb / effective;
                object_size_mb / (transfer_s + self.per_object_latency_s)
            }
        }
    }

    /// Time in seconds to copy `total_gb` of data split into `object_size_mb`
    /// objects through the given path.
    pub fn copy_time_s(&self, path: StoragePath, total_gb: f64, object_size_mb: f64) -> f64 {
        let mbps = self.write_throughput_mbps(path, object_size_mb);
        if mbps <= 0.0 {
            return f64::INFINITY;
        }
        total_gb * 1024.0 / mbps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hdfs_is_fastest_hadoop_s3_is_slowest() {
        // The ordering of Figure 15 (excluding Conductor's own layer, which
        // lives in `conductor-storage`).
        let m = HdfsModel::default();
        let hdfs = m.write_throughput_mbps(StoragePath::Hdfs, 64.0);
        let s3cmd = m.write_throughput_mbps(StoragePath::S3ViaS3cmd, 64.0);
        let s3hadoop = m.write_throughput_mbps(StoragePath::S3ViaHadoop, 64.0);
        assert!(hdfs > s3cmd, "hdfs {hdfs} vs s3cmd {s3cmd}");
        assert!(s3cmd > s3hadoop, "s3cmd {s3cmd} vs s3hadoop {s3hadoop}");
        // HDFS lands in the ~18-24 MB/s band the paper reports.
        assert!(hdfs > 18.0 && hdfs < 24.0, "hdfs {hdfs}");
    }

    #[test]
    fn ssl_penalty_roughly_halves_s3_throughput() {
        let m = HdfsModel::default();
        let s3cmd = m.write_throughput_mbps(StoragePath::S3ViaS3cmd, 64.0);
        let s3hadoop = m.write_throughput_mbps(StoragePath::S3ViaHadoop, 64.0);
        assert!(s3hadoop < 0.6 * s3cmd);
    }

    #[test]
    fn smaller_objects_suffer_more_request_latency() {
        let m = HdfsModel::default();
        let big = m.write_throughput_mbps(StoragePath::S3ViaS3cmd, 64.0);
        let small = m.write_throughput_mbps(StoragePath::S3ViaS3cmd, 4.0);
        assert!(small < big);
    }

    #[test]
    fn copy_time_scales_linearly_with_volume() {
        let m = HdfsModel::default();
        let t32 = m.copy_time_s(StoragePath::Hdfs, 32.0, 64.0);
        let t64 = m.copy_time_s(StoragePath::Hdfs, 64.0, 64.0);
        assert!((t64 - 2.0 * t32).abs() < 1e-6);
        // 32 GB at ~21 MB/s is around 1,500-1,800 seconds.
        assert!(t32 > 1200.0 && t32 < 2000.0, "t32 {t32}");
    }
}
