//! # conductor-mapreduce
//!
//! A discrete-event MapReduce execution engine, standing in for the Hadoop
//! 0.20.2 deployment the paper extends (§5.3). It simulates, at task
//! granularity, the execution of a MapReduce job over a set of compute nodes
//! whose number can change over time (as Conductor's plans dictate), with
//! input data arriving over a bandwidth-limited customer uplink and living on
//! one of several storage locations.
//!
//! The engine reproduces the behaviours the evaluation depends on:
//!
//! * an upload phase (optionally overlapped with processing, "streamed
//!   processing" in Figure 6),
//! * map tasks that become runnable when their input split is available at a
//!   location the scheduler accepts, and run at a rate determined by where
//!   the data lives (node-local disk, S3, or remote client-side HDFS over the
//!   uplink),
//! * a shuffle + reduce phase and final result download,
//! * two schedulers: Hadoop's locality-preferring default and Conductor's
//!   plan-following location-aware scheduler (§5.3),
//! * per-task completion timelines (Figure 12) and node-allocation timelines,
//! * billing integration through [`conductor_cloud::BillingAccount`].

pub mod cluster;
pub mod engine;
pub mod execution;
pub mod hdfs;
pub mod scheduler;
pub mod task;
pub mod workload;

pub use cluster::{Cluster, NodeAllocation, NodeId, SimNode};
pub use engine::{DataLocation, DeploymentOptions, Engine, ExecutionReport, PhaseBreakdown};
pub use execution::{
    ExecutionProgress, ExecutionSnapshot, JobEvent, JobExecution, JobPhase, SessionPricing,
};
pub use hdfs::HdfsModel;
pub use scheduler::{
    LocalityScheduler, PlanFollowingScheduler, Scheduler, SchedulerKind, SchedulerSnapshot,
};
pub use task::{Task, TaskId, TaskKind, TaskState};
pub use workload::{JobSpec, Workload, REFERENCE_INSTANCE_GBPH};
