//! MapReduce job specifications and workload generators.
//!
//! The paper's evaluation workload is a k-means clustering job from Apache
//! Mahout over 40 million randomly generated points (32 GB) plus 10,000
//! reference points (§6.1). [`Workload::KMeans32Gb`] reproduces that shape;
//! other constructors cover the variants used in individual experiments
//! (e.g. the small-reference-point variant of Figure 8 that processes at
//! 6.2 GB/h per node).

use serde::{Deserialize, Serialize};

/// Measured m1.large throughput (GB/h) of the *reference workload* — the
/// paper's k-means job — that every catalog instance's throughput figure was
/// calibrated against (§6.1, Figure 1). A [`JobSpec`]'s
/// `reference_throughput_gbph` is expressed on the same instance, so
/// [`JobSpec::throughput_scale`] converts between workload-specific and
/// catalog (reference-workload) throughput units. Both the planner's
/// capacity model and the execution simulator apply this same scale, which
/// is what keeps plans and simulated executions consistent.
pub const REFERENCE_INSTANCE_GBPH: f64 = 0.44;

/// Static description of a MapReduce job: data volumes and task structure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Job name used in reports.
    pub name: String,
    /// Total input size in GB.
    pub input_gb: f64,
    /// Input split size in MB (Hadoop default 64 MB).
    pub split_mb: f64,
    /// Ratio of map-output (shuffle) volume to input volume.
    pub map_output_ratio: f64,
    /// Ratio of final output volume to input volume.
    pub reduce_output_ratio: f64,
    /// Number of reduce tasks.
    pub reduce_tasks: usize,
    /// Per-node processing throughput in GB/h on the reference instance type
    /// (m1.large); other instance types scale by their measured throughput.
    pub reference_throughput_gbph: f64,
}

impl JobSpec {
    /// Number of map tasks (one per input split, last split may be partial).
    pub fn map_tasks(&self) -> usize {
        let split_gb = self.split_mb / 1024.0;
        if self.input_gb <= 0.0 || split_gb <= 0.0 {
            return 0;
        }
        (self.input_gb / split_gb).ceil() as usize
    }

    /// Total task count (map + reduce), the denominator of Figure 12(b).
    pub fn total_tasks(&self) -> usize {
        self.map_tasks() + self.reduce_tasks
    }

    /// Size of one full input split in GB.
    pub fn split_gb(&self) -> f64 {
        self.split_mb / 1024.0
    }

    /// Volume of intermediate (shuffle) data in GB.
    pub fn shuffle_gb(&self) -> f64 {
        self.input_gb * self.map_output_ratio
    }

    /// Volume of final output data in GB.
    pub fn output_gb(&self) -> f64 {
        self.input_gb * self.reduce_output_ratio
    }

    /// How much faster (or slower) this workload moves through a node than
    /// the reference k-means job: catalog throughputs are multiplied by this
    /// to get workload-effective rates. Non-positive reference throughput
    /// falls back to 1.0.
    pub fn throughput_scale(&self) -> f64 {
        if self.reference_throughput_gbph > 0.0 {
            self.reference_throughput_gbph / REFERENCE_INSTANCE_GBPH
        } else {
            1.0
        }
    }

    /// Idealized processing time in hours on `nodes` reference nodes working
    /// at full efficiency with all data local (a lower bound used for sanity
    /// checks and by the planner's estimates).
    pub fn ideal_processing_hours(&self, nodes: usize) -> f64 {
        if nodes == 0 || self.reference_throughput_gbph <= 0.0 {
            return f64::INFINITY;
        }
        self.input_gb / (nodes as f64 * self.reference_throughput_gbph)
    }
}

/// Named workload presets used throughout the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Workload {
    /// The paper's main workload: k-means over 40 M points, 32 GB input,
    /// 10 k reference points, 0.44 GB/h per m1.large node.
    KMeans32Gb,
    /// The Figure 8 variant: 8 Mbit/s uplink scenario with a smaller
    /// reference-point set, processing at 6.2 GB/h per node.
    KMeansFastScan32Gb,
    /// Scaled-up analytic variants of Figure 9.
    KMeansScaled {
        /// Input size in GB (64, 128 or 256 in the paper).
        input_gb: u32,
    },
}

impl Workload {
    /// Materializes the preset into a [`JobSpec`].
    pub fn spec(self) -> JobSpec {
        match self {
            Workload::KMeans32Gb => JobSpec {
                name: "kmeans-32gb".into(),
                input_gb: 32.0,
                split_mb: 64.0,
                // k-means emits cluster assignments / centroid statistics —
                // tiny compared to the input.
                map_output_ratio: 0.02,
                reduce_output_ratio: 0.01,
                reduce_tasks: 16,
                reference_throughput_gbph: 0.44,
            },
            Workload::KMeansFastScan32Gb => JobSpec {
                name: "kmeans-fastscan-32gb".into(),
                input_gb: 32.0,
                split_mb: 64.0,
                map_output_ratio: 0.02,
                reduce_output_ratio: 0.01,
                reduce_tasks: 16,
                reference_throughput_gbph: 6.2,
            },
            Workload::KMeansScaled { input_gb } => JobSpec {
                name: format!("kmeans-{input_gb}gb"),
                input_gb: input_gb as f64,
                split_mb: 64.0,
                map_output_ratio: 0.02,
                reduce_output_ratio: 0.01,
                reduce_tasks: 16,
                reference_throughput_gbph: 0.44,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kmeans_32gb_matches_paper_parameters() {
        let spec = Workload::KMeans32Gb.spec();
        assert_eq!(spec.input_gb, 32.0);
        assert_eq!(spec.split_mb, 64.0);
        // 32 GB / 64 MB = 512 map tasks.
        assert_eq!(spec.map_tasks(), 512);
        assert!((spec.reference_throughput_gbph - 0.44).abs() < 1e-12);
    }

    #[test]
    fn fast_scan_variant_processes_faster() {
        let slow = Workload::KMeans32Gb.spec();
        let fast = Workload::KMeansFastScan32Gb.spec();
        assert!(fast.reference_throughput_gbph > 10.0 * slow.reference_throughput_gbph);
        assert_eq!(fast.map_tasks(), slow.map_tasks());
    }

    #[test]
    fn scaled_variants_scale_tasks_linearly() {
        let a = Workload::KMeansScaled { input_gb: 64 }.spec();
        let b = Workload::KMeansScaled { input_gb: 128 }.spec();
        assert_eq!(b.map_tasks(), 2 * a.map_tasks());
        assert!((b.shuffle_gb() - 2.0 * a.shuffle_gb()).abs() < 1e-9);
    }

    #[test]
    fn ideal_processing_time_matches_hand_calculation() {
        let spec = Workload::KMeans32Gb.spec();
        // 32 GB on 16 nodes at 0.44 GB/h/node ≈ 4.55 h (the paper's 6-hour
        // deadline scenario uses 16 nodes).
        let t = spec.ideal_processing_hours(16);
        assert!((t - 32.0 / (16.0 * 0.44)).abs() < 1e-9);
        assert!(t > 4.0 && t < 5.0);
        assert_eq!(spec.ideal_processing_hours(0), f64::INFINITY);
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        let mut spec = Workload::KMeans32Gb.spec();
        spec.input_gb = 0.0;
        assert_eq!(spec.map_tasks(), 0);
        spec.input_gb = 32.0;
        spec.split_mb = 0.0;
        assert_eq!(spec.map_tasks(), 0);
    }

    #[test]
    fn output_volumes_are_small_fraction_of_input() {
        let spec = Workload::KMeans32Gb.spec();
        assert!(spec.shuffle_gb() < spec.input_gb * 0.1);
        assert!(spec.output_gb() < spec.shuffle_gb() + 1e-9);
    }
}
