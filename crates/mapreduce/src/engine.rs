//! The discrete-event MapReduce execution engine.
//!
//! [`Engine::run`] simulates one job deployment end to end: input upload over
//! the customer uplink, map tasks scheduled onto a (possibly time-varying)
//! set of nodes, the shuffle/reduce phase, and the final result download. It
//! meters every chargeable operation through a
//! [`conductor_cloud::BillingAccount`] and records the task-completion and
//! node-allocation timelines plotted in Figure 12.

use crate::cluster::{nodes_at, Cluster, NodeAllocation, NodeId};
use crate::scheduler::Scheduler;
use crate::task::{build_tasks, TaskKind, TaskState};
use crate::workload::JobSpec;
use conductor_cloud::{BillingAccount, Catalog, CostBreakdown, TransferDirection};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Where a piece of data currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataLocation {
    /// The customer's own site (input source / output destination).
    ClientSite,
    /// An S3-style object store.
    S3,
    /// The virtual disk of a cloud instance.
    InstanceDisk,
    /// A disk in the customer's local cluster.
    LocalDisk,
}

/// Options describing one deployment strategy (the knobs that differ between
/// "Conductor", "Hadoop upload first", "Hadoop direct" and "Hadoop S3" in
/// §6.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentOptions {
    /// Label used in reports.
    pub name: String,
    /// Customer uplink bandwidth in GB/h.
    pub uplink_gbph: f64,
    /// Node allocation schedule (per instance type, step function over time).
    pub node_schedule: Vec<NodeAllocation>,
    /// Where the input is uploaded before/while processing: a list of
    /// `(location, fraction_of_input)` entries. Fractions that do not sum to
    /// one leave the remainder at the client site (to be read remotely).
    pub upload_plan: Vec<(DataLocation, f64)>,
    /// `true` when processing must wait for the entire upload to finish
    /// ("Hadoop upload first" and "Hadoop S3"); `false` enables streamed
    /// processing.
    pub upload_before_processing: bool,
    /// Multiplier on node throughput when the input is read from S3 instead
    /// of a local disk (S3 read path overhead).
    pub s3_throughput_factor: f64,
    /// Job deadline in hours, if any (reported, not enforced).
    pub deadline_hours: Option<f64>,
    /// Object size used when translating uploads into PUT/GET requests (MB).
    pub object_size_mb: f64,
    /// Safety cap on simulated hours; the run fails if the job has not
    /// finished by then.
    pub max_hours: f64,
}

impl DeploymentOptions {
    /// Reasonable defaults for a cloud-only deployment: 16 Mbit/s uplink,
    /// streamed processing, data on instance disks.
    pub fn new(name: impl Into<String>, uplink_gbph: f64) -> Self {
        Self {
            name: name.into(),
            uplink_gbph,
            node_schedule: Vec::new(),
            upload_plan: vec![(DataLocation::InstanceDisk, 1.0)],
            upload_before_processing: false,
            s3_throughput_factor: 0.7,
            deadline_hours: None,
            object_size_mb: 64.0,
            max_hours: 200.0,
        }
    }

    /// Adds a node-allocation step.
    pub fn with_nodes(mut self, instance_type: &str, nodes: usize, from_hour: f64) -> Self {
        self.node_schedule.push(NodeAllocation {
            from_hour,
            instance_type: instance_type.into(),
            nodes,
        });
        self
    }
}

/// Per-phase timing of one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// Hours until the last uploaded split became available in the cloud
    /// (zero when everything is read remotely).
    pub upload_hours: f64,
    /// Hour at which the last map task completed.
    pub map_done_at: f64,
    /// Hour at which the last reduce task completed.
    pub reduce_done_at: f64,
    /// Hours spent downloading the final output.
    pub download_hours: f64,
}

/// The result of simulating one deployment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Deployment label.
    pub name: String,
    /// End-to-end completion time in hours (including the result download).
    pub completion_hours: f64,
    /// Per-phase timing.
    pub phases: PhaseBreakdown,
    /// Total monetary cost in USD.
    pub total_cost: f64,
    /// Per-category cost breakdown (Figure 5).
    pub cost_breakdown: CostBreakdown,
    /// Whether the deadline was met (`None` when no deadline was set).
    pub met_deadline: Option<bool>,
    /// `(hour, cumulative completed tasks)` samples (Figure 12b).
    pub task_timeline: Vec<(f64, usize)>,
    /// `(hour, allocated nodes)` samples (Figure 12a).
    pub allocation_timeline: Vec<(f64, usize)>,
    /// Total number of tasks in the job.
    pub total_tasks: usize,
    /// GB shipped from the customer into the cloud.
    pub wan_in_gb: f64,
    /// GB shipped from the cloud back to the customer.
    pub wan_out_gb: f64,
}

/// Errors the engine can report.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The job did not finish within `max_hours` simulated hours (typically a
    /// schedule with no nodes).
    DidNotFinish {
        /// Hours simulated before giving up.
        simulated_hours: f64,
        /// Tasks completed at that point.
        completed_tasks: usize,
    },
    /// The deployment options are inconsistent.
    InvalidOptions(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::DidNotFinish { simulated_hours, completed_tasks } => write!(
                f,
                "job did not finish within {simulated_hours} simulated hours ({completed_tasks} tasks done)"
            ),
            EngineError::InvalidOptions(msg) => write!(f, "invalid deployment options: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// The simulation engine. Holds the catalog so multiple runs can share it.
#[derive(Debug, Clone)]
pub struct Engine {
    catalog: Catalog,
}

/// A split of the input data with its upload destination and availability time.
#[derive(Debug, Clone, Copy)]
struct Split {
    location: DataLocation,
    available_at: f64,
    gb: f64,
}

#[derive(Debug, Clone, Copy)]
struct Running {
    task_idx: usize,
    node: NodeId,
    finish_at: f64,
    /// WAN gigabytes consumed by this task (remote reads from the client site).
    wan_gb: f64,
    /// GET requests against S3 issued by this task.
    s3_gets: u64,
    /// `true` when the task ran on a rented cloud node (its share of the
    /// output will have to be downloaded over the WAN).
    on_cloud_node: bool,
}

impl Engine {
    /// Creates an engine over a service catalog.
    pub fn new(catalog: Catalog) -> Self {
        Self { catalog }
    }

    /// Read access to the catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Simulates one deployment of `spec` under `options`, with `scheduler`
    /// deciding task placement.
    pub fn run(
        &self,
        spec: &JobSpec,
        options: &DeploymentOptions,
        scheduler: &dyn Scheduler,
    ) -> Result<ExecutionReport, EngineError> {
        self.validate(options)?;

        let mut billing = BillingAccount::new(self.catalog.transfer);
        let mut cluster = Cluster::new();
        let mut sessions: BTreeMap<NodeId, u64> = BTreeMap::new();

        // ---- Build tasks and the split upload timetable.
        let mut tasks = build_tasks(
            spec.map_tasks(),
            spec.input_gb,
            spec.reduce_tasks,
            spec.shuffle_gb(),
        );
        let splits = self.plan_splits(spec, options);
        // Only data headed for *cloud* storage crosses the customer uplink;
        // splits assigned to the local cluster's disks move over the LAN.
        let crosses_wan =
            |loc: DataLocation| matches!(loc, DataLocation::S3 | DataLocation::InstanceDisk);
        let upload_done_at = splits
            .iter()
            .filter(|s| crosses_wan(s.location))
            .map(|s| s.available_at)
            .fold(0.0, f64::max);
        let uploaded_gb: f64 = splits
            .iter()
            .filter(|s| crosses_wan(s.location))
            .map(|s| s.gb)
            .sum();
        let s3_gb: f64 = splits
            .iter()
            .filter(|s| s.location == DataLocation::S3)
            .map(|s| s.gb)
            .sum();

        // Input transferred into the cloud during the upload phase is billed
        // immediately (it crosses the WAN exactly once).
        if uploaded_gb > 0.0 {
            billing.record_transfer(uploaded_gb, TransferDirection::In);
        }

        let mut running: Vec<Running> = Vec::new();
        let mut task_timeline: Vec<(f64, usize)> = Vec::new();
        let mut completed = 0usize;
        let mut map_remaining = spec.map_tasks();
        let mut wan_in_extra = 0.0f64;
        let mut total_s3_gets: u64 = 0;
        let mut cloud_processed_gb = 0.0f64;
        let mut now = 0.0f64;
        let mut phases = PhaseBreakdown {
            upload_hours: upload_done_at,
            ..Default::default()
        };

        // Event horizon candidates: schedule steps and split availabilities.
        let mut schedule_points: Vec<f64> =
            options.node_schedule.iter().map(|a| a.from_hour).collect();
        schedule_points.sort_by(|a, b| a.partial_cmp(b).unwrap());
        schedule_points.dedup();

        loop {
            // 1. Reconcile cluster membership with the schedule at `now`.
            self.reconcile_cluster(
                options,
                now,
                &mut cluster,
                &mut sessions,
                &mut billing,
                &running,
            );

            // 2. Dispatch runnable tasks onto idle nodes.
            let upload_gate_open =
                !options.upload_before_processing || now >= upload_done_at - 1e-9;
            let busy: Vec<NodeId> = running.iter().map(|r| r.node).collect();
            let idle_nodes: Vec<NodeId> = cluster
                .nodes()
                .iter()
                .map(|n| n.id)
                .filter(|id| !busy.contains(id))
                .collect();

            for node_id in idle_nodes {
                let node = cluster
                    .node(node_id)
                    .expect("idle node still in cluster")
                    .clone();
                // Find the best dispatchable task for this node.
                let mut best: Option<(usize, DataLocation, i32)> = None;
                for (idx, task) in tasks.iter().enumerate() {
                    if !matches!(task.state, TaskState::WaitingForData | TaskState::Runnable) {
                        continue;
                    }
                    let location = match task.kind {
                        TaskKind::Map => {
                            if !upload_gate_open {
                                continue;
                            }
                            let split = &splits[idx.min(splits.len().saturating_sub(1))];
                            if split.location == DataLocation::ClientSite {
                                DataLocation::ClientSite
                            } else if now + 1e-9 >= split.available_at {
                                split.location
                            } else {
                                continue; // not yet uploaded
                            }
                        }
                        TaskKind::Reduce => {
                            if map_remaining > 0 {
                                continue; // barrier: reduce starts after all maps
                            }
                            if node.is_local {
                                DataLocation::LocalDisk
                            } else {
                                DataLocation::InstanceDisk
                            }
                        }
                    };
                    if !scheduler.may_run(task, location, &node) {
                        continue;
                    }
                    let pref = scheduler.preference(location, &node);
                    if best.is_none_or(|(_, _, b)| pref > b) {
                        best = Some((idx, location, pref));
                    }
                }
                if let Some((idx, location, _)) = best {
                    let rate = self.effective_rate(&node, location, options, cluster.len(), spec);
                    if rate <= 0.0 {
                        continue;
                    }
                    let data_gb = tasks[idx].data_gb;
                    let duration = data_gb / rate;
                    // A remote read crosses the WAN only when a *cloud* node
                    // pulls data from the customer site.
                    let wan_gb = if location == DataLocation::ClientSite && !node.is_local {
                        data_gb
                    } else {
                        0.0
                    };
                    let s3_gets = if location == DataLocation::S3 {
                        (data_gb * 1024.0 / options.object_size_mb).ceil() as u64
                    } else {
                        0
                    };
                    tasks[idx].state = TaskState::Running {
                        node: node_id,
                        finish_at: now + duration,
                    };
                    running.push(Running {
                        task_idx: idx,
                        node: node_id,
                        finish_at: now + duration,
                        wan_gb,
                        s3_gets,
                        on_cloud_node: !node.is_local,
                    });
                }
            }

            // 3. Determine the next event.
            let next_finish = running
                .iter()
                .map(|r| r.finish_at)
                .fold(f64::INFINITY, f64::min);
            let next_schedule = schedule_points
                .iter()
                .copied()
                .filter(|&t| t > now + 1e-9)
                .fold(f64::INFINITY, f64::min);
            let next_split = splits
                .iter()
                .filter(|s| s.location != DataLocation::ClientSite && s.available_at > now + 1e-9)
                .map(|s| s.available_at)
                .fold(f64::INFINITY, f64::min);
            let next_event = next_finish.min(next_schedule).min(next_split);

            if completed == tasks.len() {
                break;
            }
            if !next_event.is_finite() {
                // Nothing is running and nothing will change: the job is stuck.
                return Err(EngineError::DidNotFinish {
                    simulated_hours: now,
                    completed_tasks: completed,
                });
            }
            if next_event > options.max_hours {
                return Err(EngineError::DidNotFinish {
                    simulated_hours: options.max_hours,
                    completed_tasks: completed,
                });
            }
            now = next_event;

            // 4. Retire tasks finishing at `now`.
            let mut still_running = Vec::with_capacity(running.len());
            for r in running.drain(..) {
                if r.finish_at <= now + 1e-9 {
                    let idx = r.task_idx;
                    tasks[idx].state = TaskState::Completed { at: r.finish_at };
                    completed += 1;
                    if tasks[idx].kind == TaskKind::Map {
                        map_remaining -= 1;
                        if map_remaining == 0 {
                            phases.map_done_at = r.finish_at;
                        }
                    } else if completed == tasks.len() {
                        phases.reduce_done_at = r.finish_at;
                    }
                    wan_in_extra += r.wan_gb;
                    total_s3_gets += r.s3_gets;
                    if r.on_cloud_node && tasks[idx].kind == TaskKind::Map {
                        cloud_processed_gb += tasks[idx].data_gb;
                    }
                    task_timeline.push((r.finish_at, completed));
                } else {
                    still_running.push(r);
                }
            }
            running = still_running;
        }

        // ---- Post-processing: result download, storage billing, teardown.
        let processing_done = now;
        // Only the share of the output produced in the cloud has to cross the
        // WAN back to the customer.
        let cloud_fraction = if spec.input_gb > 0.0 {
            (cloud_processed_gb / spec.input_gb).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let download_gb = spec.output_gb() * cloud_fraction;
        phases.download_hours = if options.uplink_gbph > 0.0 {
            download_gb / options.uplink_gbph
        } else {
            0.0
        };
        let completion = processing_done + phases.download_hours;

        // WAN charges for remote reads and the result download.
        if wan_in_extra > 0.0 {
            billing.record_transfer(wan_in_extra, TransferDirection::In);
        }
        billing.record_transfer(download_gb, TransferDirection::Out);

        // S3 residency: data sits on S3 from (roughly) the middle of its
        // upload window until the job completes, plus the PUT/GET requests.
        if s3_gb > 0.0 {
            if let Some(s3) = self.catalog.storage("S3") {
                let residency = (completion - upload_done_at / 2.0).max(0.0);
                let puts = (s3_gb * 1024.0 / options.object_size_mb).ceil() as u64;
                billing.record_storage(s3, s3_gb, residency, puts, total_s3_gets);
            }
        }
        // Instance-disk and local-disk storage is free but recorded so the
        // cost breakdown carries the category.
        let disk_gb: f64 = splits
            .iter()
            .filter(|s| {
                matches!(
                    s.location,
                    DataLocation::InstanceDisk | DataLocation::LocalDisk
                )
            })
            .map(|s| s.gb)
            .sum();
        if disk_gb > 0.0 {
            if let Some(disk) = self.catalog.storage("EC2-disk") {
                billing.record_storage(disk, disk_gb, completion, 0, 0);
            }
        }

        // Stop renting everything at the completion time.
        for (_, session) in sessions {
            billing.stop_instance(session, completion);
        }

        let met_deadline = options.deadline_hours.map(|d| completion <= d + 1e-9);
        Ok(ExecutionReport {
            name: options.name.clone(),
            completion_hours: completion,
            phases,
            total_cost: billing.total_cost(),
            cost_breakdown: billing.breakdown().clone(),
            met_deadline,
            task_timeline,
            allocation_timeline: cluster.allocation_timeline().to_vec(),
            total_tasks: tasks.len(),
            wan_in_gb: billing.uploaded_gb,
            wan_out_gb: billing.downloaded_gb,
        })
    }

    fn validate(&self, options: &DeploymentOptions) -> Result<(), EngineError> {
        if options.uplink_gbph <= 0.0 {
            return Err(EngineError::InvalidOptions(
                "uplink bandwidth must be positive".into(),
            ));
        }
        let frac: f64 = options.upload_plan.iter().map(|(_, f)| *f).sum();
        if !(0.0..=1.0 + 1e-9).contains(&frac) {
            return Err(EngineError::InvalidOptions(format!(
                "upload fractions must sum to at most 1 (got {frac})"
            )));
        }
        if options
            .upload_plan
            .iter()
            .any(|(loc, _)| *loc == DataLocation::ClientSite)
        {
            return Err(EngineError::InvalidOptions(
                "the client site is the upload source, not a destination".into(),
            ));
        }
        for alloc in &options.node_schedule {
            if self.catalog.instance(&alloc.instance_type).is_none() {
                return Err(EngineError::InvalidOptions(format!(
                    "unknown instance type `{}` in node schedule",
                    alloc.instance_type
                )));
            }
        }
        Ok(())
    }

    /// Assigns each map split an upload destination and availability time.
    ///
    /// Splits are uploaded back to back over the uplink in the order of the
    /// upload plan (e.g. "first roughly half to S3, then the rest to EC2
    /// disks", as in the Figure 8 scenario); splits not covered by the plan
    /// stay at the client site and are available immediately (for remote
    /// reads).
    fn plan_splits(&self, spec: &JobSpec, options: &DeploymentOptions) -> Vec<Split> {
        let n = spec.map_tasks();
        let split_gb = if n > 0 { spec.input_gb / n as f64 } else { 0.0 };
        let mut splits = Vec::with_capacity(n);
        let mut assigned = 0usize;
        let mut elapsed = 0.0f64;
        for (location, fraction) in &options.upload_plan {
            let count = ((fraction * n as f64).round() as usize).min(n - assigned);
            for _ in 0..count {
                let available_at = if *location == DataLocation::LocalDisk {
                    // Local-cluster disks are fed over the LAN, not the uplink.
                    0.0
                } else {
                    elapsed += split_gb / options.uplink_gbph;
                    elapsed
                };
                splits.push(Split {
                    location: *location,
                    available_at,
                    gb: split_gb,
                });
            }
            assigned += count;
        }
        for _ in assigned..n {
            splits.push(Split {
                location: DataLocation::ClientSite,
                available_at: 0.0,
                gb: split_gb,
            });
        }
        splits
    }

    /// Effective processing rate of `node` for input at `location`, in GB/h.
    /// Node throughputs are catalog figures calibrated on the reference
    /// workload; they scale by `spec.throughput_scale()` for the workload at
    /// hand — the same scaling the planner's capacity model applies, so
    /// plans and simulated executions agree for non-reference workloads.
    fn effective_rate(
        &self,
        node: &crate::cluster::SimNode,
        location: DataLocation,
        options: &DeploymentOptions,
        cluster_size: usize,
        spec: &JobSpec,
    ) -> f64 {
        let node_gbph = node.throughput_gbph * spec.throughput_scale();
        match location {
            DataLocation::InstanceDisk | DataLocation::LocalDisk => node_gbph,
            DataLocation::S3 => node_gbph * options.s3_throughput_factor,
            DataLocation::ClientSite => {
                // Remote readers share the customer uplink.
                let share = options.uplink_gbph / cluster_size.max(1) as f64;
                node_gbph.min(share)
            }
        }
    }

    /// Adds/removes nodes so the cluster matches the schedule at time `now`,
    /// opening and closing billing sessions accordingly. Busy nodes are never
    /// removed; the reconciliation is retried at the next event.
    fn reconcile_cluster(
        &self,
        options: &DeploymentOptions,
        now: f64,
        cluster: &mut Cluster,
        sessions: &mut BTreeMap<NodeId, u64>,
        billing: &mut BillingAccount,
        running: &[Running],
    ) {
        let types: Vec<String> = options
            .node_schedule
            .iter()
            .map(|a| a.instance_type.clone())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        for itype_name in types {
            let Some(itype) = self.catalog.instance(&itype_name) else {
                continue;
            };
            let desired = nodes_at(&options.node_schedule, &itype_name, now);
            let desired = match itype.max_instances {
                Some(cap) => desired.min(cap),
                None => desired,
            };
            let current = cluster.count_of(&itype_name);
            if desired > current {
                let ids = cluster.add_nodes(itype, desired - current, now);
                for id in ids {
                    sessions.insert(id, billing.start_instance(itype, now));
                }
            } else if desired < current {
                // Remove idle nodes only (busy nodes finish their task first;
                // the reconciliation is retried at the next event), newest
                // first so long-lived nodes keep their data.
                let busy: Vec<NodeId> = running.iter().map(|r| r.node).collect();
                let idle_ids: Vec<NodeId> = cluster
                    .nodes()
                    .iter()
                    .rev()
                    .filter(|n| n.instance_type == itype_name && !busy.contains(&n.id))
                    .map(|n| n.id)
                    .take(current - desired)
                    .collect();
                let removed = cluster.remove_specific(&idle_ids, now);
                for rid in removed {
                    if let Some(session) = sessions.remove(&rid) {
                        billing.stop_instance(session, now);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{LocalityScheduler, PlanFollowingScheduler};
    use crate::workload::Workload;
    use conductor_cloud::CostCategory;

    fn engine() -> Engine {
        Engine::new(Catalog::aws_with_local_cluster(5))
    }

    fn uplink_16mbit() -> f64 {
        conductor_cloud::catalog::mbps_to_gb_per_hour(16.0)
    }

    /// The Conductor cloud-only deployment of §6.2: 16 m1.large nodes storing
    /// data on their own disks, streamed processing.
    fn conductor_options() -> DeploymentOptions {
        DeploymentOptions {
            deadline_hours: Some(6.0),
            ..DeploymentOptions::new("conductor", uplink_16mbit()).with_nodes("m1.large", 16, 0.0)
        }
    }

    #[test]
    fn conductor_style_run_meets_six_hour_deadline() {
        let spec = Workload::KMeans32Gb.spec();
        let report = engine()
            .run(
                &spec,
                &conductor_options(),
                &PlanFollowingScheduler::cloud_only_defaults(),
            )
            .unwrap();
        assert_eq!(
            report.met_deadline,
            Some(true),
            "completion {}",
            report.completion_hours
        );
        assert!(
            report.completion_hours > 4.0,
            "unrealistically fast: {}",
            report.completion_hours
        );
        assert_eq!(report.total_tasks, 528);
        assert_eq!(report.task_timeline.last().unwrap().1, 528);
    }

    #[test]
    fn upload_first_is_slower_than_streamed() {
        let spec = Workload::KMeans32Gb.spec();
        let eng = engine();
        let streamed = eng
            .run(
                &spec,
                &conductor_options(),
                &PlanFollowingScheduler::cloud_only_defaults(),
            )
            .unwrap();
        // Upload to a single node first, then 100 nodes process.
        let upload_hours = 32.0 / uplink_16mbit();
        let upload_first = DeploymentOptions {
            upload_before_processing: true,
            deadline_hours: Some(6.0),
            ..DeploymentOptions::new("hadoop-upload-first", uplink_16mbit())
                .with_nodes("m1.large", 1, 0.0)
                .with_nodes("m1.large", 100, upload_hours)
        };
        let uf = eng.run(&spec, &upload_first, &LocalityScheduler).unwrap();
        assert!(uf.completion_hours > streamed.completion_hours);
    }

    #[test]
    fn hadoop_s3_costs_roughly_double_the_others() {
        // §6.2: the Hadoop-S3 option finishes processing in just over an hour
        // but pays two full hours for each of 100 instances, roughly doubling
        // the cost of the other options.
        let spec = Workload::KMeans32Gb.spec();
        let eng = engine();
        let upload_hours = 32.0 / uplink_16mbit();
        let s3_opts = DeploymentOptions {
            upload_plan: vec![(DataLocation::S3, 1.0)],
            upload_before_processing: true,
            deadline_hours: Some(6.0),
            ..DeploymentOptions::new("hadoop-s3", uplink_16mbit()).with_nodes(
                "m1.large",
                100,
                upload_hours,
            )
        };
        let s3_report = eng.run(&spec, &s3_opts, &LocalityScheduler).unwrap();
        let conductor = eng
            .run(
                &spec,
                &conductor_options(),
                &PlanFollowingScheduler::cloud_only_defaults(),
            )
            .unwrap();
        assert!(
            s3_report.total_cost > 1.6 * conductor.total_cost,
            "s3 {} vs conductor {}",
            s3_report.total_cost,
            conductor.total_cost
        );
        // Processing itself (after upload) took between 1 and 2 hours.
        let processing = s3_report.phases.map_done_at - upload_hours;
        assert!(
            processing > 1.0 && processing < 2.0,
            "processing {processing}"
        );
    }

    #[test]
    fn fewer_nodes_miss_the_deadline_more_nodes_cost_more() {
        // Figure 7: 11 nodes miss the 6h deadline, 21 nodes cost more than 16.
        let spec = Workload::KMeans32Gb.spec();
        let eng = engine();
        let sched = PlanFollowingScheduler::cloud_only_defaults();
        let run = |nodes: usize| {
            let opts = DeploymentOptions {
                deadline_hours: Some(6.0),
                ..DeploymentOptions::new(format!("{nodes}-nodes"), uplink_16mbit())
                    .with_nodes("m1.large", nodes, 0.0)
            };
            eng.run(&spec, &opts, &sched).unwrap()
        };
        let r11 = run(11);
        let r16 = run(16);
        let r21 = run(21);
        assert_eq!(r11.met_deadline, Some(false));
        assert_eq!(r16.met_deadline, Some(true));
        assert_eq!(r21.met_deadline, Some(true));
        assert!(r21.total_cost > r16.total_cost);
    }

    #[test]
    fn plan_following_scheduler_refuses_unplanned_remote_reads() {
        // All data stays at the client site but the plan only allows disk/S3
        // reads: with no other data source the job can never finish.
        let spec = Workload::KMeans32Gb.spec();
        let opts = DeploymentOptions {
            upload_plan: vec![],
            ..DeploymentOptions::new("stuck", uplink_16mbit()).with_nodes("m1.large", 4, 0.0)
        };
        let err = engine()
            .run(&spec, &opts, &PlanFollowingScheduler::cloud_only_defaults())
            .unwrap_err();
        assert!(matches!(err, EngineError::DidNotFinish { .. }));
        // The locality scheduler happily reads remotely and finishes.
        let ok = engine().run(&spec, &opts, &LocalityScheduler).unwrap();
        assert!(ok.completion_hours.is_finite());
    }

    #[test]
    fn local_cluster_runs_are_free() {
        let spec = Workload::KMeans32Gb.spec();
        let opts = DeploymentOptions {
            upload_plan: vec![],
            max_hours: 400.0,
            ..DeploymentOptions::new("local-only", uplink_16mbit()).with_nodes("local", 5, 0.0)
        };
        let report = engine().run(&spec, &opts, &LocalityScheduler).unwrap();
        assert_eq!(report.cost_breakdown.get(CostCategory::Computation), 0.0);
        // Only the result download is charged.
        assert!(report.total_cost < 1.0, "cost {}", report.total_cost);
        // 5 nodes at 0.44 GB/h cannot meet a 6h deadline for 32 GB.
        assert!(report.completion_hours > 6.0);
    }

    #[test]
    fn local_cluster_cap_is_enforced() {
        // Asking for 50 "local" nodes only yields the 5 that exist.
        let spec = Workload::KMeans32Gb.spec();
        let opts = DeploymentOptions {
            upload_plan: vec![],
            max_hours: 400.0,
            ..DeploymentOptions::new("local-capped", uplink_16mbit()).with_nodes("local", 50, 0.0)
        };
        let report = engine().run(&spec, &opts, &LocalityScheduler).unwrap();
        assert!(report.allocation_timeline.iter().all(|&(_, n)| n <= 5));
    }

    #[test]
    fn schedule_increase_mid_job_is_reflected_in_timeline() {
        // Figure 12: start with 3 nodes, go to 16 after one hour, 18 after two.
        let spec = Workload::KMeans32Gb.spec();
        let opts = DeploymentOptions {
            deadline_hours: Some(6.0),
            ..DeploymentOptions::new("adaptive", uplink_16mbit())
                .with_nodes("m1.large", 3, 0.0)
                .with_nodes("m1.large", 16, 1.0)
                .with_nodes("m1.large", 18, 2.0)
        };
        let report = engine()
            .run(&spec, &opts, &PlanFollowingScheduler::cloud_only_defaults())
            .unwrap();
        let max_nodes = report
            .allocation_timeline
            .iter()
            .map(|&(_, n)| n)
            .max()
            .unwrap();
        assert_eq!(max_nodes, 18);
        let early_nodes = report
            .allocation_timeline
            .iter()
            .filter(|&&(t, _)| t < 0.5)
            .map(|&(_, n)| n)
            .max()
            .unwrap();
        assert_eq!(early_nodes, 3);
    }

    #[test]
    fn cost_breakdown_covers_transfer_compute_and_storage() {
        let spec = Workload::KMeans32Gb.spec();
        let upload_hours = 32.0 / uplink_16mbit();
        let opts = DeploymentOptions {
            upload_plan: vec![(DataLocation::S3, 1.0)],
            upload_before_processing: true,
            ..DeploymentOptions::new("s3", uplink_16mbit()).with_nodes("m1.large", 16, upload_hours)
        };
        let report = engine().run(&spec, &opts, &LocalityScheduler).unwrap();
        assert!(report.cost_breakdown.get(CostCategory::NetworkTransfer) > 0.0);
        assert!(report.cost_breakdown.get(CostCategory::Computation) > 0.0);
        assert!(report.cost_breakdown.get(CostCategory::StorageS3) > 0.0);
        assert!((report.total_cost - report.cost_breakdown.total()).abs() < 1e-9);
        assert!((report.wan_in_gb - 32.0).abs() < 1e-6);
        assert!(report.wan_out_gb > 0.0);
    }

    #[test]
    fn invalid_options_are_rejected() {
        let spec = Workload::KMeans32Gb.spec();
        let eng = engine();
        let bad_uplink = DeploymentOptions::new("bad", 0.0);
        assert!(matches!(
            eng.run(&spec, &bad_uplink, &LocalityScheduler),
            Err(EngineError::InvalidOptions(_))
        ));
        let mut bad_frac = DeploymentOptions::new("bad", 1.0);
        bad_frac.upload_plan = vec![(DataLocation::S3, 0.8), (DataLocation::InstanceDisk, 0.8)];
        assert!(matches!(
            eng.run(&spec, &bad_frac, &LocalityScheduler),
            Err(EngineError::InvalidOptions(_))
        ));
        let bad_type = DeploymentOptions::new("bad", 1.0).with_nodes("m9.mega", 1, 0.0);
        assert!(matches!(
            eng.run(&spec, &bad_type, &LocalityScheduler),
            Err(EngineError::InvalidOptions(_))
        ));
    }

    #[test]
    fn task_timeline_is_monotonic() {
        let spec = Workload::KMeans32Gb.spec();
        let report = engine()
            .run(
                &spec,
                &conductor_options(),
                &PlanFollowingScheduler::cloud_only_defaults(),
            )
            .unwrap();
        let mut prev_t = 0.0;
        let mut prev_c = 0;
        for &(t, c) in &report.task_timeline {
            assert!(t >= prev_t - 1e-9);
            assert!(c >= prev_c);
            prev_t = t;
            prev_c = c;
        }
    }
}
